//! A recursive-descent JSON text parser producing [`Value`] trees.

use serde::{Error, Map, Number, Value};

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

/// Containers deeper than this are rejected rather than risking a stack
/// overflow in the recursive-descent parser (and in `Value`'s drop glue).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                self.eat_keyword("\\u")
                                    .map_err(|_| self.err("unpaired surrogate"))?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.err(&format!("invalid escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                _ if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                _ => {
                    // Consume the longest run of plain bytes in one go and
                    // validate UTF-8 over just that run. Runs end only at
                    // `"`, `\`, or a control byte — all ASCII, so a run
                    // never splits a multi-byte sequence.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        let number = if is_float {
            Number::Float(text.parse::<f64>().map_err(|_| self.err("invalid number"))?)
        } else if text.starts_with('-') {
            Number::NegInt(text.parse::<i64>().map_err(|_| self.err("invalid number"))?)
        } else {
            Number::PosInt(text.parse::<u64>().map_err(|_| self.err("invalid number"))?)
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse_str("null").unwrap(), Value::Null);
        assert_eq!(parse_str(" true ").unwrap(), true);
        assert_eq!(parse_str("-12").unwrap(), -12i64);
        assert_eq!(parse_str("3.25e1").unwrap(), 32.5f64);
        assert_eq!(parse_str("\"a\\nb\\u0041\"").unwrap(), "a\nbA");
        let v = parse_str("{\"x\": [1, {\"y\": null}], \"z\": false}").unwrap();
        assert_eq!(v["x"][0], 1u64);
        assert!(v["x"][1]["y"].is_null());
        assert_eq!(v["z"], false);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse_str("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
        assert!(parse_str("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse_str(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse_str(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1 2]", "{\"a\" 1}", "01x", "\"\\q\"", "tru", "-"] {
            assert!(parse_str(bad).is_err(), "should reject {bad:?}");
        }
    }
}
