//! Offline stand-in for `serde_json`.
//!
//! Shares the [`Value`] tree with the vendored `serde` stub and adds JSON
//! text parsing ([`from_str`]/[`from_slice`]), printing ([`to_string`],
//! [`to_string_pretty`]), and the [`json!`] macro.

pub use serde::{de, Error, Map, Number, Value};

mod parse;

pub use parse::parse_str;

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns the first syntax error or shape mismatch.
pub fn from_str<T: de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_str(s)?;
    T::from_value(&value)
}

/// [`from_str`] over raw bytes (must be UTF-8).
///
/// # Errors
///
/// Returns invalid-UTF-8, syntax, or shape errors.
pub fn from_slice<T: de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::custom)?;
    from_str(s)
}

/// Deserializes a type out of an already-parsed [`Value`].
///
/// # Errors
///
/// Returns the first shape mismatch.
pub fn from_value<T: de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Renders compact JSON text. Infallible in this stub, but keeps the real
/// crate's `Result` signature so call sites match.
///
/// # Errors
///
/// Never fails.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Renders pretty JSON text (two-space indent).
///
/// # Errors
///
/// Never fails.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string_pretty())
}

/// Renders compact JSON text as bytes.
///
/// # Errors
///
/// Never fails.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// `json!` macro support: converts one expression to a [`Value`].
#[doc(hidden)]
pub fn value_from<T: serde::Serialize>(value: T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from JSON-shaped syntax, interpolating Rust
/// expressions, in the style of `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Internal token muncher for [`json!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////////////////////////////////////////////////////////
    // @array: accumulate element expressions into [$($elems,)*]
    //////////////////////////////////////////////////////////////////////

    // Done with trailing comma / without.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };

    // Next element is a literal keyword / nested collection.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };

    // Next element is an expression followed by a comma, or the last one.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };

    // Skip a comma between elements.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////////////////////////////////////////////////////
    // @object: munch key tokens into ($($key)+), then the `: value` pair.
    // Shape: @object $map ($(key)*) ($(remaining)*) ($(remaining copy)*)
    //////////////////////////////////////////////////////////////////////

    // Finished.
    (@object $object:ident () () ()) => {};

    // Insert an entry followed by more entries.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };

    // Insert the final entry.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.insert(($($key)+).into(), $value);
    };

    // Value for the current key is a literal keyword / nested collection.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };

    // Value is a general expression followed by a comma, or the last one.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };

    // Munch one more token into the key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////////////////////////////////////////////////////
    // Entry points.
    //////////////////////////////////////////////////////////////////////

    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::value_from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_values() {
        let count = 3usize;
        let v = json!({
            "status": "ok",
            "count": count,
            "nested": { "flag": true, "items": [1, 2.5, null, "x"] },
            "empty": {},
        });
        assert_eq!(v["status"], "ok");
        assert_eq!(v["count"], 3u64);
        assert_eq!(v["nested"]["flag"], true);
        assert_eq!(v["nested"]["items"][1], 2.5);
        assert!(v["nested"]["items"][2].is_null());
        assert!(v["empty"].as_object().unwrap().is_empty());
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(42), 42u64);
        assert_eq!(json!("x"), "x");
    }

    #[test]
    fn text_round_trip() {
        let v = json!({"a": [1, {"b": -2}, 3.5], "s": "he\"llo\n"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\": ["));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
