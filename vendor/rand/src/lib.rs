//! Offline stand-in for the `rand` crate.
//!
//! The workspace vendors this tiny implementation because the build must be
//! reproducible with no registry access. It covers exactly the API surface
//! the workspace uses — `StdRng::seed_from_u64`, `RngExt::random::<f64>()`
//! and `RngExt::random_range` over integer ranges — with a deterministic
//! xoshiro256**-based generator. It is NOT a cryptographic RNG and makes no
//! attempt at bit-compatibility with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand seeds into full generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Random: Sized {
    /// Draws one value from the generator.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let frac = <$t as Random>::random_from(rng);
                self.start + frac * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let frac = <$t as Random>::random_from(rng);
                lo + frac * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience draws, mirroring the `rand` 0.10 `Rng`/`RngExt` surface the
/// workspace uses.
pub trait RngExt: RngCore {
    /// A uniformly random value of `T` (`f64` draws lie in `[0, 1)`).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_one(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(3..=5u32);
            assert!((3..=5).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(5..5usize);
    }
}
