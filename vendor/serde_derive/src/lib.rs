//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input directly from [`proc_macro::TokenStream`] (no
//! `syn`/`quote`, which are unavailable offline) and emits impls of the
//! vendored `serde` stub's `Serialize`/`Deserialize` traits, which route
//! through a single JSON `Value` tree.
//!
//! Supported shapes — the full set used by this workspace:
//! named/tuple/unit structs and enums with unit/newtype/tuple/struct
//! variants, all without generics. Enum encoding matches real serde's
//! external tagging (`"Variant"` for unit, `{"Variant": ...}` otherwise).
//! The only field attribute understood is `#[serde(default)]`: on
//! deserialization a missing key falls back to `Default::default()`
//! (matching real serde; a present-but-null value still goes through
//! `from_value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// A named field: its identifier and whether it carries
/// `#[serde(default)]`.
#[derive(Debug)]
struct Field {
    name: String,
    has_default: bool,
}

#[derive(Debug)]
enum Shape {
    UnitStruct,
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Advances `i` past any `#[...]` attributes (doc comments included) and a
/// `pub` / `pub(...)` visibility marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                match tokens.get(*i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        *i += 2;
                    }
                    _ => panic!("serde stub derive: stray `#` in input"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits `tokens` on commas that sit outside any `<...>` generic argument
/// list. Brackets/parens/braces arrive pre-grouped as single `Group` tokens,
/// so angle brackets are the only nesting that needs explicit tracking.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// `true` when a field chunk's attributes contain `#[serde(default)]`.
fn chunk_has_serde_default(chunk: &[TokenTree]) -> bool {
    let mut i = 0;
    while let Some(TokenTree::Punct(p)) = chunk.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(attr)) = chunk.get(i + 1) {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "serde"
                    && args.stream().into_iter().any(|t| {
                        matches!(&t, TokenTree::Ident(a) if a.to_string() == "default")
                    })
                {
                    return true;
                }
            }
        }
        i += 2;
    }
    false
}

/// Extracts field names from the body of a brace-delimited struct/variant.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level_commas(&tokens)
        .into_iter()
        .map(|chunk| {
            let has_default = chunk_has_serde_default(&chunk);
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Field {
                    name: id.to_string(),
                    has_default,
                },
                other => panic!("serde stub derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Counts the fields of a paren-delimited tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level_commas(&tokens).len()
}

fn parse_enum_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, shape));
    }
    variants
}

fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are not supported (on `{name}`)");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde stub derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g.stream()))
            }
            other => panic!("serde stub derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde stub derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let mut out = String::from("{ let mut map = ::serde::Map::new();\n");
            for f in fields {
                let _ = writeln!(
                    out,
                    "map.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));",
                    f = f.name
                );
            }
            out.push_str("::serde::Value::Object(map) }");
            out
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut out = String::from("match self {\n");
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            out,
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        let _ = writeln!(
                            out,
                            "{name}::{vname}({binds}) => {{ \
                             let mut map = ::serde::Map::new(); \
                             map.insert(\"{vname}\".to_string(), {inner}); \
                             ::serde::Value::Object(map) }}",
                            binds = binds.join(", "),
                        );
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{ let mut inner = ::serde::Map::new();\n",
                            binds.join(", ")
                        );
                        for f in fields {
                            let _ = writeln!(
                                arm,
                                "inner.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));",
                                f = f.name
                            );
                        }
                        let _ = writeln!(
                            arm,
                            "let mut map = ::serde::Map::new(); \
                             map.insert(\"{vname}\".to_string(), ::serde::Value::Object(inner)); \
                             ::serde::Value::Object(map) }}"
                        );
                        out.push_str(&arm);
                    }
                }
            }
            out.push('}');
            out
        }
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    code.parse().expect("serde stub derive: generated invalid Serialize impl")
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Expression string reading named fields out of a map expression `{src}`.
/// Fields marked `#[serde(default)]` fall back to `Default::default()`
/// when the key is absent (a present value, even null, still deserializes).
fn named_fields_ctor(path: &str, fields: &[Field], src: &str) -> String {
    let mut out = format!("{path} {{\n");
    for f in fields {
        if f.has_default {
            let _ = writeln!(
                out,
                "{f}: match {src}.get(\"{f}\") {{ \
                 Some(val) => ::serde::Deserialize::from_value(val)?, \
                 None => ::std::default::Default::default(), }},",
                f = f.name
            );
        } else {
            let _ = writeln!(
                out,
                "{f}: ::serde::Deserialize::from_value({src}.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,",
                f = f.name
            );
        }
    }
    out.push('}');
    out
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::UnitStruct => format!(
            "if v.is_null() {{ Ok({name}) }} else {{ \
             Err(::serde::Error::custom(format!(\"expected null for {name}, got {{v}}\"))) }}"
        ),
        Shape::NamedStruct(fields) => {
            let ctor = named_fields_ctor(&name, fields, "obj");
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(format!(\"expected object for {name}, got {{v}}\")))?;\n\
                 Ok({ctor})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(format!(\"expected array for {name}, got {{v}}\")))?;\n\
                 if arr.len() != {n} {{ return Err(::serde::Error::custom(format!(\
                 \"expected {n} elements for {name}, got {{}}\", arr.len()))); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            // Unit variants arrive as plain strings; data variants as
            // single-key objects `{"Variant": ...}` (external tagging).
            let mut string_arms = String::new();
            let mut tag_arms = String::new();
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => {
                        let _ = writeln!(string_arms, "\"{vname}\" => return Ok({name}::{vname}),");
                        let _ = writeln!(tag_arms, "\"{vname}\" => Ok({name}::{vname}),");
                    }
                    VariantShape::Tuple(1) => {
                        let _ = writeln!(
                            tag_arms,
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        let _ = writeln!(
                            tag_arms,
                            "\"{vname}\" => {{ let arr = inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for variant {vname}\"))?;\n\
                             if arr.len() != {n} {{ return Err(::serde::Error::custom(format!(\
                             \"expected {n} elements for {name}::{vname}, got {{}}\", arr.len()))); }}\n\
                             Ok({name}::{vname}({items})) }}",
                            items = items.join(", ")
                        );
                    }
                    VariantShape::Named(fields) => {
                        let ctor = named_fields_ctor(&format!("{name}::{vname}"), fields, "vobj");
                        let _ = writeln!(
                            tag_arms,
                            "\"{vname}\" => {{ let vobj = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for variant {vname}\"))?;\n\
                             Ok({ctor}) }}"
                        );
                    }
                }
            }
            format!(
                "if let Some(s) = v.as_str() {{\n\
                 match s {{\n{string_arms}\
                 other => return Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))), }}\n}}\n\
                 let obj = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(format!(\"expected string or object for {name}, got {{v}}\")))?;\n\
                 let (tag, inner) = obj.iter().next().ok_or_else(|| \
                 ::serde::Error::custom(\"expected single-key object for {name}\"))?;\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{tag_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))), }}"
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}"
    );
    code.parse().expect("serde stub derive: generated invalid Deserialize impl")
}
