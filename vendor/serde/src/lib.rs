//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based data model, this stub routes everything
//! through one JSON-shaped [`Value`] tree: `Serialize` renders to a
//! `Value`, `Deserialize` reads from one. `serde_json` (also vendored)
//! re-exports the same `Value` and adds text parsing/printing, so the
//! combination behaves like the real pair for every use in this workspace.

pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::{Map, Number, Value};

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types constructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of `v`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first shape/type mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Renders any serializable value as a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Owned deserialization — identical to [`Deserialize`] in this stub.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}
