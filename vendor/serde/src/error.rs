//! The shared error type for (de)serialization failures.

use std::fmt;

/// A human-readable (de)serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
