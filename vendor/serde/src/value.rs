//! The JSON value tree shared by `serde` and `serde_json`.

use std::fmt;

/// An insertion-ordered string-keyed map (what `serde_json` calls
/// `Map<String, Value>` with the `preserve_order` feature).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing any existing entry.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in insertion order.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON number: unsigned, signed, or floating.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// A JSON document tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `true` iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]` — `Null` for non-objects and missing keys.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// `value[i]` — `Null` for non-arrays and out-of-range indexes.
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_eq_prim {
    ($($ty:ty => $to:expr),* $(,)?) => {$(
        impl PartialEq<$ty> for Value {
            #[allow(clippy::redundant_closure_call)]
            fn eq(&self, other: &$ty) -> bool {
                self == &($to)(*other)
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_eq_prim!(
    bool => Value::Bool,
    u32 => |v: u32| Value::Number(Number::PosInt(v as u64)),
    u64 => |v: u64| Value::Number(Number::PosInt(v)),
    usize => |v: usize| Value::Number(Number::PosInt(v as u64)),
    i32 => |v: i32| Value::Number(Number::NegInt(v as i64)),
    i64 => |v: i64| Value::Number(Number::NegInt(v)),
    f64 => |v: f64| Value::Number(Number::Float(v)),
);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

fn write_number(f: &mut impl fmt::Write, n: &Number) -> fmt::Result {
    match *n {
        Number::PosInt(v) => write!(f, "{v}"),
        Number::NegInt(v) => write!(f, "{v}"),
        Number::Float(v) if v.is_finite() => {
            if v == v.trunc() && v.abs() < 1e15 {
                // Keep a decimal point so the value round-trips as a float.
                write!(f, "{v:.1}")
            } else {
                write!(f, "{v}")
            }
        }
        // JSON has no inf/nan; mirror serde_json's `null` behavior.
        Number::Float(_) => f.write_str("null"),
    }
}

/// Writes `v` as compact (`indent == None`) or pretty JSON.
pub(crate) fn write_value(
    f: &mut impl fmt::Write,
    v: &Value,
    indent: Option<usize>,
) -> fmt::Result {
    fn pad(f: &mut impl fmt::Write, level: usize) -> fmt::Result {
        for _ in 0..level {
            f.write_str("  ")?;
        }
        Ok(())
    }
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => write_number(f, n),
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            f.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                if let Some(level) = indent {
                    f.write_char('\n')?;
                    pad(f, level + 1)?;
                }
                write_value(f, item, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                f.write_char('\n')?;
                pad(f, level)?;
            }
            f.write_char(']')
        }
        Value::Object(map) => {
            if map.is_empty() {
                return f.write_str("{}");
            }
            f.write_char('{')?;
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                if let Some(level) = indent {
                    f.write_char('\n')?;
                    pad(f, level + 1)?;
                }
                write_escaped(f, k)?;
                f.write_char(':')?;
                if indent.is_some() {
                    f.write_char(' ')?;
                }
                write_value(f, val, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                f.write_char('\n')?;
                pad(f, level)?;
            }
            f.write_char('}')
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None)?;
        f.write_str(&out)
    }
}

impl Value {
    /// Pretty JSON text with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(0)).expect("string formatting cannot fail");
        out
    }
}
