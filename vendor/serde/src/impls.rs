//! `Serialize`/`Deserialize` implementations for primitives and the std
//! types this workspace serializes.

use crate::{Deserialize, Error, Map, Number, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::custom(format!(
                        "expected array of {want}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Duration {
    /// Mirrors serde's `{"secs": u64, "nanos": u32}` encoding.
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".to_string(), self.as_secs().to_value());
        m.insert("nanos".to_string(), self.subsec_nanos().to_value());
        Value::Object(m)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected duration object, got {v}")))?;
        let secs = u64::from_value(obj.get("secs").unwrap_or(&Value::Null))?;
        let nanos = u32::from_value(obj.get("nanos").unwrap_or(&Value::Null))?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = Vec::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let d = Duration::new(3, 250);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
        let none: Option<u32> = Option::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
    }
}
