//! Offline stand-in for `proptest`.
//!
//! Covers the surface this workspace uses: range and tuple strategies,
//! `Just`, `any`, `prop::collection::vec`, `prop::sample::Index`,
//! `prop_map`/`prop_flat_map`, `ProptestConfig::with_cases`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate: generation is a deterministic function
//! of the test name and case number (so failures are reproducible without a
//! persistence file), and failing cases are reported without shrinking.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Config, RNG, and error types for generated test runners.

    use std::fmt;

    /// How many cases each property runs (no other knobs in the stub).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// Matches the real crate's 256-case default.
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case asked to be discarded.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A discarded case.
        pub fn reject<S: Into<String>>(message: S) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// FNV-1a over a string — used to derive per-test seeds.
    pub fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// A SplitMix64 stream, deterministic per `(seed, case)`.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for case number `case` of a property seeded with `seed`.
        pub fn deterministic(seed: u64, case: u64) -> Self {
            TestRng {
                state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample from an empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
        self,
        f: F,
    ) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { source: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The [`any`] strategy for `A`.
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

pub mod sample {
    //! Index sampling, mirroring `proptest::sample`.

    use super::{Arbitrary, TestRng};

    /// A position into a collection whose length is only known later.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this draw onto `0..len`; `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vector length specification.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Namespaced re-exports used as `prop::collection::vec(...)` etc.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*`.

    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional `#![proptest_config(...)]` header followed by any
/// number of `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let seed = $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_runner::TestRng::deterministic(seed, case);
                #[allow(unused_parens)]
                let ($($pat),+) =
                    ($($crate::Strategy::generate(&($strat), &mut rng)),+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(err) => {
                        panic!("proptest case {case} of {}: {err}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}` ({})",
            left,
            right,
            stringify!($left == $right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..10, b in 1usize..=4, x in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn flat_map_and_vec_compose(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0..10u32, n)).prop_map(|v| v.len())) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn index_maps_into_len(i in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(i.index(len) < len);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u32..100, 0.0f64..1.0);
        let mut r1 = crate::test_runner::TestRng::deterministic(7, 3);
        let mut r2 = crate::test_runner::TestRng::deterministic(7, 3);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
