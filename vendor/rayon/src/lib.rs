//! Offline stand-in for `rayon`, covering the `into_par_iter().map(..)
//! .collect()` pipeline the ensemble uses.
//!
//! Work is distributed over `std::thread::scope` threads via an atomic
//! work-stealing index, and results are written back by position, so output
//! order matches input order exactly like rayon's indexed parallel
//! iterators. One barrier per `map` stage — fine for the single-stage
//! pipeline this workspace runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-compatible prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel pipeline that can be mapped and collected.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;

    /// Materializes the pipeline, running closures in parallel.
    fn run(self) -> Vec<Self::Item>;

    /// Applies `f` to every element in parallel, preserving order.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the results (order-preserving).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.run())
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the materialized, ordered results.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// A source backed by pre-materialized items.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;
    fn into_par_iter(self) -> Self::Iter {
        VecParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    type Iter = VecParIter<u32>;
    fn into_par_iter(self) -> Self::Iter {
        VecParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecParIter { items: self }
    }
}

/// The `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        par_apply(self.base.run(), &self.f)
    }
}

std::thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; `0`
    /// means "no override, use the global default".
    static POOL_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of worker threads used for parallel stages.
///
/// Resolution order matches real rayon closely enough for this
/// workspace: an [`ThreadPool::install`] scope wins, then the
/// `RAYON_NUM_THREADS` environment variable, then hardware parallelism.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed > 0 {
        return installed;
    }
    if let Some(n) = env_num_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `RAYON_NUM_THREADS` parsed once (real rayon also reads it only at
/// global-pool creation). `0` / unset / unparsable mean "no limit".
fn env_num_threads() -> Option<usize> {
    static ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Error produced by [`ThreadPoolBuilder::build`]. The stub never
/// actually fails to build, but the type keeps call sites
/// source-compatible with real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped [`ThreadPool`], mirroring rayon's API surface
/// used by this workspace (`new().num_threads(n).build()`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` worker threads; `0` restores the automatic
    /// count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes parallel stages to a fixed thread count.
///
/// Unlike real rayon the stub spawns threads per stage rather than
/// keeping a warm pool; `install` only pins the *count* used by stages
/// running inside the closure (on this thread), which is exactly what
/// determinism tests need.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The thread count stages inside [`install`](Self::install) will use.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }

    /// Runs `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Applies `f` to each item on a scoped thread pool, preserving order.
fn par_apply<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("input taken twice");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_parallel_map() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn vec_source_and_chained_maps() {
        let out: Vec<String> = vec![3u32, 1, 4]
            .into_par_iter()
            .map(|v| v + 1)
            .map(|v| v.to_string())
            .collect();
        assert_eq!(out, vec!["4", "2", "5"]);
    }

    #[test]
    fn install_pins_thread_count_and_restores_it() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let (inside, out): (usize, Vec<usize>) = pool.install(|| {
            (
                super::current_num_threads(),
                (0..10usize).into_par_iter().map(|i| i + 1).collect(),
            )
        });
        assert_eq!(inside, 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        // The override does not leak past the install scope.
        assert!(super::POOL_THREADS.with(|t| t.get()) == 0);
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                ids.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(distinct > 1, "expected parallel execution, got {distinct}");
        }
    }
}
