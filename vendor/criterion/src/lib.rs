//! Offline stand-in for `criterion`.
//!
//! Keeps the same API shape the workspace's benches use so they compile and
//! run, with crude wall-clock measurement instead of statistics. Mirrors
//! real criterion's behavior under `cargo test` (no `--bench` flag): each
//! benchmark body runs exactly once as a smoke test, so `harness = false`
//! bench targets stay fast in the test suite.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value blocker re-exported for benches that import it from
/// criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a benchmark's throughput is reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-iteration measurement handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    /// True when launched via `cargo bench` (`--bench` flag): measure.
    /// False under `cargo test`: run every body once as a smoke test.
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let measure = self.measure;
        run_one(name, measure, 10, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations when measuring.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.measure,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.measure,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (reports nothing extra in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    measure: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let iters = if measure { sample_size.max(1) as u64 } else { 1 };
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if measure {
        let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!(" ({:.0} elem/s)", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!(" ({:.0} B/s)", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!("{label}: {:.3} ms/iter{rate}", per_iter * 1e3);
    } else {
        println!("{label}: ok (test mode, 1 iter)");
    }
}

/// Declares a group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { measure: false };
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let data = vec![1u64, 2, 3, 4];
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 4), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>());
            ran += 1;
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
        assert_eq!(ran, 1);
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
    }
}
