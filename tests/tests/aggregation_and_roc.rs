//! Cross-crate checks of the alternative evidence aggregation and the
//! ROC-smoothness contrast (the "zigzag ROC" motivation of the paper's
//! introduction).

use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_baselines::Fraudar;
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_eval::{PrCurve, RocCurve};

fn setup() -> (ensemfdet_datagen::Dataset, ensemfdet::EnsembleOutcome) {
    let ds = generate(&jd_preset(JdDataset::Jd1, 200, 55));
    let out = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 24,
        sample_ratio: 0.1,
        seed: 21,
        ..Default::default()
    })
    .detect(&ds.graph);
    (ds, out)
}

#[test]
fn evidence_aggregation_matches_vote_quality() {
    let (ds, out) = setup();
    let labels = ds.labels();

    let vote_sets: Vec<(f64, Vec<u32>)> = (1..=out.votes.max_user_votes())
        .map(|t| {
            (
                t as f64,
                out.votes.detected_users(t).into_iter().map(|u| u.0).collect(),
            )
        })
        .collect();
    let vote_curve =
        PrCurve::from_threshold_sets(vote_sets.iter().map(|(t, d)| (*t, d.as_slice())), &labels);

    let evidence_curve = PrCurve::from_scores(out.evidence.user_scores(), &labels);

    // The continuous evidence sweep must be at least competitive with the
    // paper's flat voting (same detections, finer ordering).
    assert!(
        evidence_curve.best_f1() > 0.85 * vote_curve.best_f1(),
        "evidence F1 {} vs vote F1 {}",
        evidence_curve.best_f1(),
        vote_curve.best_f1()
    );
    // And it offers at least as many distinct operating points.
    assert!(evidence_curve.points.len() >= vote_curve.points.len());
}

#[test]
fn evidence_and_votes_agree_on_support() {
    let (_, out) = setup();
    for (u, &votes) in out.votes.user_votes.iter().enumerate() {
        let ev = out.evidence.user_evidence[u];
        assert_eq!(votes > 0, ev > 0.0, "user {u}: votes {votes}, evidence {ev}");
    }
}

#[test]
fn ensemfdet_roc_is_smoother_than_fraudar() {
    let (ds, out) = setup();
    let labels = ds.labels();

    let vote_sets: Vec<(f64, Vec<u32>)> = (1..=out.votes.max_user_votes())
        .map(|t| {
            (
                t as f64,
                out.votes.detected_users(t).into_iter().map(|u| u.0).collect(),
            )
        })
        .collect();
    let ens_roc =
        RocCurve::from_threshold_sets(vote_sets.iter().map(|(t, d)| (*t, d.as_slice())), &labels);

    let fraudar_result = Fraudar::default().run(&ds.graph);
    let points = fraudar_result.operating_points();
    let fra_roc = RocCurve::from_threshold_sets(
        points.iter().map(|(k, d)| (*k as f64, d.as_slice())),
        &labels,
    );

    // The introduction's complaint: block detectors jump in TPR. The
    // ensemble's largest jump should be markedly smaller.
    let ens_jump = ens_roc.max_tpr_jump();
    let fra_jump = fra_roc.max_tpr_jump();
    assert!(
        ens_jump < fra_jump,
        "EnsemFDet max TPR jump {ens_jump} vs Fraudar {fra_jump}"
    );
    // Both are credible detectors on planted data.
    assert!(ens_roc.auc() > 0.6, "EnsemFDet AUC {}", ens_roc.auc());
}
