//! Persistence round-trips across crates: datasets written to disk must
//! produce identical detections when reloaded.

use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate, Dataset};

fn tmp_stem(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ensemfdet_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn saved_dataset_detects_identically() {
    let ds = generate(&jd_preset(JdDataset::Jd2, 400, 8));
    let stem = tmp_stem("jd2_roundtrip");
    ds.save(&stem).unwrap();
    let loaded = Dataset::load(&stem).unwrap();

    assert_eq!(loaded.graph.num_users(), ds.graph.num_users());
    assert_eq!(loaded.graph.num_merchants(), ds.graph.num_merchants());
    assert_eq!(loaded.graph.edge_slice(), ds.graph.edge_slice());
    assert_eq!(loaded.blacklist, ds.blacklist);

    let cfg = EnsemFdetConfig {
        num_samples: 10,
        sample_ratio: 0.2,
        seed: 44,
        ..Default::default()
    };
    let a = EnsemFdet::new(cfg).detect(&ds.graph);
    let b = EnsemFdet::new(cfg).detect(&loaded.graph);
    assert_eq!(a.votes, b.votes, "detection differs after disk round-trip");
}

#[test]
fn labels_vector_matches_blacklist_after_reload() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 400, 9));
    let stem = tmp_stem("jd1_labels");
    ds.save(&stem).unwrap();
    let loaded = Dataset::load(&stem).unwrap();
    let labels = loaded.labels();
    assert_eq!(
        labels.iter().filter(|&&l| l).count(),
        loaded.blacklist.len()
    );
    for &u in &loaded.blacklist {
        assert!(labels[u as usize]);
    }
}
