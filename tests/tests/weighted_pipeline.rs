//! The weighted code path end-to-end: Theorem 1's `1/p`-re-weighted edge
//! samples flowing through the density metric, the peel, and FDET.

use ensemfdet::fdet::{fdet, Truncation};
use ensemfdet::metric::{LogWeightedMetric, MetricKind};
use ensemfdet::peel::peel_densest_full;
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_sampling::weighted::{epsilon_approx_sample, theorem1_probability};

#[test]
fn weighted_samples_detect_the_same_rings() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 300, 71));
    let g = &ds.graph;
    let fraud: std::collections::HashSet<u32> = ds.groups[0].users.iter().copied().collect();

    // Reference: FDET on the full graph.
    let full = fdet(g, &MetricKind::default(), Truncation::default());
    let full_hits = full
        .detected_users()
        .iter()
        .filter(|u| fraud.contains(&u.0))
        .count();
    assert!(full_hits * 2 > fraud.len(), "reference detection too weak");

    // Weighted ε-approximation at p = 0.6: re-weighted edges must keep the
    // ring detectable in most draws.
    let mut detected_rates = Vec::new();
    for seed in 0..8u64 {
        let s = epsilon_approx_sample(g, 0.6, seed);
        assert!(s.graph.is_weighted(), "Theorem 1 samples carry 1/p weights");
        let result = fdet(&s.graph, &MetricKind::default(), Truncation::default());
        let hits = result
            .detected_users()
            .into_iter()
            .map(|lu| s.parent_user(lu).0)
            .filter(|u| fraud.contains(u))
            .count();
        detected_rates.push(hits as f64 / fraud.len() as f64);
    }
    let mean_rate = detected_rates.iter().sum::<f64>() / detected_rates.len() as f64;
    assert!(
        mean_rate > 0.3,
        "weighted samples lost the ring: mean member hit rate {mean_rate:.2}"
    );
}

#[test]
fn peel_score_scales_linearly_with_uniform_edge_weights() {
    // φ is linear in edge weights for a fixed column-weight function input:
    // scaling every weight by c scales f(S) but also merchant degrees
    // (inside the log), so compare against an explicitly recomputed oracle.
    let ds = generate(&jd_preset(JdDataset::Jd1, 400, 72));
    let g = &ds.graph;
    let s = epsilon_approx_sample(g, 0.5, 3);
    let m = LogWeightedMetric::paper_default();
    let block = peel_densest_full(&s.graph, &m).expect("sample has edges");
    let oracle = ensemfdet::peel::density_of_subset(&s.graph, &m, &block.users, &block.merchants);
    assert!(
        (block.score - oracle).abs() < 1e-9,
        "weighted-peel score {} vs oracle {oracle}",
        block.score
    );
}

#[test]
fn theorem1_probability_is_conservative_at_scale() {
    // At Table I scale the bound demands a large p for tight ε — sanity
    // that the formula behaves across realistic parameter ranges.
    for n in [10_000usize, 100_000, 1_000_000] {
        let mut prev = 1.1;
        for c in [20.0f64, 50.0, 200.0] {
            let p = theorem1_probability(n, c, 1.0, 0.5);
            assert!(p > 0.0 && p <= 1.0);
            assert!(p <= prev + 1e-12, "p must fall as min-degree grows");
            prev = p;
        }
    }
}
