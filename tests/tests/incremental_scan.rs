//! Incremental scans are bit-identical to from-scratch scans.
//!
//! The incremental path (`ScanRunner::run_incremental`) replays cached
//! per-sample contributions that the epoch delta provably left unchanged
//! and re-peels the rest. Its correctness claim is exact equality, not
//! approximation: for any `(epoch, seed)`, the votes and flagged set must
//! match a full `ScanRunner::run` of the same snapshot bit for bit —
//! across seeds, dataset presets, multi-epoch ingest sequences, the
//! cold-cache first epoch, and the oversized-delta fallback.

use ensemfdet::pipeline::{IngestBuffer, ScanRunner, SnapshotStore};
use ensemfdet::{EnsemFdetConfig, FallbackReason, IncrementalPolicy, SamplingMethodConfig};
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::ramp_timeline;
use ensemfdet_graph::{MerchantId, UserId};

const THRESHOLD: u32 = 6;

fn to_ids(batch: &[(u32, u32)]) -> Vec<(UserId, MerchantId)> {
    batch.iter().map(|&(u, v)| (UserId(u), MerchantId(v))).collect()
}

fn config(seed: u64) -> EnsemFdetConfig {
    EnsemFdetConfig {
        num_samples: 12,
        // Small ratio: a cached node-subset sample stays clean with
        // probability ≈ (1-ratio)^touched, so this is the regime where
        // reuse actually fires and the replay machinery gets exercised
        // (not just the all-dirty degenerate case).
        sample_ratio: 0.05,
        method: SamplingMethodConfig::OneSideUser,
        seed,
        ..Default::default()
    }
}

/// Drives one ramping-campaign ingest sequence, scanning every epoch both
/// incrementally and from scratch, asserting exact equality throughout.
/// Returns the total number of samples the incremental runner replayed.
fn drive(preset: JdDataset, seed: u64, policy: &IncrementalPolicy) -> (usize, Vec<ReuseRecord>) {
    let tl = ramp_timeline(&jd_preset(preset, 600, seed), 4);
    let cfg = config(seed);
    let buffer = IngestBuffer::new();
    let store = SnapshotStore::new(1);
    let mut inc_runner = ScanRunner::new();
    let mut total_reused = 0;
    let mut records = Vec::new();
    for (i, batch) in std::iter::once(&tl.base).chain(tl.epochs.iter()).enumerate() {
        buffer.append_batch(to_ids(batch));
        let snapshot = store.refresh(&buffer, true);
        let inc = inc_runner.run_incremental(&snapshot, &store, &cfg, THRESHOLD, policy);
        // The oracle is a fresh runner: no cache, no alert history —
        // a genuine from-scratch scan of the same snapshot.
        let full = ScanRunner::new().run(&snapshot, &cfg, THRESHOLD);
        assert_eq!(
            inc.votes, full.votes,
            "{preset:?} seed {seed} epoch {i}: vote tallies diverged"
        );
        assert_eq!(
            inc.flagged, full.flagged,
            "{preset:?} seed {seed} epoch {i}: flagged sets diverged"
        );
        assert_eq!(inc.epoch, full.epoch);
        total_reused += inc.reuse.samples_reused;
        records.push(ReuseRecord {
            epoch_index: i,
            incremental: inc.reuse.incremental,
            fallback: inc.reuse.fallback,
        });
    }
    (total_reused, records)
}

struct ReuseRecord {
    epoch_index: usize,
    incremental: bool,
    fallback: Option<FallbackReason>,
}

#[test]
fn incremental_matches_full_across_seeds_and_presets() {
    let policy = IncrementalPolicy {
        max_touched_fraction: 1.0,
    };
    for preset in [JdDataset::Jd1, JdDataset::Jd2] {
        for seed in [3, 17, 91] {
            let (total_reused, records) = drive(preset, seed, &policy);
            // First epoch: nothing cached yet — the cold-cache fallback
            // runs a full scan and primes the cache.
            assert_eq!(
                records[0].fallback,
                Some(FallbackReason::ColdCache),
                "{preset:?} seed {seed}: first scan must report a cold cache"
            );
            assert!(!records[0].incremental);
            // Every later epoch takes the reuse path (the permissive
            // policy never trips the oversized-delta fallback).
            for r in &records[1..] {
                assert!(
                    r.incremental && r.fallback.is_none(),
                    "{preset:?} seed {seed} epoch {}: expected incremental, got {:?}",
                    r.epoch_index,
                    r.fallback
                );
            }
            assert!(
                total_reused > 0,
                "{preset:?} seed {seed}: no sample was ever replayed — the \
                 reuse path went untested"
            );
        }
    }
}

#[test]
fn oversized_delta_falls_back_and_still_matches() {
    // A zero-tolerance policy: any delta that touches a node is
    // "oversized", so every post-cold epoch degrades to a full re-peel.
    // Results must be identical regardless.
    let policy = IncrementalPolicy {
        max_touched_fraction: 0.0,
    };
    let (total_reused, records) = drive(JdDataset::Jd1, 17, &policy);
    assert_eq!(records[0].fallback, Some(FallbackReason::ColdCache));
    for r in &records[1..] {
        assert_eq!(
            r.fallback,
            Some(FallbackReason::OversizedDelta),
            "epoch {}: expected the oversized-delta fallback",
            r.epoch_index
        );
        assert!(!r.incremental);
    }
    assert_eq!(total_reused, 0, "fallbacks never replay cached samples");
}

#[test]
fn rescanning_the_same_epoch_replays_everything() {
    let tl = ramp_timeline(&jd_preset(JdDataset::Jd1, 600, 5), 2);
    let cfg = config(5);
    let policy = IncrementalPolicy::default();
    let buffer = IngestBuffer::new();
    let store = SnapshotStore::new(1);
    let mut runner = ScanRunner::new();
    buffer.append_batch(to_ids(&tl.base));
    let snapshot = store.refresh(&buffer, true);
    let cold = runner.run_incremental(&snapshot, &store, &cfg, THRESHOLD, &policy);
    assert_eq!(cold.reuse.fallback, Some(FallbackReason::ColdCache));
    // Same epoch again: the delta is empty, every sample replays, and the
    // outcome is unchanged.
    let again = runner.run_incremental(&snapshot, &store, &cfg, THRESHOLD, &policy);
    assert!(again.reuse.incremental);
    assert_eq!(again.reuse.samples_reused, cfg.num_samples);
    assert_eq!(again.reuse.samples_repeeled, 0);
    assert_eq!(again.votes, cold.votes);
    assert_eq!(again.flagged, cold.flagged);
}
