//! End-to-end: synthetic campaign data → ensemble detection → evaluation.

use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_eval::{confusion, PrCurve};

fn detect(cfg_seed: u64) -> (ensemfdet_datagen::Dataset, ensemfdet::EnsembleOutcome) {
    let ds = generate(&jd_preset(JdDataset::Jd1, 200, 31));
    let out = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 24,
        sample_ratio: 0.1,
        seed: cfg_seed,
        ..Default::default()
    })
    .detect(&ds.graph);
    (ds, out)
}

#[test]
fn ensemble_beats_chance_decisively() {
    let (ds, out) = detect(1);
    let labels = ds.labels();
    let sets: Vec<(f64, Vec<u32>)> = (1..=out.votes.max_user_votes())
        .map(|t| {
            (
                t as f64,
                out.votes.detected_users(t).into_iter().map(|u| u.0).collect(),
            )
        })
        .collect();
    let curve =
        PrCurve::from_threshold_sets(sets.iter().map(|(t, d)| (*t, d.as_slice())), &labels);
    let prevalence = ds.blacklist.len() as f64 / ds.graph.num_users() as f64;
    assert!(
        curve.best_f1() > 5.0 * prevalence,
        "best F1 {} vs prevalence {}",
        curve.best_f1(),
        prevalence
    );
    assert!(curve.best_f1() > 0.4, "best F1 {}", curve.best_f1());
}

#[test]
fn precision_trends_up_and_recall_down_with_t() {
    let (ds, out) = detect(2);
    let labels = ds.labels();
    let max_t = out.votes.max_user_votes();
    assert!(max_t >= 4, "not enough votes to sweep");
    // Compare the low-T and high-T halves in aggregate (pointwise
    // monotonicity is statistical, not guaranteed).
    let stats: Vec<(f64, f64)> = (1..=max_t)
        .map(|t| {
            let detected: Vec<u32> = out.votes.detected_users(t).into_iter().map(|u| u.0).collect();
            let c = confusion(&detected, &labels);
            (c.precision(), c.recall())
        })
        .collect();
    let half = stats.len() / 2;
    let lo_p: f64 = stats[..half].iter().map(|s| s.0).sum::<f64>() / half as f64;
    let hi_p: f64 =
        stats[half..].iter().map(|s| s.0).sum::<f64>() / (stats.len() - half) as f64;
    let lo_r: f64 = stats[..half].iter().map(|s| s.1).sum::<f64>() / half as f64;
    let hi_r: f64 =
        stats[half..].iter().map(|s| s.1).sum::<f64>() / (stats.len() - half) as f64;
    assert!(hi_p >= lo_p * 0.95, "precision fell with T: {lo_p} → {hi_p}");
    assert!(hi_r < lo_r, "recall must fall with T: {lo_r} → {hi_r}");
    // Recall is *strictly* monotone non-increasing pointwise (set shrinks).
    for w in stats.windows(2) {
        assert!(w[1].1 <= w[0].1 + 1e-12);
    }
}

#[test]
fn detection_is_reproducible_across_processes_shape() {
    let (_, a) = detect(3);
    let (_, b) = detect(3);
    assert_eq!(a.votes, b.votes);
    let (_, c) = detect(4);
    assert_ne!(a.votes.user_votes, c.votes.user_votes);
}

#[test]
fn detected_high_confidence_users_are_mostly_planted_fraud() {
    let (ds, out) = detect(5);
    let fraud: std::collections::HashSet<u32> = ds.true_fraud_users.iter().copied().collect();
    let t = (out.votes.max_user_votes() / 2).max(1);
    let detected = out.votes.detected_users(t);
    assert!(!detected.is_empty());
    let hits = detected.iter().filter(|u| fraud.contains(&u.0)).count();
    let rate = hits as f64 / detected.len() as f64;
    assert!(
        rate > 0.8,
        "only {hits}/{} high-confidence detections are planted fraud",
        detected.len()
    );
}
