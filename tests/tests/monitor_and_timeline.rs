//! Cross-crate: the live monitor consuming generated campaign data, and
//! detection across a drifting multi-period timeline.

use ensemfdet::{CampaignMonitor, EnsemFdetConfig, MonitorConfig};
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate, generate_timeline, BehaviorDrift, TimelineConfig};
use ensemfdet_eval::group_recall;
use ensemfdet_graph::{MerchantId, UserId};

#[test]
fn monitor_catches_generated_rings_during_replay() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 300, 91));
    let mut monitor = CampaignMonitor::new(MonitorConfig {
        detector: EnsemFdetConfig {
            num_samples: 16,
            sample_ratio: 0.2,
            seed: 5,
            ..Default::default()
        },
        // Manual scans only. The alert threshold sits well below N: each
        // sample's auto-truncated detection keeps only the ring's densest
        // core (~40% of members), so individual members' votes spread.
        scan_interval: usize::MAX,
        alert_threshold: 4,
        min_transactions: 0,
    });

    // Replay the generated purchase log through the monitor.
    monitor.ingest_batch(
        ds.graph
            .edges()
            .map(|(_, u, v, _)| (u, v)),
    );
    assert_eq!(monitor.transactions_seen(), ds.graph.num_edges());

    let report = monitor.scan();
    let detected: Vec<u32> = report.flagged.iter().map(|u| u.0).collect();
    let groups: Vec<Vec<u32>> = ds.groups.iter().map(|g| g.users.clone()).collect();
    let gr = group_recall(&groups, &detected, 0.5);
    assert!(
        gr >= 0.99,
        "monitor missed planted rings: group recall {gr} ({} flagged)",
        detected.len()
    );
    // And the flags are precise: honest accounts stay clear at this T.
    let fraud: std::collections::HashSet<u32> = ds.true_fraud_users.iter().copied().collect();
    let false_pos = detected.iter().filter(|u| !fraud.contains(u)).count();
    assert!(
        (false_pos as f64) < 0.2 * detected.len() as f64,
        "{false_pos} honest accounts among {} flags",
        detected.len()
    );
    // The snapshot matches what was ingested (dedup aside).
    let snap = monitor.graph_snapshot();
    assert_eq!(snap.num_edges(), ds.graph.num_edges());
}

#[test]
fn monitor_alerts_are_stable_across_repeated_scans() {
    let mut monitor = CampaignMonitor::new(MonitorConfig {
        detector: EnsemFdetConfig {
            num_samples: 10,
            sample_ratio: 0.5,
            seed: 8,
            ..Default::default()
        },
        scan_interval: usize::MAX,
        alert_threshold: 6,
        min_transactions: 0,
    });
    for u in 0..12u32 {
        for v in 0..4u32 {
            monitor.ingest(UserId(u), MerchantId(v));
        }
    }
    for u in 12..200u32 {
        monitor.ingest(UserId(u), MerchantId(4 + u % 60));
    }
    let first = monitor.scan();
    let second = monitor.scan();
    // Same data + deterministic seeds ⇒ identical flags, no re-alerts.
    assert_eq!(first.flagged, second.flagged);
    assert!(second.new_alerts.is_empty());
}

#[test]
fn detection_holds_across_early_timeline_periods() {
    let cfg = TimelineConfig {
        base: jd_preset(JdDataset::Jd1, 300, 92),
        periods: 3,
        drift: BehaviorDrift {
            density_factor: 0.85,
            camouflage_step: 0,
        },
    };
    let periods = generate_timeline(&cfg);
    let detector = ensemfdet::EnsemFdet::new(EnsemFdetConfig {
        num_samples: 20,
        sample_ratio: 0.1,
        seed: 6,
        ..Default::default()
    });
    let mut group_recalls = Vec::new();
    for ds in &periods {
        let out = detector.detect(&ds.graph);
        let t = (out.votes.max_user_votes() / 3).max(1);
        let detected: Vec<u32> = out.votes.detected_users(t).into_iter().map(|u| u.0).collect();
        let groups: Vec<Vec<u32>> = ds.groups.iter().map(|g| g.users.clone()).collect();
        group_recalls.push(group_recall(&groups, &detected, 0.5));
    }
    // Mild drift (0.85²) must not break ring-level detection.
    for (p, gr) in group_recalls.iter().enumerate() {
        assert!(*gr > 0.9, "period {p}: group recall {gr}");
    }
}
