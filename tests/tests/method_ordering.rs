//! The Figure 3 shape as an invariant: on planted-block data the
//! dense-subgraph methods (EnsemFDet, Fraudar) must decisively beat the
//! spectral baselines, and EnsemFDet must track Fraudar closely.

use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_baselines::{FBox, Fraudar, Spoken};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_eval::PrCurve;

fn curves() -> (f64, f64, f64, f64) {
    let ds = generate(&jd_preset(JdDataset::Jd1, 150, 21));
    let labels = ds.labels();

    let out = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 32,
        sample_ratio: 0.1,
        seed: 17,
        ..Default::default()
    })
    .detect(&ds.graph);
    let sets: Vec<(f64, Vec<u32>)> = (1..=out.votes.max_user_votes())
        .map(|t| {
            (
                t as f64,
                out.votes.detected_users(t).into_iter().map(|u| u.0).collect(),
            )
        })
        .collect();
    let ens = PrCurve::from_threshold_sets(sets.iter().map(|(t, d)| (*t, d.as_slice())), &labels)
        .best_f1();

    let fraudar_result = Fraudar::default().run(&ds.graph);
    let points = fraudar_result.operating_points();
    let fra = PrCurve::from_threshold_sets(
        points.iter().map(|(k, d)| (*k as f64, d.as_slice())),
        &labels,
    )
    .best_f1();

    let spk = PrCurve::from_scores(&Spoken::default().score_users(&ds.graph), &labels).best_f1();
    let fbx = PrCurve::from_scores(&FBox::default().score_users(&ds.graph), &labels).best_f1();
    (ens, fra, spk, fbx)
}

#[test]
fn dense_subgraph_methods_beat_spectral_baselines() {
    let (ens, fra, spk, fbx) = curves();
    assert!(ens > spk, "EnsemFDet {ens} vs SpokEn {spk}");
    assert!(ens > fbx, "EnsemFDet {ens} vs FBox {fbx}");
    assert!(fra > spk, "Fraudar {fra} vs SpokEn {spk}");
    assert!(fra > fbx, "Fraudar {fra} vs FBox {fbx}");
}

#[test]
fn ensemfdet_tracks_fraudar() {
    let (ens, fra, _, _) = curves();
    // The paper's claim: close performance despite 10x less work per core.
    assert!(
        ens > 0.8 * fra,
        "EnsemFDet {ens} fell too far below Fraudar {fra}"
    );
}
