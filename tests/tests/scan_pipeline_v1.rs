//! End-to-end tests of the v1 scan pipeline over a real socket:
//!
//! * ingest stays fast (bounded p95, no 5xx) while a heavy scan is
//!   running — the redesign's core claim;
//! * scans on the same epoch with the same seed produce bit-identical
//!   flagged sets, matching a direct `EnsemFdet::detect` on the same
//!   graph;
//! * the bounded job queue answers `429 queue_full` when saturated;
//! * unknown/invalid job ids and bad overrides use the standard
//!   `{"error":{"code","message"}}` envelope.

use ensemfdet::pipeline::{IngestBuffer, SnapshotStore};
use ensemfdet::{EnsemFdet, EnsemFdetConfig, MonitorConfig};
use ensemfdet_graph::TransactionInterner;
use ensemfdet_service::{Api, ApiConfig, Server, ServerConfig, ServerHandle};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const SEED: u64 = 77;

fn api(scan_queue_capacity: usize, result_ring: usize) -> Api {
    Api::new(ApiConfig {
        monitor: MonitorConfig {
            detector: EnsemFdetConfig {
                num_samples: 8,
                sample_ratio: 0.5,
                seed: SEED,
                ..Default::default()
            },
            scan_interval: 1_000_000,
            alert_threshold: 4,
            min_transactions: 0,
        },
        scan_queue_capacity,
        result_ring,
        ..Default::default()
    })
}

fn start(scan_queue_capacity: usize) -> ServerHandle {
    start_with_ring(scan_queue_capacity, 16)
}

fn start_with_ring(scan_queue_capacity: usize, result_ring: usize) -> ServerHandle {
    Server::bind_with(
        "127.0.0.1:0",
        api(scan_queue_capacity, result_ring),
        ServerConfig::default(),
    )
    .expect("bind")
    .start()
    .expect("start")
}

fn roundtrip(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("client read timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("recv");
    out
}

fn get(addr: SocketAddr, path: &str) -> (u16, Value) {
    parse(&roundtrip(addr, &format!("GET {path} HTTP/1.1\r\n\r\n")))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Value) {
    parse(&roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    ))
}

fn parse(resp: &str) -> (u16, Value) {
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {resp}"));
    let body = resp
        .find("\r\n\r\n")
        .map(|i| &resp[i + 4..])
        .unwrap_or_default();
    (status, serde_json::from_str(body).unwrap_or(Value::Null))
}

/// The ingest workload: a planted ring plus background shoppers, as
/// individual JSON records.
fn ring_records(bots: usize, stores: usize, shoppers: usize) -> Vec<String> {
    let mut records = Vec::new();
    for b in 0..bots {
        for s in 0..stores {
            records.push(format!("[\"bot-{b}\",\"ring-{s}\"]"));
        }
    }
    for p in 0..shoppers {
        records.push(format!("[\"pin-{p}\",\"store-{}\"]", p % 20));
    }
    records
}

fn ingest(addr: SocketAddr, records: &[String]) -> (u16, Value) {
    post(
        addr,
        "/v1/transactions",
        &format!("{{\"records\":[{}]}}", records.join(",")),
    )
}

fn wait_done(addr: SocketAddr, job_id: u64) -> Value {
    let start = Instant::now();
    loop {
        let (status, body) = get(addr, &format!("/v1/scans/{job_id}"));
        assert_eq!(status, 200, "{body}");
        let state = body["status"].as_str().expect("status field").to_string();
        if state == "done" || state == "failed" {
            return body;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "job {job_id} stuck in {state}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn flagged_of(job: &Value) -> Vec<String> {
    let mut f: Vec<String> = job["result"]["flagged"]
        .as_array()
        .expect("flagged array")
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    f.sort();
    f
}

#[test]
fn ingest_is_not_blocked_by_an_inflight_scan() {
    let server = start(8);
    let addr = server.addr();

    // Seed a graph worth scanning.
    let (status, _) = ingest(addr, &ring_records(10, 6, 400));
    assert_eq!(status, 200);

    // Kick off a deliberately heavy scan (many samples over most of the
    // graph) so it is still running while we ingest.
    let (status, body) = post(
        addr,
        "/v1/scans",
        "{\"num_samples\": 2000, \"sample_ratio\": 0.9}",
    );
    assert_eq!(status, 202, "{body}");
    let job_id = body["job_id"].as_u64().expect("job_id");

    // Hammer ingest while the scan runs; every request must succeed and
    // stay fast.
    let mut latencies = Vec::new();
    let mut saw_inflight = false;
    let batch: Vec<String> = (0..20)
        .map(|i| format!("[\"late-{i}\",\"m-{}\"]", i % 5))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let t = Instant::now();
        let (status, body) = ingest(addr, &batch);
        latencies.push(t.elapsed());
        assert_eq!(status, 200, "ingest failed mid-scan: {body}");

        let (status, job) = get(addr, &format!("/v1/scans/{job_id}"));
        assert_eq!(status, 200);
        match job["status"].as_str().unwrap() {
            "queued" | "running" => saw_inflight = true,
            "done" if saw_inflight => break,
            "done" => panic!("scan finished before any ingest overlapped; make it heavier"),
            other => panic!("job entered {other}: {job}"),
        }
        assert!(Instant::now() < deadline, "scan never finished");
    }
    assert!(latencies.len() >= 3, "too few overlapped ingests to judge");

    // p95 (or max for small samples) stays well under the sync-scan era,
    // where ingest waited for the whole ensemble pass.
    latencies.sort();
    let p95 = latencies[(latencies.len() * 95 / 100).min(latencies.len() - 1)];
    assert!(
        p95 < Duration::from_millis(500),
        "ingest p95 {p95:?} over {} requests during an in-flight scan",
        latencies.len()
    );

    // The scan saw only its pinned epoch: late-* accounts are absent from
    // its result even though they were ingested while it ran.
    let job = wait_done(addr, job_id);
    assert!(
        flagged_of(&job).iter().all(|k| !k.starts_with("late-")),
        "scan leaked post-epoch ingest: {job}"
    );
    server.shutdown();
}

#[test]
fn same_epoch_same_seed_is_bit_identical_and_matches_the_library() {
    let server = start(8);
    let addr = server.addr();
    let records = ring_records(8, 5, 120);
    let (status, _) = ingest(addr, &records);
    assert_eq!(status, 200);

    // Two scans with no ingest in between pin the same epoch.
    let (s1, b1) = post(addr, "/v1/scans", "{}");
    let (s2, b2) = post(addr, "/v1/scans", "{}");
    assert_eq!((s1, s2), (202, 202), "{b1} / {b2}");
    assert_eq!(b1["epoch"], b2["epoch"], "no ingest between scans");

    let j1 = wait_done(addr, b1["job_id"].as_u64().unwrap());
    let j2 = wait_done(addr, b2["job_id"].as_u64().unwrap());
    assert_eq!(j1["status"], "done", "{j1}");
    assert_eq!(j2["status"], "done", "{j2}");
    assert_eq!(flagged_of(&j1), flagged_of(&j2), "same epoch+seed must agree");

    // Replicate the pipeline out-of-process: same interner order, same
    // compaction policy, same seed — the library flags the same keys.
    let mut interner = TransactionInterner::new();
    let buffer = IngestBuffer::new();
    for r in &records {
        let pair: Vec<String> = serde_json::from_str(r).unwrap();
        let (u, v) = (interner.user(&pair[0]), interner.merchant(&pair[1]));
        buffer.append(u, v);
    }
    let snapshot = SnapshotStore::new(1).refresh(&buffer, true);
    let outcome = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 8,
        sample_ratio: 0.5,
        seed: SEED,
        ..Default::default()
    })
    .detect(&snapshot.graph);
    let mut expected: Vec<String> = outcome
        .votes
        .detected_users(4)
        .iter()
        .map(|&u| interner.user_key(u).to_string())
        .collect();
    expected.sort();
    assert_eq!(flagged_of(&j1), expected, "service diverged from the library");
    server.shutdown();
}

#[test]
fn saturated_scan_queue_answers_429_queue_full() {
    let server = start(1);
    let addr = server.addr();
    let (status, _) = ingest(addr, &ring_records(10, 6, 300));
    assert_eq!(status, 200);

    // With a queue of one and heavy scans, rapid submissions must hit the
    // cap. The first few 202s occupy the executor and the queue slot.
    let mut accepted = 0;
    let mut rejected = None;
    for _ in 0..10 {
        let (status, body) = post(
            addr,
            "/v1/scans",
            "{\"num_samples\": 1000, \"sample_ratio\": 0.9}",
        );
        match status {
            202 => accepted += 1,
            429 => {
                rejected = Some(body);
                break;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(accepted >= 1, "nothing was accepted");
    let body = rejected.expect("queue of one never filled across 10 rapid submissions");
    assert_eq!(body["error"]["code"], "queue_full", "{body}");
    assert!(body["error"]["message"].as_str().is_some(), "{body}");
    server.shutdown();
}

#[test]
fn job_lookups_and_overrides_use_the_error_envelope() {
    let server = start(8);
    let addr = server.addr();

    let (status, body) = get(addr, "/v1/scans/999999");
    assert_eq!(status, 404);
    assert_eq!(body["error"]["code"], "unknown_job", "{body}");

    let (status, body) = get(addr, "/v1/scans/not-a-number");
    assert_eq!(status, 400);
    assert_eq!(body["error"]["code"], "bad_request", "{body}");

    let (status, body) = post(addr, "/v1/scans", "{\"sample_ratio\": 0}");
    assert_eq!(status, 400);
    assert_eq!(body["error"]["code"], "invalid_config", "{body}");

    let (status, body) = post(addr, "/v1/scans", "{\"engine\": \"warp\"}");
    assert_eq!(status, 400);
    assert_eq!(body["error"]["code"], "invalid_config", "{body}");

    let (status, body) = get(addr, "/v1/scans/latest");
    assert_eq!(status, 404);
    assert_eq!(body["error"]["code"], "no_completed_scan", "{body}");

    let (status, body) = get(addr, "/no/such/route");
    assert_eq!(status, 404);
    assert_eq!(body["error"]["code"], "not_found", "{body}");
    server.shutdown();
}

/// An id that fell off the result ring answers `410 gone` — distinct from
/// the `404 unknown_job` a never-issued id gets — so clients can tell
/// "poll slower or raise `result_ring`" apart from "you have a bug".
#[test]
fn evicted_job_id_answers_410_gone() {
    let server = start_with_ring(8, 1);
    let addr = server.addr();
    ingest(addr, &ring_records(6, 4, 80));

    let (status, b1) = post(addr, "/v1/scans", "{}");
    assert_eq!(status, 202, "{b1}");
    let id1 = b1["job_id"].as_u64().unwrap();
    wait_done(addr, id1);

    // The second finished scan evicts the first from the one-slot ring.
    let (_, b2) = post(addr, "/v1/scans", "{}");
    let id2 = b2["job_id"].as_u64().unwrap();
    wait_done(addr, id2);

    let (status, body) = get(addr, &format!("/v1/scans/{id1}"));
    assert_eq!(status, 410, "{body}");
    assert_eq!(body["error"]["code"], "gone", "{body}");
    assert!(body["error"]["message"].as_str().is_some(), "{body}");

    // The survivor still serves, and never-issued ids still 404.
    let (status, body) = get(addr, &format!("/v1/scans/{id2}"));
    assert_eq!(status, 200, "{body}");
    let (status, body) = get(addr, "/v1/scans/999999");
    assert_eq!(status, 404, "{body}");
    assert_eq!(body["error"]["code"], "unknown_job", "{body}");
    server.shutdown();
}

#[test]
fn latest_serves_the_newest_published_result() {
    let server = start(8);
    let addr = server.addr();
    ingest(addr, &ring_records(6, 4, 80));

    let (_, b1) = post(addr, "/v1/scans", "{}");
    let id1 = b1["job_id"].as_u64().unwrap();
    wait_done(addr, id1);

    ingest(addr, &ring_records(2, 2, 10));
    let (_, b2) = post(addr, "/v1/scans", "{}");
    let id2 = b2["job_id"].as_u64().unwrap();
    assert!(b2["epoch"].as_u64() > b1["epoch"].as_u64(), "{b1} / {b2}");
    wait_done(addr, id2);

    let (status, latest) = get(addr, "/v1/scans/latest");
    assert_eq!(status, 200);
    assert_eq!(latest["job_id"].as_u64().unwrap(), id2);
    assert_eq!(latest["epoch"], b2["epoch"]);
    server.shutdown();
}
