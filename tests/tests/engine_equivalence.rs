//! The CSR engine must be a drop-in replacement for the naive reference
//! path: identical blocks, identical scores, identical ensemble votes —
//! not merely statistically similar. `bench_suite` relies on this before
//! timing the two engines against each other.

use ensemfdet::fdet::Truncation;
use ensemfdet::{fdet_with_engine, Engine, EnsemFdet, EnsemFdetConfig, MetricKind};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_graph::BipartiteGraph;

const SEEDS: [u64; 3] = [11, 4242, 0xDEAD_BEEF];

fn preset_graph(which: JdDataset, seed: u64) -> BipartiteGraph {
    generate(&jd_preset(which, 400, seed)).graph
}

#[test]
fn fdet_blocks_and_scores_identical_across_engines() {
    for which in [JdDataset::Jd1, JdDataset::Jd2, JdDataset::Jd3] {
        for seed in SEEDS {
            let g = preset_graph(which, seed);
            for truncation in [
                Truncation::default(),
                Truncation::FixedK(3),
                Truncation::KeepAll { k_max: 25 },
            ] {
                let csr =
                    fdet_with_engine(&g, &MetricKind::default(), truncation, Engine::Csr);
                let naive =
                    fdet_with_engine(&g, &MetricKind::default(), truncation, Engine::Naive);
                assert_eq!(
                    csr.blocks, naive.blocks,
                    "blocks diverged ({which:?}, seed {seed}, {truncation:?})"
                );
                assert_eq!(
                    csr.scores, naive.scores,
                    "scores diverged ({which:?}, seed {seed}, {truncation:?})"
                );
                assert_eq!(csr.k_hat, naive.k_hat);
            }
        }
    }
}

#[test]
fn ensemble_votes_identical_across_engines() {
    for seed in SEEDS {
        let g = preset_graph(JdDataset::Jd2, seed);
        let run = |engine| {
            EnsemFdet::new(EnsemFdetConfig {
                num_samples: 12,
                sample_ratio: 0.25,
                engine,
                seed,
                ..Default::default()
            })
            .detect(&g)
        };
        let (csr, naive) = (run(Engine::Csr), run(Engine::Naive));
        assert_eq!(
            csr.votes.user_scores(),
            naive.votes.user_scores(),
            "ensemble votes diverged (seed {seed})"
        );
        let k_hats = |o: &ensemfdet::EnsembleOutcome| -> Vec<usize> {
            o.samples.iter().map(|s| s.k_hat).collect()
        };
        assert_eq!(k_hats(&csr), k_hats(&naive));
    }
}

/// Weighted graphs exercise the non-unit-weight relax path.
#[test]
fn weighted_graph_identical_across_engines() {
    let edges: Vec<(u32, u32)> = (0..200u32)
        .map(|i| (i % 37, (i * 7 + 3) % 11))
        .chain((0..40u32).map(|i| (40 + i % 8, i % 5)))
        .collect();
    let weights: Vec<f64> = (0..edges.len()).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect();
    let g = BipartiteGraph::from_weighted_edges(48, 11, edges, weights).unwrap();
    let run = |e| fdet_with_engine(&g, &MetricKind::default(), Truncation::KeepAll { k_max: 10 }, e);
    let (csr, naive) = (run(Engine::Csr), run(Engine::Naive));
    assert_eq!(csr.blocks, naive.blocks);
    assert_eq!(csr.scores, naive.scores);
}
