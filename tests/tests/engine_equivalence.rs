//! The CSR and bucket engines must be drop-in replacements for the naive
//! reference path: identical blocks, identical scores, identical ensemble
//! votes — not merely statistically similar. The batched bucket engine is
//! held to the documented score-equality contract instead (same curve
//! shape, scores equal within float tolerance), because its tie rounds
//! may legitimately reorder removals. `bench_suite` relies on these gates
//! before timing the engines against each other.
//!
//! The final test cross-checks the three priority-queue implementations
//! themselves ([`IndexedMinHeap`], [`LazyMinHeap`], [`BucketQueue`])
//! under a randomized decrease-key workload with heavy ties: filtered
//! through the lazy-deletion protocol, all three must deliver the exact
//! same `(key, element)` pop sequence.

use ensemfdet::fdet::Truncation;
use ensemfdet::heap::{IndexedMinHeap, LazyMinHeap};
use ensemfdet::{
    fdet_with_engine, BucketQueue, Engine, EnsemFdet, EnsemFdetConfig, FdetResult, MetricKind,
};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_graph::BipartiteGraph;

const SEEDS: [u64; 3] = [11, 4242, 0xDEAD_BEEF];

/// All engines under the *bit-identical* contract.
const EXACT_ENGINES: [Engine; 3] = [Engine::Naive, Engine::Csr, Engine::Bucket];

fn preset_graph(which: JdDataset, seed: u64) -> BipartiteGraph {
    generate(&jd_preset(which, 400, seed)).graph
}

/// The strict form of the `Engine::BucketBatch` score gate: identical
/// curve shape with every score equal within 1e-9 relative. Holds when no
/// tie-split changes a peeled block's membership (e.g. the weighted graph
/// below); the JD presets get the weaker leading-block gate instead.
fn assert_score_equal(reference: &FdetResult, batch: &FdetResult, ctx: &str) {
    assert_eq!(batch.k_hat, reference.k_hat, "{ctx}: k_hat");
    assert_eq!(batch.scores.len(), reference.scores.len(), "{ctx}: curve length");
    assert_batch_scores(reference, batch, reference.scores.len(), ctx);
}

/// The documented `Engine::BucketBatch` gate on the first `upto` blocks:
/// each scores equal to the reference within 1e-9 relative. Trailing
/// noise blocks past the truncating point may diverge once a tie-split
/// hands the engines different residual graphs (see `crate::engine` docs).
fn assert_batch_scores(reference: &FdetResult, batch: &FdetResult, upto: usize, ctx: &str) {
    assert!(
        reference.scores.len() >= upto && batch.scores.len() >= upto,
        "{ctx}: curves shorter than the gated prefix ({} / {} < {upto})",
        reference.scores.len(),
        batch.scores.len(),
    );
    for i in 0..upto {
        let (a, b) = (reference.scores[i], batch.scores[i]);
        let tol = 1e-9 * a.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{ctx}: score {i} diverged ({a} vs {b})"
        );
    }
}

#[test]
fn fdet_blocks_and_scores_identical_across_engines() {
    for which in [JdDataset::Jd1, JdDataset::Jd2, JdDataset::Jd3] {
        for seed in SEEDS {
            let g = preset_graph(which, seed);
            for truncation in [
                Truncation::default(),
                Truncation::FixedK(3),
                Truncation::KeepAll { k_max: 25 },
            ] {
                let ctx = format!("{which:?}, seed {seed}, {truncation:?}");
                let naive =
                    fdet_with_engine(&g, &MetricKind::default(), truncation, Engine::Naive);
                for engine in [Engine::Csr, Engine::Bucket] {
                    let r = fdet_with_engine(&g, &MetricKind::default(), truncation, engine);
                    assert_eq!(r.blocks, naive.blocks, "{engine:?} blocks diverged ({ctx})");
                    assert_eq!(r.scores, naive.scores, "{engine:?} scores diverged ({ctx})");
                    assert_eq!(r.k_hat, naive.k_hat, "{engine:?} k_hat diverged ({ctx})");
                }
                let batch = fdet_with_engine(
                    &g,
                    &MetricKind::default(),
                    truncation,
                    Engine::BucketBatch,
                );
                // Auto truncation: the engines must agree on the retained
                // set — same k̂, score-equal retained blocks. Elsewhere the
                // gate is the leading (densest) block.
                if matches!(truncation, Truncation::Auto { .. }) {
                    assert_eq!(batch.k_hat, naive.k_hat, "batch k_hat diverged ({ctx})");
                    assert_batch_scores(&naive, &batch, naive.k_hat, &ctx);
                } else {
                    assert_batch_scores(&naive, &batch, 1, &ctx);
                }
            }
        }
    }
}

#[test]
fn ensemble_votes_identical_across_engines() {
    for seed in SEEDS {
        let g = preset_graph(JdDataset::Jd2, seed);
        let run = |engine| {
            EnsemFdet::new(EnsemFdetConfig {
                num_samples: 12,
                sample_ratio: 0.25,
                engine,
                seed,
                ..Default::default()
            })
            .detect(&g)
        };
        let reference = run(Engine::Naive);
        let k_hats = |o: &ensemfdet::EnsembleOutcome| -> Vec<usize> {
            o.samples.iter().map(|s| s.k_hat).collect()
        };
        for engine in [Engine::Csr, Engine::Bucket] {
            let outcome = run(engine);
            assert_eq!(
                outcome.votes.user_scores(),
                reference.votes.user_scores(),
                "{engine:?} ensemble votes diverged (seed {seed})"
            );
            assert_eq!(k_hats(&outcome), k_hats(&reference), "{engine:?} k̂s (seed {seed})");
        }
    }
}

/// Weighted graphs exercise the non-unit-weight relax path.
#[test]
fn weighted_graph_identical_across_engines() {
    let edges: Vec<(u32, u32)> = (0..200u32)
        .map(|i| (i % 37, (i * 7 + 3) % 11))
        .chain((0..40u32).map(|i| (40 + i % 8, i % 5)))
        .collect();
    let weights: Vec<f64> = (0..edges.len()).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect();
    let g = BipartiteGraph::from_weighted_edges(48, 11, edges, weights).unwrap();
    let run = |e| fdet_with_engine(&g, &MetricKind::default(), Truncation::KeepAll { k_max: 10 }, e);
    let naive = run(Engine::Naive);
    for engine in [Engine::Csr, Engine::Bucket] {
        let r = run(engine);
        assert_eq!(r.blocks, naive.blocks, "{engine:?} blocks");
        assert_eq!(r.scores, naive.scores, "{engine:?} scores");
    }
    assert_score_equal(&naive, &run(Engine::BucketBatch), "weighted batch");
}

/// Sanity: the exact-contract list and the parser agree on the engine set.
#[test]
fn engine_matrix_covers_every_variant() {
    for e in EXACT_ENGINES {
        assert!(e.name().parse::<Engine>().unwrap() == e);
    }
    assert_eq!("bucket-batch".parse::<Engine>().unwrap(), Engine::BucketBatch);
}

/// Splitmix-style deterministic RNG — no external crates in the tests.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Randomized decrease-key cross-check of the three queue structures.
///
/// [`IndexedMinHeap`] is the exact oracle (in-place `update_key`). The two
/// lazy structures follow the peel protocol: every decrease is a fresh
/// push, and pops are filtered against the caller's current-key array.
/// Keys are quantized to multiples of 1/8 so ties are frequent and float
/// comparisons are exact; tie order must fall back to element id in all
/// three structures.
#[test]
fn queue_implementations_agree_on_pop_order() {
    for seed in [1u64, 77, 0xFEED_F00D] {
        let mut rng = seed;
        let n = 300usize;
        // Quantized non-negative starting keys with deliberate collisions.
        let mut current: Vec<f64> = (0..n)
            .map(|_| (next_rand(&mut rng) % 64) as f64 * 0.125)
            .collect();
        let mut alive: Vec<bool> = vec![true; n];

        let mut oracle = IndexedMinHeap::from_keys(&current);
        let mut lazy = LazyMinHeap::new();
        lazy.fill((0..n as u32).map(|i| (i, current[i as usize])));
        let mut bucket = BucketQueue::new();
        bucket.fill((0..n as u32).map(|i| (i, current[i as usize])));

        // Pops a current (non-stale, still-alive) entry from a lazy queue.
        let lazy_pop = |q: &mut dyn FnMut() -> Option<(f64, u32)>,
                        current: &[f64],
                        alive: &[bool]|
         -> Option<(f64, u32)> {
            while let Some((k, id)) = q() {
                let i = id as usize;
                if alive[i] && current[i].to_bits() == k.to_bits() {
                    return Some((k, id));
                }
            }
            None
        };

        let mut popped = 0usize;
        while popped < n {
            let decrease = matches!(next_rand(&mut rng) % 3, 0);
            if decrease {
                // Decrease a random live element's key (clamped at 0).
                let victim = (next_rand(&mut rng) as usize) % n;
                if !alive[victim] {
                    continue;
                }
                let drop = (next_rand(&mut rng) % 16) as f64 * 0.125;
                let k = (current[victim] - drop).max(0.0);
                if k.to_bits() == current[victim].to_bits() {
                    continue;
                }
                current[victim] = k;
                oracle.update_key(victim, k);
                lazy.push(victim as u32, k);
                bucket.push(victim as u32, k);
            } else {
                let (oe, ok) = oracle.pop_min().expect("oracle drained early");
                let (lk, le) =
                    lazy_pop(&mut || lazy.pop(), &current, &alive).expect("lazy drained early");
                let (bk, be) = lazy_pop(&mut || bucket.pop(), &current, &alive)
                    .expect("bucket drained early");
                assert_eq!(
                    (le, lk.to_bits()),
                    (oe as u32, ok.to_bits()),
                    "lazy heap diverged from oracle (seed {seed}, pop {popped})"
                );
                assert_eq!(
                    (be, bk.to_bits()),
                    (oe as u32, ok.to_bits()),
                    "bucket queue diverged from oracle (seed {seed}, pop {popped})"
                );
                alive[oe] = false;
                popped += 1;
            }
        }
        assert!(oracle.is_empty());
        assert!(lazy_pop(&mut || lazy.pop(), &current, &alive).is_none());
        assert!(lazy_pop(&mut || bucket.pop(), &current, &alive).is_none());
    }
}
