//! The parallel bulk-ingest path end to end: the chunked weighted CSV
//! loader's amount-summing aggregation, its typed per-line errors, and
//! worker-count determinism on generated transaction logs.

use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate, transaction_log_string, TransactionLogConfig};
use ensemfdet_graph::{load_transactions, GraphError, LoadOptions, LoadedLog};
use proptest::prelude::*;
use std::collections::HashMap;

fn load(data: &str, workers: usize) -> Result<LoadedLog, GraphError> {
    load_transactions(
        data.as_bytes(),
        &LoadOptions {
            workers,
            ..Default::default()
        },
    )
}

/// The full deterministic fingerprint of a load: both key dictionaries in
/// id order, the edge arrays, and the weights as exact bit patterns.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    users: Vec<String>,
    merchants: Vec<String>,
    edges: Vec<(u32, u32)>,
    weight_bits: Vec<u64>,
}

fn fingerprint(l: &LoadedLog) -> Fingerprint {
    Fingerprint {
        users: l.interner.users().keys().map(str::to_string).collect(),
        merchants: l.interner.merchants().keys().map(str::to_string).collect(),
        edges: l.graph.edge_pairs().to_vec(),
        weight_bits: (0..l.graph.num_edges())
            .map(|e| l.graph.edge_weight(e).to_bits())
            .collect(),
    }
}

proptest! {
    /// Duplicate `(user, merchant)` rows collapse into one weighted edge
    /// whose amount is the file-order sum — for every worker count.
    #[test]
    fn duplicate_rows_amount_sum_into_one_edge(
        rows in proptest::collection::vec((0u32..8, 0u32..6, 1u32..100_000u32), 1..200),
        workers in 1usize..5,
    ) {
        let mut log = String::new();
        let mut expected: HashMap<(String, String), f64> = HashMap::new();
        for (u, m, cents) in &rows {
            let (user, merchant) = (format!("acct-{u}"), format!("shop-{m}"));
            let amount = format!("{}.{:02}", cents / 100, cents % 100);
            log.push_str(&format!("{user},{merchant},{amount}\n"));
            // Same parse, same file-order addition as the loader — the
            // sums must agree to the bit.
            let parsed: f64 = amount.parse().unwrap();
            *expected.entry((user, merchant)).or_insert(0.0) += parsed;
        }
        let loaded = load(&log, workers).unwrap();
        prop_assert_eq!(loaded.records, rows.len());
        prop_assert_eq!(loaded.graph.num_edges(), expected.len());
        for e in 0..loaded.graph.num_edges() {
            let (u, v) = loaded.graph.edge_endpoints(e);
            let key = (
                loaded.interner.user_key(u).to_string(),
                loaded.interner.merchant_key(v).to_string(),
            );
            let want = expected[&key];
            prop_assert_eq!(
                loaded.graph.edge_weight(e).to_bits(),
                want.to_bits(),
                "edge {:?} summed {} expected {}",
                key,
                loaded.graph.edge_weight(e),
                want
            );
        }
    }

    /// A malformed line is a typed parse error carrying its 1-based
    /// global line number, wherever the chunk boundaries fall.
    #[test]
    fn malformed_lines_report_their_global_line(
        good_before in 0usize..40,
        good_after in 0usize..40,
        workers in 1usize..5,
    ) {
        let mut log = String::new();
        for i in 0..good_before {
            log.push_str(&format!("u{i},m{},1.0\n", i % 7));
        }
        log.push_str("this-line-has-no-merchant\n");
        for i in 0..good_after {
            log.push_str(&format!("u{i},m{},1.0\n", i % 7));
        }
        let err = load(&log, workers).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => prop_assert_eq!(line, good_before + 1),
            other => return Err(TestCaseError::fail(format!("expected Parse, got {other}"))),
        }
    }
}

/// Interner ids and the final weighted graph are bit-identical across
/// 1/2/4 workers on realistic generated logs, across three seeds.
#[test]
fn worker_count_invariance_on_generated_logs() {
    for seed in [11u64, 22, 33] {
        let ds = generate(&jd_preset(JdDataset::Jd1, 300, seed));
        let (log, summary) = transaction_log_string(
            &ds,
            &TransactionLogConfig {
                seed,
                mean_repeats: 0.6,
                comment_every: 97,
                ..Default::default()
            },
        );
        let reference = load(&log, 1).unwrap();
        assert_eq!(reference.records, summary.records, "seed {seed}");
        assert_eq!(reference.graph.num_edges(), summary.distinct_pairs, "seed {seed}");
        let want = fingerprint(&reference);
        for workers in [2usize, 4] {
            let par = load(&log, workers).unwrap();
            assert_eq!(par.records, reference.records, "seed {seed} workers {workers}");
            assert_eq!(par.lines, reference.lines, "seed {seed} workers {workers}");
            assert_eq!(
                fingerprint(&par),
                want,
                "seed {seed}: {workers}-worker load diverged from serial"
            );
        }
    }
}
