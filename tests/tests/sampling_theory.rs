//! Cross-crate validation of the sampling theory on realistic graphs:
//! Theorem 1's ε-approximation of the density score, and the Lemma 1 bias
//! measured on generated data.

use ensemfdet::metric::LogWeightedMetric;
use ensemfdet::peel::density_of_subset;
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_graph::{MerchantId, UserId};
use ensemfdet_sampling::weighted::epsilon_approx_sample;
use ensemfdet_sampling::{Sampler, SamplingMethod};

/// Theorem 1 (empirically): the weighted edge sample's density score of the
/// planted block converges to the original as p grows.
#[test]
fn weighted_sampling_approximates_block_density() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 300, 13));
    let g = &ds.graph;
    let metric = LogWeightedMetric::paper_default();

    // Reference: density of the first planted group in the full graph.
    let group = &ds.groups[0];
    let users: Vec<UserId> = group.users.iter().map(|&u| UserId(u)).collect();
    let merchants: Vec<MerchantId> = group.merchants.iter().map(|&v| MerchantId(v)).collect();
    let phi_full = density_of_subset(g, &metric, &users, &merchants);
    assert!(phi_full > 0.0);

    let p = 0.5;
    let trials = 20u64;
    let mut phis = Vec::new();
    for seed in 0..trials {
        let s = epsilon_approx_sample(g, p, seed);
        // Map the group into the sample's local id space.
        let u_map: std::collections::HashMap<u32, u32> = s
            .orig_users
            .iter()
            .enumerate()
            .map(|(l, &p)| (p, l as u32))
            .collect();
        let v_map: std::collections::HashMap<u32, u32> = s
            .orig_merchants
            .iter()
            .enumerate()
            .map(|(l, &p)| (p, l as u32))
            .collect();
        let lu: Vec<UserId> = group
            .users
            .iter()
            .filter_map(|u| u_map.get(u).map(|&l| UserId(l)))
            .collect();
        let lv: Vec<MerchantId> = group
            .merchants
            .iter()
            .filter_map(|v| v_map.get(v).map(|&l| MerchantId(l)))
            .collect();
        phis.push(density_of_subset(&s.graph, &metric, &lu, &lv));
    }
    let mean: f64 = phis.iter().sum::<f64>() / phis.len() as f64;
    // The 1/p re-weighting makes f(S) unbiased; |S| shrinks slightly (some
    // nodes drop out entirely), so the mean density lands near φ_full.
    let rel = (mean - phi_full).abs() / phi_full;
    assert!(
        rel < 0.35,
        "mean sampled block density {mean:.4} vs full {phi_full:.4} (rel {rel:.2})"
    );
}

/// Lemma 1 on generated data: RES includes the popular (high-degree)
/// merchants at a higher rate than merchant-node sampling at the same
/// ratio.
#[test]
fn res_bias_toward_hubs_holds_on_generated_data() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 300, 14));
    let g = &ds.graph;
    // The 5 most popular merchants.
    let mut by_degree: Vec<(usize, u32)> = (0..g.num_merchants())
        .map(|v| (g.merchant_degree(MerchantId(v as u32)), v as u32))
        .collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    let hubs: Vec<u32> = by_degree[..5].iter().map(|&(_, v)| v).collect();

    let ratio = 0.1;
    let trials = 60u64;
    let mut res_hits = 0usize;
    let mut ons_hits = 0usize;
    for seed in 0..trials {
        let res = SamplingMethod::RandomEdge.sample(g, ratio, seed);
        let ons = SamplingMethod::OneSideMerchant.sample(g, ratio, seed);
        let in_sample = |s: &ensemfdet_graph::SampledGraph, v: u32| s.orig_merchants.contains(&v);
        res_hits += hubs.iter().filter(|&&v| in_sample(&res, v)).count();
        ons_hits += hubs.iter().filter(|&&v| in_sample(&ons, v)).count();
    }
    // RES includes every hub almost surely; ONS only at the 10% base rate.
    assert!(res_hits as f64 > 0.95 * (trials as f64 * 5.0), "res {res_hits}");
    assert!((ons_hits as f64) < 0.3 * (trials as f64 * 5.0), "ons {ons_hits}");
}

/// TNS keeps ≈ S² of the edges on generated data (Section IV-A4).
#[test]
fn tns_edge_fraction_on_generated_data() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 300, 15));
    let g = &ds.graph;
    let ratio = 0.3;
    let trials = 30u64;
    let mut kept = 0usize;
    for seed in 0..trials {
        kept += SamplingMethod::TwoSide.sample(g, ratio, seed).graph.num_edges();
    }
    let frac = kept as f64 / (trials as f64 * g.num_edges() as f64);
    assert!(
        (frac - ratio * ratio).abs() < 0.05,
        "TNS kept fraction {frac:.3}, expected ≈ {:.3}",
        ratio * ratio
    );
}
