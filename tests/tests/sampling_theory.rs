//! Cross-crate validation of the sampling theory on realistic graphs:
//! Theorem 1's ε-approximation of the density score, the Lemma 1 bias
//! measured on generated data, and thread-count invariance of the
//! ensemble (results are a pure function of `(graph, config)`, not of
//! how the samples were scheduled).

use ensemfdet::metric::LogWeightedMetric;
use ensemfdet::peel::density_of_subset;
use ensemfdet::{EnsemFdet, EnsemFdetConfig, SamplePath, SamplingMethodConfig};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_graph::{MerchantId, UserId};
use ensemfdet_sampling::weighted::epsilon_approx_sample;
use ensemfdet_sampling::{Sampler, SamplingMethod};

/// Theorem 1 (empirically): the weighted edge sample's density score of the
/// planted block converges to the original as p grows.
#[test]
fn weighted_sampling_approximates_block_density() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 300, 13));
    let g = &ds.graph;
    let metric = LogWeightedMetric::paper_default();

    // Reference: density of the first planted group in the full graph.
    let group = &ds.groups[0];
    let users: Vec<UserId> = group.users.iter().map(|&u| UserId(u)).collect();
    let merchants: Vec<MerchantId> = group.merchants.iter().map(|&v| MerchantId(v)).collect();
    let phi_full = density_of_subset(g, &metric, &users, &merchants);
    assert!(phi_full > 0.0);

    let p = 0.5;
    let trials = 20u64;
    let mut phis = Vec::new();
    for seed in 0..trials {
        let s = epsilon_approx_sample(g, p, seed);
        // Map the group into the sample's local id space.
        let u_map: std::collections::HashMap<u32, u32> = s
            .orig_users
            .iter()
            .enumerate()
            .map(|(l, &p)| (p, l as u32))
            .collect();
        let v_map: std::collections::HashMap<u32, u32> = s
            .orig_merchants
            .iter()
            .enumerate()
            .map(|(l, &p)| (p, l as u32))
            .collect();
        let lu: Vec<UserId> = group
            .users
            .iter()
            .filter_map(|u| u_map.get(u).map(|&l| UserId(l)))
            .collect();
        let lv: Vec<MerchantId> = group
            .merchants
            .iter()
            .filter_map(|v| v_map.get(v).map(|&l| MerchantId(l)))
            .collect();
        phis.push(density_of_subset(&s.graph, &metric, &lu, &lv));
    }
    let mean: f64 = phis.iter().sum::<f64>() / phis.len() as f64;
    // The 1/p re-weighting makes f(S) unbiased; |S| shrinks slightly (some
    // nodes drop out entirely), so the mean density lands near φ_full.
    let rel = (mean - phi_full).abs() / phi_full;
    assert!(
        rel < 0.35,
        "mean sampled block density {mean:.4} vs full {phi_full:.4} (rel {rel:.2})"
    );
}

/// Lemma 1 on generated data: RES includes the popular (high-degree)
/// merchants at a higher rate than merchant-node sampling at the same
/// ratio.
#[test]
fn res_bias_toward_hubs_holds_on_generated_data() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 300, 14));
    let g = &ds.graph;
    // The 5 most popular merchants.
    let mut by_degree: Vec<(usize, u32)> = (0..g.num_merchants())
        .map(|v| (g.merchant_degree(MerchantId(v as u32)), v as u32))
        .collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    let hubs: Vec<u32> = by_degree[..5].iter().map(|&(_, v)| v).collect();

    let ratio = 0.1;
    let trials = 60u64;
    let mut res_hits = 0usize;
    let mut ons_hits = 0usize;
    for seed in 0..trials {
        let res = SamplingMethod::RandomEdge.sample(g, ratio, seed);
        let ons = SamplingMethod::OneSideMerchant.sample(g, ratio, seed);
        let in_sample = |s: &ensemfdet_graph::SampledGraph, v: u32| s.orig_merchants.contains(&v);
        res_hits += hubs.iter().filter(|&&v| in_sample(&res, v)).count();
        ons_hits += hubs.iter().filter(|&&v| in_sample(&ons, v)).count();
    }
    // RES includes every hub almost surely; ONS only at the 10% base rate.
    assert!(res_hits as f64 > 0.95 * (trials as f64 * 5.0), "res {res_hits}");
    assert!((ons_hits as f64) < 0.3 * (trials as f64 * 5.0), "ons {ons_hits}");
}

/// TNS keeps ≈ S² of the edges on generated data (Section IV-A4).
#[test]
fn tns_edge_fraction_on_generated_data() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 300, 15));
    let g = &ds.graph;
    let ratio = 0.3;
    let trials = 30u64;
    let mut kept = 0usize;
    for seed in 0..trials {
        kept += SamplingMethod::TwoSide.sample(g, ratio, seed).graph.num_edges();
    }
    let frac = kept as f64 / (trials as f64 * g.num_edges() as f64);
    assert!(
        (frac - ratio * ratio).abs() < 0.05,
        "TNS kept fraction {frac:.3}, expected ≈ {:.3}",
        ratio * ratio
    );
}

/// Ensemble votes for a fixed `(N, S, seed)` must not depend on how many
/// worker threads ran the samples: per-sample seeds derive from the
/// sample index, per-thread scratch (sampler marks, spec resolver,
/// engine cache) carries no state between samples, and results are
/// written back by position.
#[test]
fn ensemble_votes_are_thread_count_invariant() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 400, 21));
    let g = &ds.graph;

    for path in [SamplePath::Mask, SamplePath::Materialize] {
        for method in [
            SamplingMethodConfig::RandomEdge,
            SamplingMethodConfig::OneSideUser,
            SamplingMethodConfig::TwoSide,
        ] {
            let cfg = EnsemFdetConfig {
                num_samples: 12,
                sample_ratio: 0.3,
                seed: 0x5EED,
                method,
                path,
                ..Default::default()
            };
            let parallel = EnsemFdet::with_workers(cfg, 4).detect(g);
            let serial = EnsemFdet::with_workers(cfg, 1).detect(g);
            assert_eq!(
                parallel.votes, serial.votes,
                "{method:?}/{path}: votes changed with thread count"
            );
            assert_eq!(
                parallel.evidence.user_evidence, serial.evidence.user_evidence,
                "{method:?}/{path}: evidence changed with thread count"
            );
            let summarize = |o: &ensemfdet::EnsembleOutcome| {
                o.samples
                    .iter()
                    .map(|s| (s.index, s.sample_nodes, s.sample_edges, s.scores.clone()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                summarize(&parallel),
                summarize(&serial),
                "{method:?}/{path}: per-sample results changed with thread count"
            );
        }
    }
}

/// The two sample paths agree on real generated data end to end, and the
/// mask path's per-sample bookkeeping stays proportional to the sample
/// selection rather than the parent graph.
#[test]
fn sample_paths_agree_on_generated_data() {
    let ds = generate(&jd_preset(JdDataset::Jd1, 400, 22));
    let g = &ds.graph;
    let mut cfg = EnsemFdetConfig {
        num_samples: 8,
        sample_ratio: 0.1,
        seed: 99,
        ..Default::default()
    };
    cfg.path = SamplePath::Mask;
    let mask = EnsemFdet::new(cfg).detect(g);
    cfg.path = SamplePath::Materialize;
    let mat = EnsemFdet::new(cfg).detect(g);
    assert_eq!(mask.votes, mat.votes);
    assert!(
        mask.sample_bytes() < mat.sample_bytes() / 4,
        "mask path should materialize far fewer bytes: {} vs {}",
        mask.sample_bytes(),
        mat.sample_bytes()
    );
}
