//! The cross-path equivalence gate for the zero-copy sampling data path.
//!
//! The mask path (sample **specs** resolved lazily against the shared
//! parent CSR) must be *bit-identical* to the reference materializing
//! path — same peeled blocks, same `φ` scores, same vote tallies — for
//! every `(sampling method, seed, ratio)`. Two levels are gated here:
//!
//! * **engine level** — `FdetEngine::run_spec(parent, spec)` against
//!   `FdetEngine::run(spec.materialize(parent))`, block by block;
//! * **ensemble level** — `EnsemFdet::detect` with
//!   `SamplePath::Mask` against `SamplePath::Materialize`, vote by vote.
//!
//! Both weighted and unweighted parents are covered: the spec-built view
//! must reproduce the materialized constructors' weight-carry rules.

use ensemfdet::engine::FdetEngine;
use ensemfdet::metric::LogWeightedMetric;
use ensemfdet::{EnsemFdet, EnsemFdetConfig, SamplePath, SamplingMethodConfig, Truncation};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_graph::{BipartiteGraph, SampleMaps, SampleSpec};
use ensemfdet_sampling::{Sampler, SamplerScratch, SamplingMethod};

const METHODS: [SamplingMethod; 4] = [
    SamplingMethod::RandomEdge,
    SamplingMethod::OneSideUser,
    SamplingMethod::OneSideMerchant,
    SamplingMethod::TwoSide,
];

const SEEDS: [u64; 3] = [3, 1717, 990_001];
const RATIOS: [f64; 2] = [0.1, 0.45];

fn unweighted_parent() -> BipartiteGraph {
    generate(&jd_preset(JdDataset::Jd1, 500, 31)).graph
}

/// A weighted parent with repeat-purchase structure: the dense block
/// carries heavy weights, the background light ones.
fn weighted_parent() -> BipartiteGraph {
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    for u in 0..20u32 {
        for v in 0..8u32 {
            edges.push((u, v));
            weights.push(3.0 + f64::from((u + v) % 5));
        }
    }
    for u in 20..400u32 {
        edges.push((u, 8 + u % 37));
        weights.push(1.0);
        edges.push((u, 8 + (u * 11) % 37));
        weights.push(1.0 + f64::from(u % 2));
    }
    BipartiteGraph::from_weighted_edges(400, 45, edges, weights).unwrap()
}

/// Engine level: running FDET straight off `(parent, spec)` must agree
/// with materializing the spec first, field for field — blocks, scores,
/// `k̂`, edge count, and the local↔parent id maps.
fn check_engine_level(parent: &BipartiteGraph) {
    let metric = LogWeightedMetric::paper_default();
    let mut scratch = SamplerScratch::new();
    let mut spec = SampleSpec::new();
    let mut maps = SampleMaps::default();
    let mut engine = FdetEngine::new();

    for method in METHODS {
        for seed in SEEDS {
            for ratio in RATIOS {
                for truncation in [
                    Truncation::default(),
                    Truncation::FixedK(2),
                    Truncation::KeepAll { k_max: 6 },
                ] {
                    method.sample_spec(parent, ratio, seed, &mut scratch, &mut spec);
                    let (spec_result, spec_edges) = engine.run_spec(
                        parent,
                        &spec,
                        &metric,
                        truncation,
                        ensemfdet::Engine::Csr,
                        &mut maps,
                    );

                    let sampled = spec.materialize(parent);
                    let mat_result = engine.run(
                        &sampled.graph,
                        &metric,
                        truncation,
                        ensemfdet::Engine::Csr,
                    );

                    let ctx = format!("{method:?} seed {seed} S {ratio} {truncation:?}");
                    assert_eq!(maps.orig_users, sampled.orig_users, "{ctx}: user map");
                    assert_eq!(
                        maps.orig_merchants, sampled.orig_merchants,
                        "{ctx}: merchant map"
                    );
                    assert_eq!(spec_edges, sampled.graph.num_edges(), "{ctx}: edge count");
                    assert_eq!(spec_result.k_hat, mat_result.k_hat, "{ctx}: k_hat");
                    assert_eq!(spec_result.scores, mat_result.scores, "{ctx}: scores");
                    assert_eq!(
                        spec_result.blocks.len(),
                        mat_result.blocks.len(),
                        "{ctx}: block count"
                    );
                    for (i, (a, b)) in spec_result
                        .blocks
                        .iter()
                        .zip(&mat_result.blocks)
                        .enumerate()
                    {
                        assert_eq!(a.users, b.users, "{ctx}: block {i} users");
                        assert_eq!(a.merchants, b.merchants, "{ctx}: block {i} merchants");
                        assert_eq!(a.edges, b.edges, "{ctx}: block {i} edges");
                        assert_eq!(a.score, b.score, "{ctx}: block {i} score");
                    }
                }
            }
        }
    }
}

/// Ensemble level: `detect` under the two paths must produce identical
/// vote tallies, evidence, and per-sample diagnostics.
fn check_ensemble_level(parent: &BipartiteGraph) {
    for method in [
        SamplingMethodConfig::RandomEdge,
        SamplingMethodConfig::OneSideUser,
        SamplingMethodConfig::OneSideMerchant,
        SamplingMethodConfig::TwoSide,
    ] {
        for seed in SEEDS {
            for ratio in RATIOS {
                let mut cfg = EnsemFdetConfig {
                    num_samples: 6,
                    sample_ratio: ratio,
                    seed,
                    method,
                    ..Default::default()
                };
                cfg.path = SamplePath::Mask;
                let mask = EnsemFdet::new(cfg).detect(parent);
                cfg.path = SamplePath::Materialize;
                let mat = EnsemFdet::new(cfg).detect(parent);

                let ctx = format!("{method:?} seed {seed} S {ratio}");
                assert_eq!(mask.votes, mat.votes, "{ctx}: votes");
                assert_eq!(
                    mask.evidence.user_evidence, mat.evidence.user_evidence,
                    "{ctx}: evidence"
                );
                for (a, b) in mask.samples.iter().zip(&mat.samples) {
                    assert_eq!(a.sample_nodes, b.sample_nodes, "{ctx} #{}", a.index);
                    assert_eq!(a.sample_edges, b.sample_edges, "{ctx} #{}", a.index);
                    assert_eq!(a.blocks_peeled, b.blocks_peeled, "{ctx} #{}", a.index);
                    assert_eq!(a.k_hat, b.k_hat, "{ctx} #{}", a.index);
                    assert_eq!(a.scores, b.scores, "{ctx} #{}", a.index);
                }
            }
        }
    }
}

#[test]
fn engine_paths_are_bit_identical_unweighted() {
    check_engine_level(&unweighted_parent());
}

#[test]
fn engine_paths_are_bit_identical_weighted() {
    check_engine_level(&weighted_parent());
}

#[test]
fn ensemble_paths_are_bit_identical_unweighted() {
    check_ensemble_level(&unweighted_parent());
}

#[test]
fn ensemble_paths_are_bit_identical_weighted() {
    check_ensemble_level(&weighted_parent());
}
