use ensemfdet_service::http::{read_request, MAX_HEADER_BYTES};
use ensemfdet_service::api::{Api, ApiConfig};
use ensemfdet_service::http::Request;
use ensemfdet::{EnsemFdetConfig, MonitorConfig};

#[test]
fn exact_boundary_header_line() {
    let req_line = b"GET / HTTP/1.1\r\n".to_vec();
    let remaining = MAX_HEADER_BYTES - req_line.len();
    let name = b"x: ";
    let pad = remaining + 1 - name.len() - 2;
    let mut raw = req_line;
    raw.extend(name);
    raw.extend(std::iter::repeat_n(b'a', pad));
    raw.extend(b"\r\n\r\n");
    let r = read_request(&raw[..]);
    println!("result: {:?}", r.map(|q| q.path).map_err(|e| (e.status, e.message)));
}

#[test]
fn deeply_nested_json_body() {
    let depth = 200_000usize;
    let mut s = String::with_capacity(depth * 2);
    for _ in 0..depth { s.push('['); }
    for _ in 0..depth { s.push(']'); }
    let api = Api::new(ApiConfig {
        monitor: MonitorConfig {
            detector: EnsemFdetConfig { num_samples: 2, sample_ratio: 0.5, seed: 1, ..Default::default() },
            scan_interval: 1_000_000,
            alert_threshold: 1,
            min_transactions: 0,
        },
        ..Default::default()
    });
    let body = format!("{{\"records\": {}}}", s);
    let resp = api.handle(&Request { method: "POST".into(), path: "/transactions".into(), content_type: String::new(), body: body.into_bytes() });
    println!("status={}", resp.status);
}
