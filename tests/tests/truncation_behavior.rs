//! The Figure 6 claim as an invariant: automatic truncation is at least as
//! good as a large fixed k on planted data, while peeling fewer blocks.

use ensemfdet::fdet::Truncation;
use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_eval::PrCurve;

fn best_f1_and_blocks(truncation: Truncation) -> (f64, f64) {
    let ds = generate(&jd_preset(JdDataset::Jd1, 200, 77));
    let labels = ds.labels();
    let out = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 20,
        sample_ratio: 0.1,
        truncation,
        seed: 3,
        ..Default::default()
    })
    .detect(&ds.graph);
    let sets: Vec<(f64, Vec<u32>)> = (1..=out.votes.max_user_votes())
        .map(|t| {
            (
                t as f64,
                out.votes.detected_users(t).into_iter().map(|u| u.0).collect(),
            )
        })
        .collect();
    let curve =
        PrCurve::from_threshold_sets(sets.iter().map(|(t, d)| (*t, d.as_slice())), &labels);
    let avg_k_hat = out.samples.iter().map(|s| s.k_hat as f64).sum::<f64>()
        / out.samples.len() as f64;
    (curve.best_f1(), avg_k_hat)
}

#[test]
fn auto_truncation_is_no_worse_than_fixed_k30_and_cheaper() {
    let (auto_f1, auto_k) = best_f1_and_blocks(Truncation::Auto {
        k_max: 50,
        patience: 5,
    });
    let (fixed_f1, fixed_k) = best_f1_and_blocks(Truncation::FixedK(30));
    assert!(
        auto_f1 >= fixed_f1 * 0.95,
        "auto F1 {auto_f1} much worse than fixed-k F1 {fixed_f1}"
    );
    assert!(
        auto_k < fixed_k / 2.0,
        "auto keeps {auto_k:.1} blocks vs fixed {fixed_k:.1} — should be <half"
    );
}

#[test]
fn truncating_points_stay_small() {
    // The paper records every k̂ < 15 on real data.
    let ds = generate(&jd_preset(JdDataset::Jd3, 400, 78));
    let out = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 16,
        sample_ratio: 0.1,
        seed: 9,
        ..Default::default()
    })
    .detect(&ds.graph);
    for s in &out.samples {
        assert!(s.k_hat < 15, "sample {} k̂ = {}", s.index, s.k_hat);
    }
}
