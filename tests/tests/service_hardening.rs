//! End-to-end hardening tests: a real server on a real socket, driven by
//! deliberately hostile or unlucky clients.
//!
//! Covered here (unit-level variants live in the service crate):
//! * pool saturation is shed with 503, promptly, without hanging anyone;
//! * a client that stalls mid-body is disconnected by the read deadline
//!   with 408 instead of pinning a worker;
//! * a Content-Length larger than the bytes actually sent is a 400;
//! * an endless header stream is cut off with 431;
//! * `GET /metrics` reports request counts — with legacy aliases in the
//!   same family under `deprecated="true"` — and a non-empty
//!   ensemble-scan latency histogram once a scan has run.

use ensemfdet::{EnsemFdetConfig, MonitorConfig};
use ensemfdet_service::{Api, ApiConfig, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn api() -> Api {
    Api::new(ApiConfig {
        monitor: MonitorConfig {
            detector: EnsemFdetConfig {
                num_samples: 6,
                sample_ratio: 0.5,
                seed: 11,
                ..Default::default()
            },
            scan_interval: 1_000_000,
            alert_threshold: 3,
            min_transactions: 0,
        },
        ..Default::default()
    })
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", api(), config)
        .expect("bind")
        .start()
        .expect("start")
}

fn roundtrip(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("client read timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("recv");
    out
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn metrics_expose_request_counts_and_scan_latencies() {
    let server = start(ServerConfig::default());
    let addr = server.addr();

    // Some traffic: two v1 health checks, one v1 ingest, one scan via the
    // deprecated alias.
    for _ in 0..2 {
        assert!(roundtrip(addr, "GET /v1/health HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 200"));
    }
    let mut records = Vec::new();
    for b in 0..6 {
        for s in 0..4 {
            records.push(format!("[\"bot-{b}\",\"ring-{s}\"]"));
        }
    }
    for p in 0..30 {
        records.push(format!("[\"pin-{p}\",\"store-{}\"]", p % 12));
    }
    let body = format!("{{\"records\":[{}]}}", records.join(","));
    assert!(post(addr, "/v1/transactions", &body).starts_with("HTTP/1.1 200"));
    assert!(post(addr, "/scan", "").starts_with("HTTP/1.1 200"));

    let resp = roundtrip(addr, "GET /metrics HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert!(resp.contains("content-type: text/plain; version=0.0.4"), "{resp}");
    let text = &resp[resp.find("\r\n\r\n").unwrap()..];
    assert!(
        text.contains("ensemfdet_http_requests_total{route=\"/v1/health\",status=\"200\"} 2"),
        "{text}"
    );
    // The legacy alias is the same metric family, marked deprecated and
    // counted under its canonical v1 label.
    assert!(
        text.contains(
            "ensemfdet_http_requests_total{route=\"/v1/scans\",status=\"200\",deprecated=\"true\"} 1"
        ),
        "{text}"
    );
    assert!(text.contains("ensemfdet_transactions_ingested_total 54"), "{text}");
    // The scan produced one latency observation per ensemble sample.
    assert!(text.contains("ensemfdet_scan_sample_duration_seconds_count 6"), "{text}");
    assert!(text.contains("ensemfdet_scan_duration_seconds_count 1"), "{text}");
    server.shutdown();
}

#[test]
fn saturation_sheds_503_without_hanging() {
    let server = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(3),
        ..Default::default()
    });
    let addr = server.addr();
    let metrics = std::sync::Arc::clone(server.metrics());

    // Occupy the single worker with a half-sent request, then fill the
    // one queue slot with an idle connection.
    let mut occupier = TcpStream::connect(addr).expect("occupier");
    occupier.write_all(b"GET /health").expect("partial send");
    let t0 = Instant::now();
    while metrics.workers_busy.get() < 1 {
        assert!(t0.elapsed() < Duration::from_secs(5), "worker never busy");
        std::thread::yield_now();
    }
    let _waiter = TcpStream::connect(addr).expect("waiter");
    while metrics.queue_depth.get() < 1 {
        assert!(t0.elapsed() < Duration::from_secs(5), "queue never filled");
        std::thread::yield_now();
    }

    // Every further connection is shed promptly with 503.
    for _ in 0..3 {
        let t = Instant::now();
        let resp = roundtrip(addr, "GET /health HTTP/1.1\r\n\r\n");
        assert!(
            resp.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{resp}"
        );
        assert!(t.elapsed() < Duration::from_secs(2), "shed was not prompt");
    }
    assert!(metrics.rejected.get() >= 3, "rejections uncounted");

    // The occupier still completes once it finishes its request.
    occupier.write_all(b" HTTP/1.1\r\n\r\n").expect("finish");
    let mut out = String::new();
    occupier.read_to_string(&mut out).expect("occupier recv");
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    server.shutdown();
}

#[test]
fn stalled_body_is_cut_off_by_read_deadline() {
    let server = start(ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..Default::default()
    });
    // Claim a 500-byte body, send 9 bytes, stall forever.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"POST /transactions HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"records")
        .expect("send");
    let t0 = Instant::now();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("recv");
    assert!(out.starts_with("HTTP/1.1 408 Request Timeout"), "{out}");
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "disconnect was not deadline-driven"
    );
    // The worker is free: the next request succeeds.
    let resp = roundtrip(server.addr(), "GET /health HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    server.shutdown();
}

#[test]
fn content_length_longer_than_body_is_400() {
    let server = start(ServerConfig::default());
    // The client closes after sending too few bytes — the server must not
    // wait for the missing ones.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"POST /scan HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort")
        .expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("recv");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    server.shutdown();
}

#[test]
fn endless_headers_are_cut_off_with_431() {
    let server = start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"GET /health HTTP/1.1\r\n").expect("send");
    stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .expect("probe timeout");
    let mut out = String::new();
    let t0 = Instant::now();
    loop {
        assert!(t0.elapsed() < Duration::from_secs(10), "server never cut us off");
        if stream
            .write_all(b"x-filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n")
            .is_err()
        {
            break; // server closed on us — read whatever it sent first
        }
        let mut probe = [0u8; 4096];
        match stream.read(&mut probe) {
            Ok(0) => break,
            Ok(n) => out.push_str(&String::from_utf8_lossy(&probe[..n])),
            Err(_) => continue,
        }
        if out.contains("\r\n\r\n") {
            break;
        }
    }
    assert!(out.starts_with("HTTP/1.1 431"), "{out}");
    server.shutdown();
}

#[test]
fn oversized_content_length_is_413_and_graceful_shutdown_serves_queued_work() {
    let server = start(ServerConfig::default());
    let addr = server.addr();
    let resp = roundtrip(
        addr,
        "POST /transactions HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413 Payload Too Large"), "{resp}");

    // The NDJSON bulk path sits behind the same body cap: declaring an
    // oversized streaming batch is refused before any line is parsed.
    let resp = roundtrip(
        addr,
        "POST /v1/transactions HTTP/1.1\r\ncontent-type: application/x-ndjson\r\n\
         content-length: 999999999\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413 Payload Too Large"), "{resp}");

    // In-flight work completes across shutdown: send a request, wait just
    // until the server has it (queued, in a worker, or already counted),
    // then shut down — the response must still arrive.
    let metrics = std::sync::Arc::clone(server.metrics());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /v1/health HTTP/1.1\r\n\r\n")
        .expect("send");
    let t0 = Instant::now();
    while metrics.queue_depth.get() == 0
        && metrics.workers_busy.get() == 0
        && metrics.requests.total_for_route("/v1/health") == 0
    {
        assert!(t0.elapsed() < Duration::from_secs(5), "request never picked up");
        std::thread::yield_now();
    }
    server.shutdown();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("recv across shutdown");
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
}
