pub fn no_op() {}
