//! Quickstart: detect a planted fraud ring in a toy transaction graph.
//!
//! Run with:
//! ```text
//! cargo run --release -p ensemfdet-examples --bin quickstart
//! ```

use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

fn main() {
    // Build a "who buy-from where" graph by hand: 12 fraud accounts hammer
    // a 4-merchant ring during a promotion, while 300 honest users shop
    // lightly across 80 merchants.
    let mut builder = GraphBuilder::new();
    for u in 0..12u32 {
        for v in 0..4u32 {
            builder.add_edge(UserId(u), MerchantId(v));
        }
    }
    for u in 12..312u32 {
        builder.add_edge(UserId(u), MerchantId(4 + u % 80));
        if u % 3 == 0 {
            builder.add_edge(UserId(u), MerchantId(4 + (u * 7) % 80));
        }
    }
    let graph = builder.build();
    println!(
        "graph: {} users, {} merchants, {} edges",
        graph.num_users(),
        graph.num_merchants(),
        graph.num_edges()
    );

    // Default configuration is the paper's: RES sampling, S = 0.1, N = 80,
    // log-weighted density, automatic truncation. For a graph this small we
    // sample at 50% instead.
    let detector = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 40,
        sample_ratio: 0.5,
        ..Default::default()
    });
    let outcome = detector.detect(&graph);
    println!(
        "ran {} sampled FDET instances in {:?}",
        outcome.samples.len(),
        outcome.elapsed
    );

    // Sweep the vote threshold: precision rises, recall falls.
    println!("\nT    detected users");
    for t in [1u32, 10, 20, 30, 40] {
        let detected = outcome.votes.detected_users(t);
        let fraud_hits = detected.iter().filter(|u| u.0 < 12).count();
        println!(
            "{t:<4} {:<4} ({fraud_hits} of 12 planted fraud accounts)",
            detected.len()
        );
    }

    let confident = outcome.votes.detected_users(20);
    println!("\naccounts flagged at T = 20: {confident:?}");
}
