//! Composing the low-level API: a custom detection pipeline built from the
//! individual pieces — choose your own sampler, metric, truncation, and a
//! *score-weighted* vote aggregation the paper mentions as a possibility
//! ("the aggregation methods are flexible and can be set as the one
//! suitable for the specific requirement", Section IV-C).
//!
//! Run with:
//! ```text
//! cargo run --release -p ensemfdet-examples --bin custom_pipeline
//! ```

use ensemfdet::fdet::{fdet, Truncation};
use ensemfdet::metric::LogWeightedMetric;
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_eval::confusion;
use ensemfdet_sampling::seed::derive;
use ensemfdet_sampling::{OneSideNodeSampling, Sampler};

fn main() {
    let dataset = generate(&jd_preset(JdDataset::Jd1, 200, 5));
    let g = &dataset.graph;
    let labels = dataset.labels();
    println!(
        "dataset: {} users / {} merchants / {} edges",
        g.num_users(),
        g.num_merchants(),
        g.num_edges()
    );

    // 1. Sampler: merchant-side one-side node sampling — the "retain
    //    topology" choice, since merchants are the high-degree side here.
    let sampler = OneSideNodeSampling::auto(g);
    println!("sampler: {}", sampler.name());

    // 2. Metric: Fraudar's log-weighting with a harsher constant.
    let metric = LogWeightedMetric { c: 2.0 };

    // 3. Custom aggregation: each detected node accumulates the *density
    //    score* of the block that contained it, not a flat vote — denser
    //    evidence weighs more.
    let n = 32;
    let ratio = 0.15;
    let master_seed = 99u64;
    let mut weighted_votes = vec![0.0f64; g.num_users()];

    for i in 0..n {
        let sample = sampler.sample(g, ratio, derive(master_seed, i));
        let result = fdet(
            &sample.graph,
            &metric,
            Truncation::Auto {
                k_max: 30,
                patience: 4,
            },
        );
        for block in result.detected_blocks() {
            for &lu in &block.users {
                let parent = sample.parent_user(lu);
                weighted_votes[parent.index()] += block.score;
            }
        }
    }

    // 4. Threshold on accumulated density evidence.
    let max_vote = weighted_votes.iter().cloned().fold(0.0f64, f64::max);
    println!("max accumulated block-density evidence: {max_vote:.3}\n");
    println!("cut     detected  precision  recall  F1");
    for frac in [0.1, 0.25, 0.5, 0.75] {
        let cut = frac * max_vote;
        let detected: Vec<u32> = weighted_votes
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > cut)
            .map(|(u, _)| u as u32)
            .collect();
        let c = confusion(&detected, &labels);
        println!(
            "{cut:<7.3} {:<9} {:<10.3} {:<7.3} {:.3}",
            c.detected(),
            c.precision(),
            c.recall(),
            c.f1()
        );
    }
}
