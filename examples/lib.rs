//! The examples are standalone binaries; this library target exists only so
//! the package has a build anchor. See `quickstart.rs` first.
