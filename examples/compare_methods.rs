//! Head-to-head comparison of every method in the paper's evaluation:
//! EnsemFDet vs Fraudar vs SpokEn vs FBox on one synthetic JD-like dataset
//! (a miniature of Figure 3).
//!
//! Run with:
//! ```text
//! cargo run --release -p ensemfdet-examples --bin compare_methods
//! ```

use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_baselines::{FBox, Fraudar, Spoken};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_eval::{time_it, PrCurve, Table};

fn main() {
    let dataset = generate(&jd_preset(JdDataset::Jd1, 100, 11));
    let labels = dataset.labels();
    let g = &dataset.graph;
    println!(
        "dataset: {} users / {} merchants / {} edges, {} blacklisted\n",
        g.num_users(),
        g.num_merchants(),
        g.num_edges(),
        dataset.blacklist.len()
    );

    let mut table = Table::new(&["method", "best F1", "precision@bestF1", "recall@bestF1", "AUC-PR", "time"]);

    // EnsemFDet: vote-threshold sweep.
    let (ens_curve, ens_time) = time_it(|| {
        let outcome = EnsemFdet::new(EnsemFdetConfig {
            num_samples: 40,
            sample_ratio: 0.1,
            seed: 3,
            ..Default::default()
        })
        .detect(g);
        let sets: Vec<(f64, Vec<u32>)> = (1..=outcome.votes.max_user_votes())
            .map(|t| {
                (
                    t as f64,
                    outcome
                        .votes
                        .detected_users(t)
                        .into_iter()
                        .map(|u| u.0)
                        .collect(),
                )
            })
            .collect();
        PrCurve::from_threshold_sets(sets.iter().map(|(t, d)| (*t, d.as_slice())), &labels)
    });
    push_row(&mut table, "EnsemFDet", &ens_curve, ens_time);

    // Fraudar: cumulative-block sweep (its coarse polyline).
    let (fra_curve, fra_time) = time_it(|| {
        let result = Fraudar::default().run(g);
        let points = result.operating_points();
        PrCurve::from_threshold_sets(
            points.iter().map(|(k, d)| (*k as f64, d.as_slice())),
            &labels,
        )
    });
    push_row(&mut table, "Fraudar", &fra_curve, fra_time);

    // SpokEn / FBox: score-threshold sweeps.
    let (spk_curve, spk_time) =
        time_it(|| PrCurve::from_scores(&Spoken::default().score_users(g), &labels));
    push_row(&mut table, "SpokEn", &spk_curve, spk_time);

    let (fbx_curve, fbx_time) =
        time_it(|| PrCurve::from_scores(&FBox::default().score_users(g), &labels));
    push_row(&mut table, "FBox", &fbx_curve, fbx_time);

    println!("{}", table.render());
    println!(
        "expected shape (paper Figure 3): EnsemFDet ≈ Fraudar at the top, \
         both clearly above the SVD methods; EnsemFDet's curve is smooth \
         while Fraudar offers only a handful of operating points."
    );
}

fn push_row(table: &mut Table, name: &str, curve: &PrCurve, time: std::time::Duration) {
    let best = curve.best_point().cloned().unwrap_or(ensemfdet_eval::PrPoint {
        threshold: 0.0,
        detected: 0,
        precision: 0.0,
        recall: 0.0,
        f1: 0.0,
    });
    table.row(&[
        name.to_string(),
        format!("{:.3}", best.f1),
        format!("{:.3}", best.precision),
        format!("{:.3}", best.recall),
        format!("{:.3}", curve.auc_pr()),
        format!("{:.2?}", time),
    ]);
}
