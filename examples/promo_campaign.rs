//! Promotion-campaign scenario: the workload the paper's introduction
//! motivates — groups of fraud accounts abusing a discount campaign, with
//! camouflage purchases and a noisy expert blacklist — generated
//! synthetically, detected with EnsemFDet, and evaluated against the
//! blacklist exactly as the paper evaluates on JD.com data.
//!
//! Run with:
//! ```text
//! cargo run --release -p ensemfdet-examples --bin promo_campaign
//! ```

use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::generate;
use ensemfdet_eval::{confusion, Table};

fn main() {
    // A 1:100 model of the paper's Dataset #1 (fraud-heavy: 5.3% of PINs).
    let cfg = jd_preset(JdDataset::Jd1, 100, 42);
    let dataset = generate(&cfg);
    let (users, blacklisted, merchants, edges) = dataset.table1_row();
    println!(
        "campaign dataset: {users} PINs ({blacklisted} blacklisted), \
         {merchants} merchants, {edges} purchase edges"
    );
    println!(
        "planted: {} fraud groups, {} fraud accounts, {} ring merchants\n",
        dataset.groups.len(),
        dataset.true_fraud_users.len(),
        dataset.fraud_merchants.len()
    );

    let detector = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 40,
        sample_ratio: 0.1,
        seed: 7,
        ..Default::default()
    });
    let outcome = detector.detect(&dataset.graph);
    println!(
        "EnsemFDet: N = 40 samples at S = 0.1 in {:?} \
         (Σ per-sample {:?} — the parallel headroom)",
        outcome.elapsed,
        outcome.total_sample_time()
    );

    // Evaluate the full T sweep against the expert blacklist.
    let labels = dataset.labels();
    let mut table = Table::new(&["T", "detected", "precision", "recall", "F1"]);
    let max_t = outcome.votes.max_user_votes();
    for t in 1..=max_t {
        let detected: Vec<u32> = outcome
            .votes
            .detected_users(t)
            .into_iter()
            .map(|u| u.0)
            .collect();
        let c = confusion(&detected, &labels);
        if t == 1 || t == max_t || t % 5 == 0 {
            table.row(&[
                t.to_string(),
                c.detected().to_string(),
                format!("{:.3}", c.precision()),
                format!("{:.3}", c.recall()),
                format!("{:.3}", c.f1()),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!(
        "pick T from the table to match your risk appetite: precision \
         climbs and recall falls monotonically with T (Figure 9 of the paper)."
    );
}
