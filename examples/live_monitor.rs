//! Live campaign monitoring: ingest a raw transaction log with string
//! account/merchant keys, scan every few thousand purchases, and alert on
//! accounts the moment they cross the vote threshold — "detect and prevent
//! fraud as early as possible".
//!
//! Run with:
//! ```text
//! cargo run --release -p ensemfdet-examples --bin live_monitor
//! ```

use ensemfdet::{CampaignMonitor, EnsemFdetConfig, MonitorConfig};
use ensemfdet_graph::TransactionInterner;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // A monitor scanning every 2 000 purchases, alerting on accounts that
    // win 14 of 16 sampled detections.
    let mut monitor = CampaignMonitor::new(MonitorConfig {
        detector: EnsemFdetConfig {
            num_samples: 16,
            sample_ratio: 0.5,
            seed: 77,
            ..Default::default()
        },
        scan_interval: 2_000,
        alert_threshold: 14,
        // Skip the sparse warm-up graph: early scans would alert on noise.
        min_transactions: 3_500,
    });
    let mut interner = TransactionInterner::new();
    let mut rng = StdRng::seed_from_u64(123);

    // Simulated feed: honest shoppers all day, a fraud ring firing from
    // transaction ~4 000 (mid-campaign).
    println!("streaming 8000 purchases; fraud ring activates at ~4000\n");
    for t in 0..8_000u32 {
        let (user_key, merchant_key) = if t > 4_000 && t % 4 == 0 {
            // Ring: 25 bot accounts hammering 10 stores (bulk purchases).
            let bot = rng.random_range(0..25u32);
            let store = rng.random_range(0..10u32);
            (format!("bot-{bot:02}"), format!("ring-store-{store}"))
        } else {
            let shopper = rng.random_range(0..1_500u32);
            // Store popularity is heavy-tailed, as in real e-commerce;
            // uniform traffic would leave nothing for the log-weighted
            // metric to discount.
            let r: f64 = rng.random::<f64>();
            let store = (r * r * 300.0) as u32;
            (format!("pin-{shopper:04}"), format!("store-{store:03}"))
        };
        let u = interner.user(&user_key);
        let v = interner.merchant(&merchant_key);

        if let Some(report) = monitor.ingest(u, v) {
            println!(
                "scan @ {:>5} transactions: {:>3} flagged, {:>3} new alerts",
                report.transactions_seen,
                report.flagged.len(),
                report.new_alerts.len()
            );
            for alert in &report.new_alerts {
                println!("    ALERT {}", interner.user_key(*alert));
            }
        }
    }

    let final_report = monitor.scan();
    println!(
        "\nfinal scan: {} accounts flagged; alerted over the campaign: {}",
        final_report.flagged.len(),
        monitor.alerted().len()
    );
    let bots_caught = monitor
        .alerted()
        .iter()
        .filter(|u| interner.user_key(**u).starts_with("bot-"))
        .count();
    println!("bot accounts caught: {bots_caught}/25");
}
