#![warn(missing_docs)]

//! Process-local telemetry for the detection service.
//!
//! Three primitives — [`Counter`], [`Gauge`], [`Histogram`] — all safe to
//! update from any thread without locks on the hot path, plus
//! [`StatusCounter`] (a small labelled counter behind a mutex, fine at
//! request rates) and [`ServiceMetrics`], the concrete metric set the HTTP
//! service exposes at `GET /metrics` in the Prometheus text exposition
//! format (version 0.0.4).
//!
//! No dependencies, no global registry: whoever owns a [`ServiceMetrics`]
//! decides where its numbers go. The ensemble's per-sample wall-clock
//! ([`SampleSummary::elapsed`]-style data) feeds the
//! `ensemfdet_scan_sample_duration_seconds` histogram via
//! [`ServiceMetrics::record_scan`].
//!
//! [`SampleSummary::elapsed`]: https://docs.rs/ensemfdet

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The content type Prometheus scrapers expect from a text-format endpoint.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can go up and down (queue depth, busy
/// workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in seconds: sub-millisecond up to
/// ten seconds, roughly log-spaced — wide enough for both a `/health` hit
/// and a full ensemble scan.
pub const DEFAULT_LATENCY_BOUNDS: [f64; 14] = [
    0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
];

/// A fixed-bucket histogram of seconds.
///
/// Buckets are chosen at construction and never change, so observation is
/// a binary search plus two relaxed atomic adds — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds (`le`), strictly increasing; a `+Inf` bucket is
    /// implicit.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; `buckets[bounds.len()]` is `+Inf`.
    buckets: Vec<AtomicU64>,
    /// Sum of all observations, in nanoseconds.
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// A histogram over the given upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite and strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// A histogram over [`DEFAULT_LATENCY_BOUNDS`].
    pub fn latency() -> Self {
        Self::new(&DEFAULT_LATENCY_BOUNDS)
    }

    /// Records one observation, in seconds (negatives clamp to zero).
    pub fn observe(&self, seconds: f64) {
        let s = seconds.max(0.0);
        let idx = self.bounds.partition_point(|&b| b < s);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((s * 1e9).round() as u64, Ordering::Relaxed);
    }

    /// Records one duration.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations (derived from one [`snapshot`](Self::snapshot)).
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// Sum of observations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Copies every bucket cell in one pass. All derived figures — the
    /// cumulative rows *and* the total count — must come from a single
    /// snapshot: loading cells on demand lets a concurrent `observe` land
    /// between two loads, so a scrape could expose a `+Inf` bucket that
    /// disagrees with `_count`, which Prometheus treats as a malformed
    /// histogram.
    pub fn snapshot(&self) -> HistogramSnapshot<'_> {
        HistogramSnapshot {
            bounds: &self.bounds,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs; the final entry is
    /// the `+Inf` bucket, equal to the total count of the same snapshot.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        self.snapshot().cumulative()
    }
}

/// A point-in-time copy of a [`Histogram`]'s bucket cells, from which the
/// exposition derives every per-scrape figure consistently.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot<'a> {
    bounds: &'a [f64],
    /// Non-cumulative cell values; the last entry is the `+Inf` bucket.
    buckets: Vec<u64>,
}

impl HistogramSnapshot<'_> {
    /// Total observations in this snapshot — always equal to the final
    /// (`+Inf`) entry of [`cumulative`](Self::cumulative) by construction.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs over this snapshot;
    /// the final entry is the `+Inf` bucket.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            out.push((self.bounds.get(i).copied().unwrap_or(f64::INFINITY), acc));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::latency()
    }
}

/// A counter labelled by `(route, status)` — a handful of cells behind a
/// mutex, which is plenty at HTTP request rates.
#[derive(Debug, Default)]
pub struct StatusCounter {
    cells: Mutex<BTreeMap<(&'static str, u16), u64>>,
}

impl StatusCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to the `(route, status)` cell.
    pub fn inc(&self, route: &'static str, status: u16) {
        let mut cells = self.cells.lock().expect("status counter poisoned");
        *cells.entry((route, status)).or_insert(0) += 1;
    }

    /// All cells, sorted by label.
    pub fn snapshot(&self) -> Vec<((&'static str, u16), u64)> {
        let cells = self.cells.lock().expect("status counter poisoned");
        cells.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Sum over all cells.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().map(|&(_, v)| v).sum()
    }

    /// Sum over cells matching a route.
    pub fn total_for_route(&self, route: &str) -> u64 {
        self.snapshot()
            .iter()
            .filter(|((r, _), _)| *r == route)
            .map(|&(_, v)| v)
            .sum()
    }
}

/// The full metric set of the detection service.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Requests served on current (v1) routes, by route and status.
    pub requests: StatusCounter,
    /// Requests served on deprecated legacy route aliases, by canonical
    /// route and status — rendered in the same
    /// `ensemfdet_http_requests_total` family with `deprecated="true"`.
    pub deprecated_requests: StatusCounter,
    /// Connections shed because the accept queue was full.
    pub rejected: Counter,
    /// Connections currently waiting in the accept queue.
    pub queue_depth: Gauge,
    /// Workers currently handling a connection.
    pub workers_busy: Gauge,
    /// Wall-clock per HTTP request (read → handle → write).
    pub request_duration: Histogram,
    /// Wall-clock per ensemble scan.
    pub scan_duration: Histogram,
    /// Wall-clock per ensemble *sample* (N observations per scan).
    pub sample_duration: Histogram,
    /// CPU time per scan spent sampling (summed over the scan's samples).
    pub stage_sampling: Histogram,
    /// CPU time per scan spent in FDET detection (summed over samples).
    pub stage_detection: Histogram,
    /// Wall-clock per scan spent merging votes and evidence.
    pub stage_aggregation: Histogram,
    /// Transactions ingested via `POST /transactions`.
    pub transactions_ingested: Counter,
    /// Detection scans run (manual and automatic).
    pub scans: Counter,
    /// New accounts alerted across all scans.
    pub alerts: Counter,
    /// Scan jobs waiting in the scan executor's queue.
    pub scan_queue_depth: Gauge,
    /// Scan jobs currently executing (0 or 1 with a single executor).
    pub scans_in_flight: Gauge,
    /// Scan jobs rejected because the scan queue was full (429s).
    pub scan_queue_rejected: Counter,
    /// Scan jobs that failed (detector panic or internal error).
    pub scans_failed: Counter,
    /// Epoch of the latest published graph snapshot.
    pub snapshot_epoch: Gauge,
    /// Transactions ingested since the latest snapshot was compacted
    /// (snapshot age, measured in transactions).
    pub snapshot_lag: Gauge,
    /// End-to-end scan-job latency (enqueue → published result).
    pub scan_job_duration: Histogram,
    /// Time scan jobs spend queued before the executor picks them up.
    pub scan_queue_wait: Histogram,
    /// Per-scan sampling-stage duration (spec drawing on the mask path;
    /// includes full subgraph construction when materializing).
    pub sampling_duration: Histogram,
    /// Bytes of per-sample state materialized across all scans:
    /// selection vectors on the mask path, full subgraph buffers and
    /// intern maps on the materializing path.
    pub sample_bytes_materialized: Counter,
    /// Scans that actually ran the incremental per-sample reuse path.
    pub scans_incremental: Counter,
    /// Incremental scan requests that degraded to a full re-peel (cold
    /// cache, config change, missing delta, or oversized delta).
    pub scan_fallbacks: Counter,
    /// Fraction of samples an incremental scan had to re-peel (one
    /// observation per incremental scan; fallbacks observe 1.0).
    pub dirty_sample_fraction: FractionHistogram,
    /// Nodes touched by the delta behind the most recent incremental
    /// scan.
    pub delta_touched_nodes: Gauge,
    /// Wall-clock of full-mode scans (the `mode="full"` series of
    /// `ensemfdet_scan_mode_duration_seconds`).
    pub scan_duration_full: Histogram,
    /// Wall-clock of incremental-mode scans (`mode="incremental"`).
    pub scan_duration_incremental: Histogram,
    /// Worker threads the most recent scan's sample pool ran with.
    pub scan_workers: Gauge,
    /// Busy time per ensemble worker per scan (`workers` observations
    /// per scan) — the spread shows how evenly the sample pool balances.
    pub worker_busy_duration: Histogram,
    /// Ingest-body parse time for JSON-array batches (the
    /// `content_type="json"` series of
    /// `ensemfdet_ingest_parse_duration_seconds`).
    pub ingest_parse_json: Histogram,
    /// Ingest-body parse time for NDJSON batches
    /// (`content_type="ndjson"`).
    pub ingest_parse_ndjson: Histogram,
    /// Ingest-body parse time for `text/csv` transaction-log batches
    /// (`content_type="csv"`).
    pub ingest_parse_csv: Histogram,
    /// End-to-end bulk-load time (parse + intern + append) for JSON-array
    /// ingest (the `format="json"` series of
    /// `ensemfdet_ingest_load_duration_seconds`).
    pub ingest_load_json: Histogram,
    /// End-to-end bulk-load time for NDJSON ingest (`format="ndjson"`).
    pub ingest_load_ndjson: Histogram,
    /// End-to-end bulk-load time for `text/csv` ingest (`format="csv"`).
    pub ingest_load_csv: Histogram,
    /// Distinct user keys the interner currently holds (the
    /// `side="user"` series of `ensemfdet_interner_keys_total`).
    pub interner_user_keys: Gauge,
    /// Distinct merchant keys the interner currently holds
    /// (`side="merchant"`).
    pub interner_merchant_keys: Gauge,
    /// Bytes held by the interner's key arenas, both sides and all
    /// shards.
    pub interner_arena_bytes: Gauge,
    /// Scans that ran the hybrid scoring fusion on top of the ensemble.
    pub scans_hybrid: Counter,
    /// Hybrid-scoring vote-component time (the `component="vote"` series
    /// of `ensemfdet_scan_scoring_duration_seconds`; covers only the
    /// vote-fraction conversion — the ensemble pass itself is timed by
    /// the stage histograms).
    pub scoring_vote_duration: Histogram,
    /// Hybrid-scoring spectral-component time (`component="spectral"`:
    /// adjacency assembly + randomized SVD).
    pub scoring_spectral_duration: Histogram,
    /// Hybrid-scoring k-core-component time (`component="kcore"`).
    pub scoring_kcore_duration: Histogram,
}

/// A [`Histogram`] whose default buckets cover a `[0, 1]` fraction
/// instead of a latency — used for the dirty-sample fraction, where the
/// interesting resolution is near 0 (most samples replayed).
#[derive(Debug)]
pub struct FractionHistogram(pub Histogram);

impl Default for FractionHistogram {
    fn default() -> Self {
        FractionHistogram(Histogram::new(&[
            0.0, 0.01, 0.025, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0,
        ]))
    }
}

impl ServiceMetrics {
    /// A fresh metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one ensemble scan: total wall-clock plus every per-sample
    /// timing (from the ensemble's `SampleSummary.elapsed` diagnostics).
    pub fn record_scan(&self, elapsed: Duration, sample_times: &[Duration]) {
        self.scans.inc();
        self.scan_duration.observe_duration(elapsed);
        for &t in sample_times {
            self.sample_duration.observe_duration(t);
        }
    }

    /// Records one scan's per-stage split (from the ensemble's
    /// `StageTimings` diagnostics): `[sampling, detection, aggregation]`.
    pub fn record_scan_stages(&self, stages: [Duration; 3]) {
        self.stage_sampling.observe_duration(stages[0]);
        self.stage_detection.observe_duration(stages[1]);
        self.stage_aggregation.observe_duration(stages[2]);
    }

    /// Records one scan's sampling cost: the sampling-stage duration and
    /// the bytes of per-sample state it materialized (from the ensemble's
    /// `sample_bytes` diagnostics).
    pub fn record_sampling(&self, sampling: Duration, bytes: u64) {
        self.sampling_duration.observe_duration(sampling);
        self.sample_bytes_materialized.add(bytes);
    }

    /// Renders everything in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);

        write_header(
            &mut out,
            "ensemfdet_http_requests_total",
            "counter",
            "HTTP requests served, by route and status.",
        );
        for ((route, status), n) in self.requests.snapshot() {
            let _ = writeln!(
                out,
                "ensemfdet_http_requests_total{{route=\"{route}\",status=\"{status}\"}} {n}"
            );
        }
        // Legacy-alias traffic is the same family, marked deprecated so
        // dashboards can watch migration progress.
        for ((route, status), n) in self.deprecated_requests.snapshot() {
            let _ = writeln!(
                out,
                "ensemfdet_http_requests_total{{route=\"{route}\",status=\"{status}\",deprecated=\"true\"}} {n}"
            );
        }

        write_counter(
            &mut out,
            "ensemfdet_http_rejected_total",
            "Connections shed because the accept queue was full.",
            self.rejected.get(),
        );
        write_gauge(
            &mut out,
            "ensemfdet_http_queue_depth",
            "Connections waiting in the accept queue.",
            self.queue_depth.get(),
        );
        write_gauge(
            &mut out,
            "ensemfdet_http_workers_busy",
            "Workers currently handling a connection.",
            self.workers_busy.get(),
        );
        write_histogram(
            &mut out,
            "ensemfdet_http_request_duration_seconds",
            "Wall-clock per HTTP request.",
            &self.request_duration,
        );
        write_histogram(
            &mut out,
            "ensemfdet_scan_duration_seconds",
            "Wall-clock per ensemble detection scan.",
            &self.scan_duration,
        );
        write_histogram(
            &mut out,
            "ensemfdet_scan_sample_duration_seconds",
            "Wall-clock per ensemble sample (N per scan).",
            &self.sample_duration,
        );
        write_header(
            &mut out,
            "ensemfdet_scan_stage_duration_seconds",
            "histogram",
            "Per-scan pipeline-stage time (sampling/detection summed over samples).",
        );
        for (stage, h) in [
            ("sampling", &self.stage_sampling),
            ("detection", &self.stage_detection),
            ("aggregation", &self.stage_aggregation),
        ] {
            write_histogram_samples(
                &mut out,
                "ensemfdet_scan_stage_duration_seconds",
                &format!("stage=\"{stage}\","),
                h,
            );
        }
        write_counter(
            &mut out,
            "ensemfdet_transactions_ingested_total",
            "Transactions ingested via POST /transactions.",
            self.transactions_ingested.get(),
        );
        write_counter(
            &mut out,
            "ensemfdet_scans_total",
            "Detection scans run (manual and automatic).",
            self.scans.get(),
        );
        write_counter(
            &mut out,
            "ensemfdet_alerts_total",
            "New accounts alerted across all scans.",
            self.alerts.get(),
        );
        write_gauge(
            &mut out,
            "ensemfdet_scan_queue_depth",
            "Scan jobs waiting in the executor queue.",
            self.scan_queue_depth.get(),
        );
        write_gauge(
            &mut out,
            "ensemfdet_scans_in_flight",
            "Scan jobs currently executing.",
            self.scans_in_flight.get(),
        );
        write_counter(
            &mut out,
            "ensemfdet_scan_queue_rejected_total",
            "Scan jobs rejected because the queue was full.",
            self.scan_queue_rejected.get(),
        );
        write_counter(
            &mut out,
            "ensemfdet_scans_failed_total",
            "Scan jobs that failed.",
            self.scans_failed.get(),
        );
        write_gauge(
            &mut out,
            "ensemfdet_snapshot_epoch",
            "Epoch of the latest published graph snapshot.",
            self.snapshot_epoch.get(),
        );
        write_gauge(
            &mut out,
            "ensemfdet_snapshot_lag_transactions",
            "Transactions ingested since the latest snapshot was compacted.",
            self.snapshot_lag.get(),
        );
        write_histogram(
            &mut out,
            "ensemfdet_scan_job_duration_seconds",
            "End-to-end scan-job latency (enqueue to published result).",
            &self.scan_job_duration,
        );
        write_histogram(
            &mut out,
            "ensemfdet_scan_queue_wait_seconds",
            "Time scan jobs spend queued before execution.",
            &self.scan_queue_wait,
        );
        write_histogram(
            &mut out,
            "ensemfdet_scan_sampling_duration_seconds",
            "Per-scan sampling-stage duration.",
            &self.sampling_duration,
        );
        write_counter(
            &mut out,
            "ensemfdet_sample_bytes_materialized_total",
            "Bytes of per-sample state materialized across all scans.",
            self.sample_bytes_materialized.get(),
        );
        write_counter(
            &mut out,
            "ensemfdet_scans_incremental_total",
            "Scans that ran the incremental per-sample reuse path.",
            self.scans_incremental.get(),
        );
        write_counter(
            &mut out,
            "ensemfdet_scan_fallbacks_total",
            "Incremental scan requests that degraded to a full re-peel.",
            self.scan_fallbacks.get(),
        );
        write_histogram(
            &mut out,
            "ensemfdet_dirty_sample_fraction",
            "Fraction of samples an incremental scan re-peeled.",
            &self.dirty_sample_fraction.0,
        );
        write_gauge(
            &mut out,
            "ensemfdet_delta_touched_nodes",
            "Nodes touched by the delta behind the latest incremental scan.",
            self.delta_touched_nodes.get(),
        );
        write_header(
            &mut out,
            "ensemfdet_scan_mode_duration_seconds",
            "histogram",
            "Wall-clock per scan, split by full vs incremental mode.",
        );
        for (mode, h) in [
            ("full", &self.scan_duration_full),
            ("incremental", &self.scan_duration_incremental),
        ] {
            write_histogram_samples(
                &mut out,
                "ensemfdet_scan_mode_duration_seconds",
                &format!("mode=\"{mode}\","),
                h,
            );
        }
        write_gauge(
            &mut out,
            "ensemfdet_scan_workers",
            "Worker threads the most recent scan's sample pool ran with.",
            self.scan_workers.get(),
        );
        write_histogram(
            &mut out,
            "ensemfdet_scan_worker_busy_seconds",
            "Busy time per ensemble worker per scan.",
            &self.worker_busy_duration,
        );
        write_header(
            &mut out,
            "ensemfdet_ingest_parse_duration_seconds",
            "histogram",
            "Ingest-body parse time, by content type.",
        );
        for (ct, h) in [
            ("json", &self.ingest_parse_json),
            ("ndjson", &self.ingest_parse_ndjson),
            ("csv", &self.ingest_parse_csv),
        ] {
            write_histogram_samples(
                &mut out,
                "ensemfdet_ingest_parse_duration_seconds",
                &format!("content_type=\"{ct}\","),
                h,
            );
        }
        write_header(
            &mut out,
            "ensemfdet_ingest_load_duration_seconds",
            "histogram",
            "End-to-end bulk-load time (parse + intern + append), by format.",
        );
        for (format, h) in [
            ("json", &self.ingest_load_json),
            ("ndjson", &self.ingest_load_ndjson),
            ("csv", &self.ingest_load_csv),
        ] {
            write_histogram_samples(
                &mut out,
                "ensemfdet_ingest_load_duration_seconds",
                &format!("format=\"{format}\","),
                h,
            );
        }
        write_header(
            &mut out,
            "ensemfdet_interner_keys_total",
            "gauge",
            "Distinct keys the transaction interner holds, by side.",
        );
        let _ = writeln!(
            out,
            "ensemfdet_interner_keys_total{{side=\"user\"}} {}",
            self.interner_user_keys.get()
        );
        let _ = writeln!(
            out,
            "ensemfdet_interner_keys_total{{side=\"merchant\"}} {}",
            self.interner_merchant_keys.get()
        );
        write_gauge(
            &mut out,
            "ensemfdet_interner_arena_bytes",
            "Bytes held by the interner's key arenas (both sides).",
            self.interner_arena_bytes.get(),
        );
        write_counter(
            &mut out,
            "ensemfdet_scans_hybrid_total",
            "Scans that ran the hybrid scoring fusion.",
            self.scans_hybrid.get(),
        );
        write_header(
            &mut out,
            "ensemfdet_scan_scoring_duration_seconds",
            "histogram",
            "Hybrid-scoring component time per hybrid scan, by component.",
        );
        for (component, h) in [
            ("vote", &self.scoring_vote_duration),
            ("spectral", &self.scoring_spectral_duration),
            ("kcore", &self.scoring_kcore_duration),
        ] {
            write_histogram_samples(
                &mut out,
                "ensemfdet_scan_scoring_duration_seconds",
                &format!("component=\"{component}\","),
                h,
            );
        }
        out
    }

    /// Records one hybrid-scored scan: the `[vote, spectral, kcore]`
    /// component wall-clocks (from the scan outcome's
    /// `HybridScanScores::component_times`) plus the hybrid-scan counter.
    pub fn record_scan_scoring(&self, component_times: [Duration; 3]) {
        self.scans_hybrid.inc();
        self.scoring_vote_duration.observe_duration(component_times[0]);
        self.scoring_spectral_duration.observe_duration(component_times[1]);
        self.scoring_kcore_duration.observe_duration(component_times[2]);
    }

    /// Records one scan's reuse telemetry: the mode-labelled duration
    /// series, and — for incremental scans — the dirty-sample fraction
    /// and delta size. A fallback counts as a full-mode scan with a
    /// dirty fraction of 1.0 (every sample re-peeled).
    pub fn record_scan_reuse(
        &self,
        incremental: bool,
        fell_back: bool,
        dirty_fraction: f64,
        delta_touched: usize,
        elapsed: Duration,
    ) {
        if incremental {
            self.scans_incremental.inc();
            self.dirty_sample_fraction.0.observe(dirty_fraction);
            self.delta_touched_nodes.set(delta_touched as i64);
            self.scan_duration_incremental.observe_duration(elapsed);
        } else {
            if fell_back {
                self.scan_fallbacks.inc();
                self.dirty_sample_fraction.0.observe(1.0);
            }
            self.scan_duration_full.observe_duration(elapsed);
        }
    }

    /// Records one scan's worker-pool telemetry: the effective worker
    /// count and each worker's busy time (from the ensemble's
    /// `worker_times` diagnostics).
    pub fn record_scan_workers(&self, workers: usize, worker_times: &[Duration]) {
        self.scan_workers.set(workers as i64);
        for &t in worker_times {
            self.worker_busy_duration.observe_duration(t);
        }
    }

    /// Records one ingest body parse, labelled by content type:
    /// `"json"` (the default JSON array), `"ndjson"`, or `"csv"`.
    /// Unknown labels fall back to the JSON series.
    pub fn record_ingest_parse(&self, content_type: &str, elapsed: Duration) {
        let h = match content_type {
            "ndjson" => &self.ingest_parse_ndjson,
            "csv" => &self.ingest_parse_csv,
            _ => &self.ingest_parse_json,
        };
        h.observe_duration(elapsed);
    }

    /// Records one end-to-end bulk load (parse + intern + append),
    /// labelled by format (`"json"`, `"ndjson"`, `"csv"`).
    pub fn record_ingest_load(&self, format: &str, elapsed: Duration) {
        let h = match format {
            "ndjson" => &self.ingest_load_ndjson,
            "csv" => &self.ingest_load_csv,
            _ => &self.ingest_load_json,
        };
        h.observe_duration(elapsed);
    }

    /// Publishes the interner's size gauges: distinct keys per side and
    /// total arena bytes.
    pub fn record_interner(&self, users: usize, merchants: usize, arena_bytes: usize) {
        self.interner_user_keys.set(users as i64);
        self.interner_merchant_keys.set(merchants as i64);
        self.interner_arena_bytes.set(arena_bytes as i64);
    }

    /// Records one completed scan job: time spent queued and the
    /// end-to-end latency from enqueue to published result.
    pub fn record_scan_job(&self, queue_wait: Duration, total: Duration) {
        self.scan_queue_wait.observe_duration(queue_wait);
        self.scan_job_duration.observe_duration(total);
    }

    /// Updates the snapshot freshness gauges from the latest published
    /// snapshot's epoch and the transactions ingested since it.
    pub fn record_snapshot(&self, epoch: u64, lag: usize) {
        self.snapshot_epoch.set(epoch as i64);
        self.snapshot_lag.set(lag as i64);
    }
}

fn write_header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn write_counter(out: &mut String, name: &str, help: &str, value: u64) {
    write_header(out, name, "counter", help);
    let _ = writeln!(out, "{name} {value}");
}

fn write_gauge(out: &mut String, name: &str, help: &str, value: i64) {
    write_header(out, name, "gauge", help);
    let _ = writeln!(out, "{name} {value}");
}

fn write_histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    write_header(out, name, "histogram", help);
    write_histogram_samples(out, name, "", h);
}

/// Emits one histogram's samples with `extra_labels` (e.g. `stage="x",`,
/// trailing comma included) prepended to each bucket's `le` label.
///
/// Every figure comes from one [`Histogram::snapshot`], so the emitted
/// `+Inf` bucket and `_count` always agree even under concurrent observes.
fn write_histogram_samples(out: &mut String, name: &str, extra_labels: &str, h: &Histogram) {
    let snapshot = h.snapshot();
    let total = snapshot.count();
    for (bound, count) in snapshot.cumulative() {
        if bound.is_finite() {
            let _ = writeln!(out, "{name}_bucket{{{extra_labels}le=\"{bound}\"}} {count}");
        } else {
            let _ = writeln!(out, "{name}_bucket{{{extra_labels}le=\"+Inf\"}} {count}");
        }
    }
    let labels = extra_labels.trim_end_matches(',');
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum_seconds());
        let _ = writeln!(out, "{name}_count {total}");
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum_seconds());
        let _ = writeln!(out, "{name}_count{{{labels}}} {total}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(3);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_places_observations() {
        let h = Histogram::new(&[0.01, 0.1, 1.0]);
        h.observe(0.005); // ≤ 0.01
        h.observe(0.01); // ≤ 0.01 (le is inclusive)
        h.observe(0.05); // ≤ 0.1
        h.observe(10.0); // +Inf
        let c = h.cumulative();
        assert_eq!(c[0], (0.01, 2));
        assert_eq!(c[1], (0.1, 3));
        assert_eq!(c[2], (1.0, 3));
        assert_eq!(c[3].1, 4);
        assert!(c[3].0.is_infinite());
        assert_eq!(h.count(), 4);
        assert!((h.sum_seconds() - 10.065).abs() < 1e-6);
    }

    #[test]
    fn histogram_clamps_negatives() {
        let h = Histogram::new(&[1.0]);
        h.observe(-5.0);
        assert_eq!(h.cumulative()[0], (1.0, 1));
        assert_eq!(h.sum_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[1.0, 0.5]);
    }

    #[test]
    fn status_counter_tracks_labels() {
        let s = StatusCounter::new();
        s.inc("/health", 200);
        s.inc("/health", 200);
        s.inc("/scan", 200);
        s.inc("/scan", 503);
        assert_eq!(s.total(), 4);
        assert_eq!(s.total_for_route("/health"), 2);
        assert_eq!(s.snapshot().len(), 3);
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = std::sync::Arc::new(Histogram::latency());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe(i as f64 * 1e-5);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn snapshot_keeps_inf_bucket_and_count_consistent_under_writes() {
        // Scrape-vs-observe race: every snapshot's +Inf row must equal its
        // own total, and successive scrapes must be monotone. (Per-cell
        // on-demand loads violated the first invariant when an observe
        // landed between two loads.)
        let h = std::sync::Arc::new(Histogram::latency());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.observe((i % 1000) as f64 * 1e-4);
                        i += 1;
                    }
                })
            })
            .collect();
        let mut last_total = 0u64;
        for _ in 0..200 {
            let snap = h.snapshot();
            let cumulative = snap.cumulative();
            let inf_row = cumulative.last().expect("has +Inf row");
            assert!(inf_row.0.is_infinite());
            assert_eq!(inf_row.1, snap.count(), "+Inf bucket vs _count");
            assert!(
                cumulative.windows(2).all(|w| w[0].1 <= w[1].1),
                "cumulative rows must be monotone"
            );
            assert!(snap.count() >= last_total, "scrapes must be monotone");
            last_total = snap.count();
        }
        stop.store(true, Ordering::Relaxed);
        for t in writers {
            t.join().unwrap();
        }
    }

    #[test]
    fn render_is_valid_exposition_text() {
        let m = ServiceMetrics::new();
        m.requests.inc("/health", 200);
        m.requests.inc("/scan", 503);
        m.rejected.inc();
        m.queue_depth.set(2);
        m.record_scan(
            Duration::from_millis(30),
            &[Duration::from_millis(10), Duration::from_millis(20)],
        );
        m.record_scan_stages([
            Duration::from_millis(5),
            Duration::from_millis(24),
            Duration::from_millis(1),
        ]);
        m.record_sampling(Duration::from_millis(5), 4096);
        let text = m.render();
        assert!(text.contains("ensemfdet_scan_sampling_duration_seconds_count 1"));
        assert!(text.contains("ensemfdet_sample_bytes_materialized_total 4096"));
        assert!(text.contains(
            "ensemfdet_http_requests_total{route=\"/health\",status=\"200\"} 1"
        ));
        assert!(text.contains("ensemfdet_http_requests_total{route=\"/scan\",status=\"503\"} 1"));
        assert!(text.contains("ensemfdet_http_rejected_total 1"));
        assert!(text.contains("ensemfdet_http_queue_depth 2"));
        assert!(text.contains("ensemfdet_scans_total 1"));
        assert!(text.contains("ensemfdet_scan_sample_duration_seconds_count 2"));
        assert!(text.contains("ensemfdet_scan_duration_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains(
            "ensemfdet_scan_stage_duration_seconds_bucket{stage=\"detection\",le=\"+Inf\"} 1"
        ));
        assert!(text.contains("ensemfdet_scan_stage_duration_seconds_count{stage=\"sampling\"} 1"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in `{line}`");
        }
        // HELP/TYPE pairs precede their samples.
        assert!(text.find("# TYPE ensemfdet_scans_total").unwrap()
            < text.find("\nensemfdet_scans_total ").unwrap());
    }

    #[test]
    fn deprecated_requests_carry_the_deprecated_label() {
        let m = ServiceMetrics::new();
        m.requests.inc("/v1/scans", 202);
        m.deprecated_requests.inc("/v1/scans", 200);
        let text = m.render();
        assert!(text.contains(
            "ensemfdet_http_requests_total{route=\"/v1/scans\",status=\"202\"} 1"
        ));
        assert!(text.contains(
            "ensemfdet_http_requests_total{route=\"/v1/scans\",status=\"200\",deprecated=\"true\"} 1"
        ));
    }

    #[test]
    fn scan_pipeline_metrics_render() {
        let m = ServiceMetrics::new();
        m.scan_queue_depth.set(3);
        m.scans_in_flight.set(1);
        m.scan_queue_rejected.inc();
        m.scans_failed.inc();
        m.record_snapshot(7, 42);
        m.record_scan_job(Duration::from_millis(2), Duration::from_millis(90));
        let text = m.render();
        assert!(text.contains("ensemfdet_scan_queue_depth 3"));
        assert!(text.contains("ensemfdet_scans_in_flight 1"));
        assert!(text.contains("ensemfdet_scan_queue_rejected_total 1"));
        assert!(text.contains("ensemfdet_scans_failed_total 1"));
        assert!(text.contains("ensemfdet_snapshot_epoch 7"));
        assert!(text.contains("ensemfdet_snapshot_lag_transactions 42"));
        assert!(text.contains("ensemfdet_scan_job_duration_seconds_count 1"));
        assert!(text.contains("ensemfdet_scan_queue_wait_seconds_count 1"));
    }

    #[test]
    fn worker_and_ingest_parse_metrics_render() {
        let m = ServiceMetrics::new();
        m.record_scan_workers(
            2,
            &[Duration::from_millis(40), Duration::from_millis(35)],
        );
        m.record_ingest_parse("json", Duration::from_micros(300));
        m.record_ingest_parse("ndjson", Duration::from_micros(120));
        m.record_ingest_parse("ndjson", Duration::from_micros(90));
        m.record_ingest_parse("csv", Duration::from_micros(75));
        let text = m.render();
        assert!(text.contains("ensemfdet_scan_workers 2"));
        assert!(text.contains("ensemfdet_scan_worker_busy_seconds_count 2"));
        assert!(text.contains(
            "ensemfdet_ingest_parse_duration_seconds_count{content_type=\"json\"} 1"
        ));
        assert!(text.contains(
            "ensemfdet_ingest_parse_duration_seconds_count{content_type=\"ndjson\"} 2"
        ));
        assert!(text.contains(
            "ensemfdet_ingest_parse_duration_seconds_count{content_type=\"csv\"} 1"
        ));
    }

    #[test]
    fn ingest_load_and_interner_metrics_render() {
        let m = ServiceMetrics::new();
        m.record_ingest_load("csv", Duration::from_millis(4));
        m.record_ingest_load("csv", Duration::from_millis(6));
        m.record_ingest_load("ndjson", Duration::from_millis(2));
        m.record_interner(1200, 340, 65536);
        let text = m.render();
        assert!(text.contains(
            "ensemfdet_ingest_load_duration_seconds_count{format=\"csv\"} 2"
        ));
        assert!(text.contains(
            "ensemfdet_ingest_load_duration_seconds_count{format=\"ndjson\"} 1"
        ));
        assert!(text.contains(
            "ensemfdet_ingest_load_duration_seconds_count{format=\"json\"} 0"
        ));
        assert!(text.contains("ensemfdet_interner_keys_total{side=\"user\"} 1200"));
        assert!(text.contains("ensemfdet_interner_keys_total{side=\"merchant\"} 340"));
        assert!(text.contains("ensemfdet_interner_arena_bytes 65536"));
    }

    #[test]
    fn scoring_metrics_render_per_component() {
        let m = ServiceMetrics::new();
        m.record_scan_scoring([
            Duration::from_micros(50),
            Duration::from_millis(12),
            Duration::from_millis(3),
        ]);
        m.record_scan_scoring([
            Duration::from_micros(60),
            Duration::from_millis(11),
            Duration::from_millis(2),
        ]);
        let text = m.render();
        assert!(text.contains("ensemfdet_scans_hybrid_total 2"));
        for component in ["vote", "spectral", "kcore"] {
            assert!(
                text.contains(&format!(
                    "ensemfdet_scan_scoring_duration_seconds_count{{component=\"{component}\"}} 2"
                )),
                "{text}"
            );
        }
    }

    #[test]
    fn incremental_scan_metrics_render() {
        let m = ServiceMetrics::new();
        // One incremental scan: 2 of 8 samples re-peeled, 14 nodes touched.
        m.record_scan_reuse(true, false, 0.25, 14, Duration::from_millis(12));
        // One plain full scan (no fallback).
        m.record_scan_reuse(false, false, 1.0, 0, Duration::from_millis(80));
        // One fallback (oversized delta, say).
        m.record_scan_reuse(false, true, 1.0, 0, Duration::from_millis(75));
        let text = m.render();
        assert!(text.contains("ensemfdet_scans_incremental_total 1"));
        assert!(text.contains("ensemfdet_scan_fallbacks_total 1"));
        assert!(text.contains("ensemfdet_delta_touched_nodes 14"));
        // 0.25 lands in the le=0.35 bucket; the fallback's 1.0 joins at 1.
        assert!(text.contains("ensemfdet_dirty_sample_fraction_bucket{le=\"0.35\"} 1"));
        assert!(text.contains("ensemfdet_dirty_sample_fraction_bucket{le=\"1\"} 2"));
        assert!(text.contains("ensemfdet_dirty_sample_fraction_count 2"));
        // Mode-labelled duration series: 1 incremental, 2 full.
        assert!(text.contains(
            "ensemfdet_scan_mode_duration_seconds_count{mode=\"incremental\"} 1"
        ));
        assert!(text.contains("ensemfdet_scan_mode_duration_seconds_count{mode=\"full\"} 2"));
    }
}
