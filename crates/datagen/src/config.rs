//! Generator configuration.

use serde::{Deserialize, Serialize};

/// How camouflage edges pick their honest-merchant targets (the attack
/// models of the Fraudar evaluation the paper builds on).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CamouflageTargeting {
    /// Targets drawn uniformly from the honest merchants ("random
    /// camouflage").
    UniformRandom,
    /// Targets drawn by the background popularity law, concentrating on the
    /// busiest merchants ("biased camouflage") — the harder case
    /// Definition 2's log weighting is designed to survive.
    #[default]
    PopularityBiased,
}

/// One planted fraud group: `num_users × num_merchants` nodes connected as a
/// random bipartite block of the given density, plus camouflage edges from
/// each fraud user to honest merchants.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FraudGroupConfig {
    /// Fraud accounts in the group.
    pub num_users: usize,
    /// Merchants in the group's ring.
    pub num_merchants: usize,
    /// Probability of each (user, merchant) edge inside the block.
    pub density: f64,
    /// Camouflage edges per fraud user.
    pub camouflage_per_user: usize,
    /// Where those camouflage edges point.
    pub camouflage: CamouflageTargeting,
}

/// Full dataset recipe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Honest user count (fraud users are added on top).
    pub num_honest_users: usize,
    /// Honest merchant count (fraud-ring merchants are added on top).
    pub num_honest_merchants: usize,
    /// Mean purchases per honest user; actual degrees are `1 + Zipf`-ish
    /// with this mean.
    pub mean_user_degree: f64,
    /// Zipf exponent of merchant popularity (≈1.0–1.5 for e-commerce).
    pub merchant_popularity_alpha: f64,
    /// Zipf exponent of honest user activity.
    pub user_activity_alpha: f64,
    /// Hard cap on an honest user's degree.
    pub max_user_degree: usize,
    /// The planted fraud groups.
    pub fraud_groups: Vec<FraudGroupConfig>,
    /// Honest purchases landing on each fraud-ring merchant: abused stores
    /// are real stores with real customers, so detected blocks inevitably
    /// sweep in some honest users (the precision ceiling the paper's
    /// real-data curves show).
    pub ring_background_per_merchant: usize,
    /// Blacklisted accounts with *honest-looking* behaviour — fraud caught
    /// by expert review for reasons invisible in the purchase graph (stolen
    /// accounts, off-graph signals). No graph method can recall these, which
    /// caps recall below 1 exactly as the paper's real-data curves do.
    pub diffuse_fraud_users: usize,
    /// Regional/interest communities in the honest traffic: 0 disables
    /// (fully global popularity law); with `c > 0`, each honest user is
    /// assigned one of `c` communities and draws `community_affinity` of
    /// its purchases from that community's merchant slice. Communities are
    /// legitimate mildly-dense regions — false-positive pressure for every
    /// dense-subgraph detector.
    pub honest_communities: usize,
    /// Fraction of an honest user's purchases that stay inside its
    /// community (rest follow the global law). Ignored when
    /// `honest_communities == 0`.
    pub community_affinity: f64,
    /// Fraction of fraud users the expert blacklist *misses*.
    pub blacklist_miss_rate: f64,
    /// Fraction of honest users wrongly blacklisted (account theft, appeal
    /// churn — the paper's Section V-A caveat).
    pub blacklist_false_rate: f64,
    /// RNG seed; equal configs generate identical datasets.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_honest_users: 20_000,
            num_honest_merchants: 8_000,
            mean_user_degree: 2.0,
            merchant_popularity_alpha: 1.1,
            user_activity_alpha: 1.6,
            max_user_degree: 60,
            fraud_groups: vec![
                FraudGroupConfig {
                    num_users: 150,
                    num_merchants: 12,
                    density: 0.6,
                    camouflage_per_user: 2,
                    camouflage: CamouflageTargeting::PopularityBiased,
                };
                6
            ],
            ring_background_per_merchant: 8,
            diffuse_fraud_users: 200,
            honest_communities: 0,
            community_affinity: 0.7,
            blacklist_miss_rate: 0.05,
            blacklist_false_rate: 0.002,
            seed: 0xDA7A,
        }
    }
}

impl GeneratorConfig {
    /// Total users the generated graph will contain.
    pub fn total_users(&self) -> usize {
        self.num_honest_users
            + self.diffuse_fraud_users
            + self.fraud_groups.iter().map(|g| g.num_users).sum::<usize>()
    }

    /// Total merchants the generated graph will contain.
    pub fn total_merchants(&self) -> usize {
        self.num_honest_merchants
            + self
                .fraud_groups
                .iter()
                .map(|g| g.num_merchants)
                .sum::<usize>()
    }

    /// Sanity-checks ranges; called by the generator.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities or empty populations.
    pub fn validate(&self) {
        assert!(self.num_honest_users > 0, "need honest users");
        assert!(self.num_honest_merchants > 0, "need honest merchants");
        assert!(self.mean_user_degree >= 1.0, "mean degree below 1");
        assert!(self.max_user_degree >= 1);
        for (i, g) in self.fraud_groups.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&g.density),
                "group {i}: density out of range"
            );
            assert!(g.num_users > 0 && g.num_merchants > 0, "group {i}: empty");
        }
        assert!((0.0..=1.0).contains(&self.blacklist_miss_rate));
        assert!((0.0..=1.0).contains(&self.blacklist_false_rate));
        assert!(
            (0.0..=1.0).contains(&self.community_affinity),
            "community affinity out of range"
        );
        assert!(
            self.honest_communities <= self.num_honest_merchants,
            "more communities than merchants"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_include_fraud() {
        let cfg = GeneratorConfig::default();
        assert_eq!(cfg.total_users(), 20_000 + 200 + 6 * 150);
        assert_eq!(cfg.total_merchants(), 8_000 + 6 * 12);
    }

    #[test]
    fn default_validates() {
        GeneratorConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "density out of range")]
    fn bad_density_rejected() {
        let mut cfg = GeneratorConfig::default();
        cfg.fraud_groups[0].density = 1.5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "need honest users")]
    fn zero_users_rejected() {
        let cfg = GeneratorConfig {
            num_honest_users: 0,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn serde_round_trip() {
        let cfg = GeneratorConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GeneratorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
