//! The generated dataset: graph + ground truth.

use ensemfdet_graph::{BipartiteGraph, GraphError, GraphStats};
use std::path::Path;

/// Membership of one planted fraud group, in final graph id space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FraudGroupInfo {
    /// Fraud user ids.
    pub users: Vec<u32>,
    /// Fraud-ring merchant ids.
    pub merchants: Vec<u32>,
    /// Edges inside the block (count, for density diagnostics).
    pub internal_edges: usize,
}

/// A generated transaction graph with planted fraud and an (intentionally
/// imperfect) expert blacklist.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The *who-buys-from-where* graph.
    pub graph: BipartiteGraph,
    /// The evaluation ground truth: user ids the "expert review" blacklisted
    /// (misses some true fraud, includes a few honest accounts).
    pub blacklist: Vec<u32>,
    /// The actual planted fraud users (oracle truth; experiments evaluate
    /// against `blacklist` as the paper does, this is for diagnostics).
    pub true_fraud_users: Vec<u32>,
    /// Merchants belonging to fraud rings.
    pub fraud_merchants: Vec<u32>,
    /// Per-group membership.
    pub groups: Vec<FraudGroupInfo>,
}

impl Dataset {
    /// Boolean blacklist membership per user id — the label vector the
    /// evaluation crate consumes.
    pub fn labels(&self) -> Vec<bool> {
        let mut l = vec![false; self.graph.num_users()];
        for &u in &self.blacklist {
            l[u as usize] = true;
        }
        l
    }

    /// Table I-style summary row: `(users, blacklisted, merchants, edges)`.
    pub fn table1_row(&self) -> (usize, usize, usize, usize) {
        (
            self.graph.num_users(),
            self.blacklist.len(),
            self.graph.num_merchants(),
            self.graph.num_edges(),
        )
    }

    /// Full structural statistics of the graph.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(&self.graph)
    }

    /// Persists the graph and blacklist as `<stem>.edges` / `<stem>.labels`.
    /// Extensions are *appended* (a stem like `run.p0` keeps its suffix).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, stem: impl AsRef<Path>) -> Result<(), GraphError> {
        let stem = stem.as_ref();
        let mut edges = stem.as_os_str().to_owned();
        edges.push(".edges");
        let mut labels = stem.as_os_str().to_owned();
        labels.push(".labels");
        ensemfdet_graph::io::save_edge_list(&self.graph, edges)?;
        ensemfdet_graph::io::save_labels(&self.blacklist, labels)?;
        Ok(())
    }

    /// Loads a dataset persisted by [`Dataset::save`]. Group/oracle
    /// information is not persisted; the loaded dataset carries the
    /// blacklist as both ground truths.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures.
    pub fn load(stem: impl AsRef<Path>) -> Result<Self, GraphError> {
        let stem = stem.as_ref();
        let mut edges = stem.as_os_str().to_owned();
        edges.push(".edges");
        let mut labels = stem.as_os_str().to_owned();
        labels.push(".labels");
        let graph = ensemfdet_graph::io::load_edge_list(edges)?;
        let blacklist = ensemfdet_graph::io::load_labels(labels)?;
        Ok(Dataset {
            graph,
            true_fraud_users: blacklist.clone(),
            blacklist,
            fraud_merchants: Vec::new(),
            groups: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let graph = BipartiteGraph::from_edges(4, 2, vec![(0, 0), (1, 0), (2, 1)]).unwrap();
        Dataset {
            graph,
            blacklist: vec![0, 1],
            true_fraud_users: vec![0, 1],
            fraud_merchants: vec![0],
            groups: vec![FraudGroupInfo {
                users: vec![0, 1],
                merchants: vec![0],
                internal_edges: 2,
            }],
        }
    }

    #[test]
    fn labels_reflect_blacklist() {
        let ds = tiny();
        assert_eq!(ds.labels(), vec![true, true, false, false]);
    }

    #[test]
    fn table1_row_shape() {
        assert_eq!(tiny().table1_row(), (4, 2, 2, 3));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("ensemfdet_datagen_ds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("tiny");
        let ds = tiny();
        ds.save(&stem).unwrap();
        let back = Dataset::load(&stem).unwrap();
        assert_eq!(back.graph.edge_slice(), ds.graph.edge_slice());
        assert_eq!(back.blacklist, ds.blacklist);
        std::fs::remove_dir_all(&dir).ok();
    }
}
