//! Truncated Zipf (power-law) sampling over `0..n`.
//!
//! Merchant popularity and user activity in e-commerce logs are heavy
//! tailed; a cumulative-table sampler with binary search gives exact draws
//! from `P(k) ∝ (k + 1)^{-alpha}` in O(log n) per sample after O(n) setup.

use rand::rngs::StdRng;
use rand::RngExt;

/// Sampler for `P(k) ∝ (k+1)^{-alpha}` over `k ∈ 0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative (unnormalized) mass; `cum[k]` = Σ_{j ≤ k} (j+1)^-α.
    cum: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs a nonempty support");
        assert!(alpha >= 0.0, "alpha must be nonnegative");
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += (k as f64 + 1.0).powf(-alpha);
            cum.push(acc);
        }
        Zipf { cum }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// `true` iff the support is empty (never: the constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draws one rank; rank 0 is the most probable.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cum.last().expect("nonempty support");
        let target = rng.random::<f64>() * total;
        // First index with cum[k] >= target.
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cum.len() - 1),
        }
    }

    /// Exact probability of rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        let total = *self.cum.last().expect("nonempty support");
        let lo = if k == 0 { 0.0 } else { self.cum[k - 1] };
        (self.cum[k] - lo) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(50, 1.2);
        let sum: f64 = (0..50).map(|k| z.probability(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_is_most_probable() {
        let z = Zipf::new(100, 1.0);
        for k in 1..100 {
            assert!(z.probability(0) >= z.probability(k));
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_match_probabilities() {
        let z = Zipf::new(5, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = count as f64 / trials as f64;
            let p = z.probability(k);
            assert!(
                (freq - p).abs() < 0.01,
                "rank {k}: freq {freq:.3} vs p {p:.3}"
            );
        }
    }

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "nonempty support")]
    fn empty_support_panics() {
        Zipf::new(0, 1.0);
    }
}
