//! Multi-period campaign simulation.
//!
//! The paper's motivation for unsupervised graph methods is temporal: each
//! promotion campaign is short, fraud accounts are "not reused after a
//! period of time", and "the features of fraud behaviors change with the
//! different promotional campaigns" — so labels learned in one period go
//! stale in the next. This module generates a sequence of *independent*
//! datasets (fresh account space each period, as Section V-A describes the
//! three JD datasets) whose fraud behaviour drifts period over period:
//! rings get sparser and camouflage heavier as fraudsters adapt.

use crate::config::GeneratorConfig;
use crate::dataset::Dataset;
use crate::generator::generate;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Drift applied to every fraud group per period step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BehaviorDrift {
    /// Multiplier on in-ring density each period (< 1: rings thin out).
    pub density_factor: f64,
    /// Additional camouflage edges per fraud user each period.
    pub camouflage_step: usize,
}

impl Default for BehaviorDrift {
    fn default() -> Self {
        BehaviorDrift {
            density_factor: 0.85,
            camouflage_step: 1,
        }
    }
}

/// Configuration of a campaign timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// The first period's recipe; later periods derive from it.
    pub base: GeneratorConfig,
    /// Number of periods to generate.
    pub periods: usize,
    /// Per-period drift of fraud behaviour.
    pub drift: BehaviorDrift,
}

/// Generates the per-period datasets. Each period gets a derived seed, so
/// account populations are fresh and independent (fraud accounts are never
/// reused across periods), while honest-traffic statistics stay identical.
///
/// # Panics
///
/// Panics if `periods == 0` or the base config is invalid.
pub fn generate_timeline(cfg: &TimelineConfig) -> Vec<Dataset> {
    assert!(cfg.periods > 0, "need at least one period");
    (0..cfg.periods)
        .map(|p| generate(&period_config(cfg, p)))
        .collect()
}

/// The derived recipe for period `p` (0-based).
pub fn period_config(cfg: &TimelineConfig, p: usize) -> GeneratorConfig {
    let mut derived = cfg.base.clone();
    derived.seed = cfg
        .base
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(p as u64 + 1);
    let density_scale = cfg.drift.density_factor.powi(p as i32);
    for g in &mut derived.fraud_groups {
        g.density = (g.density * density_scale).max(0.05);
        g.camouflage_per_user += cfg.drift.camouflage_step * p;
    }
    derived
}

/// One dataset split into an ingest sequence: a base batch followed by
/// per-epoch batches of fraud-ring edges ramping in.
///
/// This is the continuous-monitoring scenario the incremental scan path
/// (`ScanRunner::run_incremental` in the core crate) is benchmarked on.
/// The base batch carries *all* honest traffic plus every fraud account's
/// camouflage purchases and the rings' honest background — so every user
/// and merchant of the final graph is already registered at epoch 0, and
/// later batches only add edges between existing nodes. That keeps the
/// graph dimensions fixed across the ramp, which is what lets the
/// sampling layer prove most cached samples untouched epoch over epoch:
/// a delta that grew the node population would dirty every node-subset
/// sample at once. It is also the realistic shape of a campaign — fraud
/// accounts build honest-looking cover before the ring lights up.
#[derive(Clone, Debug)]
pub struct IngestTimeline {
    /// Epoch-0 batch: honest traffic, camouflage, ring background, and
    /// one registration purchase for any node nothing else covers.
    pub base: Vec<(u32, u32)>,
    /// Per-epoch batches of in-ring edges, disjoint from `base` and each
    /// other; batch sizes grow linearly (the campaign accelerates).
    pub epochs: Vec<Vec<(u32, u32)>>,
    /// The full dataset all batches union to — the ground truth for the
    /// final epoch.
    pub dataset: Dataset,
}

/// Splits one generated dataset into the [`IngestTimeline`] ingest
/// sequence: ring-internal edges ramp in over `epochs` batches, all other
/// edges form the base batch.
///
/// Deterministic for a given `(config, epochs)`. The union of all batches
/// is exactly the dataset's edge set, with no duplicates across batches.
///
/// # Panics
///
/// Panics if `epochs == 0` or the config is invalid.
pub fn ramp_timeline(cfg: &GeneratorConfig, epochs: usize) -> IngestTimeline {
    assert!(epochs > 0, "need at least one ramp epoch");
    let dataset = generate(cfg);

    let fraud_users: HashSet<u32> = dataset.true_fraud_users.iter().copied().collect();
    let ring_merchants: HashSet<u32> = dataset.fraud_merchants.iter().copied().collect();
    let mut base = Vec::new();
    let mut ring = Vec::new();
    for &(u, v) in dataset.graph.edge_slice() {
        if fraud_users.contains(&u) && ring_merchants.contains(&v) {
            ring.push((u, v));
        } else {
            base.push((u, v));
        }
    }

    // Registration pass: any node only the ring ever touches (e.g. a ring
    // merchant with no honest background) gets its first ring edge moved
    // into the base batch, so later batches never grow the dimensions.
    let mut seen_users: HashSet<u32> = base.iter().map(|e| e.0).collect();
    let mut seen_merchants: HashSet<u32> = base.iter().map(|e| e.1).collect();
    ring.retain(|&(u, v)| {
        if seen_users.contains(&u) && seen_merchants.contains(&v) {
            true
        } else {
            seen_users.insert(u);
            seen_merchants.insert(v);
            base.push((u, v));
            false
        }
    });

    // Linear ramp: epoch e (1-based) gets weight e of the remaining ring
    // edges, so the campaign's per-epoch footprint grows over time.
    let total_weight: usize = (1..=epochs).sum();
    let mut batches = Vec::with_capacity(epochs);
    let mut offset = 0;
    for e in 1..=epochs {
        let take = if e == epochs {
            ring.len() - offset
        } else {
            ring.len() * e / total_weight
        };
        batches.push(ring[offset..offset + take].to_vec());
        offset += take;
    }

    IngestTimeline {
        base,
        epochs: batches,
        dataset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CamouflageTargeting, FraudGroupConfig};

    fn base() -> GeneratorConfig {
        GeneratorConfig {
            num_honest_users: 1_500,
            num_honest_merchants: 400,
            diffuse_fraud_users: 10,
            fraud_groups: vec![FraudGroupConfig {
                num_users: 40,
                num_merchants: 8,
                density: 0.8,
                camouflage_per_user: 1,
                camouflage: CamouflageTargeting::PopularityBiased,
            }],
            seed: 5,
            ..Default::default()
        }
    }

    fn timeline() -> TimelineConfig {
        TimelineConfig {
            base: base(),
            periods: 4,
            drift: BehaviorDrift::default(),
        }
    }

    #[test]
    fn periods_are_independent_datasets() {
        let periods = generate_timeline(&timeline());
        assert_eq!(periods.len(), 4);
        for w in periods.windows(2) {
            assert_ne!(
                w[0].graph.edge_slice(),
                w[1].graph.edge_slice(),
                "periods must differ"
            );
        }
    }

    #[test]
    fn drift_thins_rings_and_grows_camouflage() {
        let cfg = timeline();
        let p0 = period_config(&cfg, 0);
        let p3 = period_config(&cfg, 3);
        assert!(p3.fraud_groups[0].density < p0.fraud_groups[0].density);
        assert_eq!(
            p3.fraud_groups[0].camouflage_per_user,
            p0.fraud_groups[0].camouflage_per_user + 3
        );
        // Observable: period-3 groups are measurably sparser.
        let ds0 = generate(&p0);
        let ds3 = generate(&p3);
        let dens = |d: &Dataset| {
            let g = &d.groups[0];
            g.internal_edges as f64 / (g.users.len() * g.merchants.len()) as f64
        };
        assert!(dens(&ds3) < dens(&ds0));
    }

    #[test]
    fn density_floor_holds() {
        let mut cfg = timeline();
        cfg.drift.density_factor = 0.01;
        let p = period_config(&cfg, 5);
        assert!(p.fraud_groups[0].density >= 0.05);
    }

    #[test]
    fn deterministic_per_period() {
        let cfg = timeline();
        let a = generate_timeline(&cfg);
        let b = generate_timeline(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph.edge_slice(), y.graph.edge_slice());
            assert_eq!(x.blacklist, y.blacklist);
        }
    }

    #[test]
    fn ramp_batches_partition_the_dataset() {
        let tl = ramp_timeline(&base(), 4);
        assert_eq!(tl.epochs.len(), 4);
        let mut all: Vec<(u32, u32)> = tl.base.clone();
        for batch in &tl.epochs {
            all.extend_from_slice(batch);
        }
        all.sort_unstable();
        let mut expected: Vec<(u32, u32)> = tl.dataset.graph.edge_slice().to_vec();
        expected.sort_unstable();
        assert_eq!(all, expected, "batches must partition the edge set exactly");
    }

    #[test]
    fn ramp_never_grows_the_dimensions() {
        let tl = ramp_timeline(&base(), 3);
        let users: std::collections::HashSet<u32> = tl.base.iter().map(|e| e.0).collect();
        let merchants: std::collections::HashSet<u32> = tl.base.iter().map(|e| e.1).collect();
        for batch in &tl.epochs {
            for &(u, v) in batch {
                assert!(users.contains(&u), "user {u} not registered in base");
                assert!(merchants.contains(&v), "merchant {v} not registered in base");
            }
        }
    }

    #[test]
    fn ramp_accelerates_and_is_deterministic() {
        let tl = ramp_timeline(&base(), 4);
        // Linear ramp: later epochs carry at least as many edges.
        for w in tl.epochs.windows(2) {
            assert!(w[0].len() <= w[1].len(), "ramp must not shrink");
        }
        assert!(tl.epochs.iter().all(|b| !b.is_empty()), "ring is large enough");
        let again = ramp_timeline(&base(), 4);
        assert_eq!(tl.base, again.base);
        assert_eq!(tl.epochs, again.epochs);
    }

    #[test]
    #[should_panic(expected = "at least one ramp epoch")]
    fn zero_ramp_epochs_rejected() {
        ramp_timeline(&base(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_periods_rejected() {
        generate_timeline(&TimelineConfig {
            base: base(),
            periods: 0,
            drift: BehaviorDrift::default(),
        });
    }
}
