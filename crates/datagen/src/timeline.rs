//! Multi-period campaign simulation.
//!
//! The paper's motivation for unsupervised graph methods is temporal: each
//! promotion campaign is short, fraud accounts are "not reused after a
//! period of time", and "the features of fraud behaviors change with the
//! different promotional campaigns" — so labels learned in one period go
//! stale in the next. This module generates a sequence of *independent*
//! datasets (fresh account space each period, as Section V-A describes the
//! three JD datasets) whose fraud behaviour drifts period over period:
//! rings get sparser and camouflage heavier as fraudsters adapt.

use crate::config::GeneratorConfig;
use crate::dataset::Dataset;
use crate::generator::generate;
use serde::{Deserialize, Serialize};

/// Drift applied to every fraud group per period step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BehaviorDrift {
    /// Multiplier on in-ring density each period (< 1: rings thin out).
    pub density_factor: f64,
    /// Additional camouflage edges per fraud user each period.
    pub camouflage_step: usize,
}

impl Default for BehaviorDrift {
    fn default() -> Self {
        BehaviorDrift {
            density_factor: 0.85,
            camouflage_step: 1,
        }
    }
}

/// Configuration of a campaign timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// The first period's recipe; later periods derive from it.
    pub base: GeneratorConfig,
    /// Number of periods to generate.
    pub periods: usize,
    /// Per-period drift of fraud behaviour.
    pub drift: BehaviorDrift,
}

/// Generates the per-period datasets. Each period gets a derived seed, so
/// account populations are fresh and independent (fraud accounts are never
/// reused across periods), while honest-traffic statistics stay identical.
///
/// # Panics
///
/// Panics if `periods == 0` or the base config is invalid.
pub fn generate_timeline(cfg: &TimelineConfig) -> Vec<Dataset> {
    assert!(cfg.periods > 0, "need at least one period");
    (0..cfg.periods)
        .map(|p| generate(&period_config(cfg, p)))
        .collect()
}

/// The derived recipe for period `p` (0-based).
pub fn period_config(cfg: &TimelineConfig, p: usize) -> GeneratorConfig {
    let mut derived = cfg.base.clone();
    derived.seed = cfg
        .base
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(p as u64 + 1);
    let density_scale = cfg.drift.density_factor.powi(p as i32);
    for g in &mut derived.fraud_groups {
        g.density = (g.density * density_scale).max(0.05);
        g.camouflage_per_user += cfg.drift.camouflage_step * p;
    }
    derived
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CamouflageTargeting, FraudGroupConfig};

    fn base() -> GeneratorConfig {
        GeneratorConfig {
            num_honest_users: 1_500,
            num_honest_merchants: 400,
            diffuse_fraud_users: 10,
            fraud_groups: vec![FraudGroupConfig {
                num_users: 40,
                num_merchants: 8,
                density: 0.8,
                camouflage_per_user: 1,
                camouflage: CamouflageTargeting::PopularityBiased,
            }],
            seed: 5,
            ..Default::default()
        }
    }

    fn timeline() -> TimelineConfig {
        TimelineConfig {
            base: base(),
            periods: 4,
            drift: BehaviorDrift::default(),
        }
    }

    #[test]
    fn periods_are_independent_datasets() {
        let periods = generate_timeline(&timeline());
        assert_eq!(periods.len(), 4);
        for w in periods.windows(2) {
            assert_ne!(
                w[0].graph.edge_slice(),
                w[1].graph.edge_slice(),
                "periods must differ"
            );
        }
    }

    #[test]
    fn drift_thins_rings_and_grows_camouflage() {
        let cfg = timeline();
        let p0 = period_config(&cfg, 0);
        let p3 = period_config(&cfg, 3);
        assert!(p3.fraud_groups[0].density < p0.fraud_groups[0].density);
        assert_eq!(
            p3.fraud_groups[0].camouflage_per_user,
            p0.fraud_groups[0].camouflage_per_user + 3
        );
        // Observable: period-3 groups are measurably sparser.
        let ds0 = generate(&p0);
        let ds3 = generate(&p3);
        let dens = |d: &Dataset| {
            let g = &d.groups[0];
            g.internal_edges as f64 / (g.users.len() * g.merchants.len()) as f64
        };
        assert!(dens(&ds3) < dens(&ds0));
    }

    #[test]
    fn density_floor_holds() {
        let mut cfg = timeline();
        cfg.drift.density_factor = 0.01;
        let p = period_config(&cfg, 5);
        assert!(p.fraud_groups[0].density >= 0.05);
    }

    #[test]
    fn deterministic_per_period() {
        let cfg = timeline();
        let a = generate_timeline(&cfg);
        let b = generate_timeline(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph.edge_slice(), y.graph.edge_slice());
            assert_eq!(x.blacklist, y.blacklist);
        }
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_periods_rejected() {
        generate_timeline(&TimelineConfig {
            base: base(),
            periods: 0,
            drift: BehaviorDrift::default(),
        });
    }
}
