//! The dataset generator.
//!
//! Layout of the generated id spaces: honest users occupy
//! `0..num_honest_users`, then each fraud group's users consecutively;
//! likewise honest merchants first, then fraud-ring merchants. (Detection
//! algorithms never see ids as features, so the layout is harmless — and it
//! makes ground-truth bookkeeping trivial and the generator testable.)

use crate::config::GeneratorConfig;
use crate::dataset::{Dataset, FraudGroupInfo};
use crate::zipf::Zipf;
use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a dataset from a recipe. Deterministic in the config (the seed
/// is part of it).
///
/// # Panics
///
/// Panics if the configuration fails [`GeneratorConfig::validate`].
pub fn generate(cfg: &GeneratorConfig) -> Dataset {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let total_users = cfg.total_users();
    let total_merchants = cfg.total_merchants();
    let mut builder = GraphBuilder::with_min_sizes(total_users, total_merchants);

    // --- Background traffic -------------------------------------------------
    // Honest user degrees: 1 + Zipf-activity scaled so the mean lands near
    // `mean_user_degree`; merchant choice follows the popularity law.
    let popularity = Zipf::new(cfg.num_honest_merchants, cfg.merchant_popularity_alpha);
    let activity = Zipf::new(cfg.max_user_degree, cfg.user_activity_alpha);
    // Expected value of the activity law, to calibrate the scale.
    let activity_mean: f64 = (0..cfg.max_user_degree)
        .map(|k| k as f64 * activity.probability(k))
        .sum();
    let extra_mean = (cfg.mean_user_degree - 1.0).max(0.0);
    // Accept each activity draw with probability `keep` so that the final
    // mean of the extra degree is `extra_mean` even when the law's own mean
    // exceeds it; if the law's mean is below target, add deterministic
    // extra draws.
    let ratio = if activity_mean > 0.0 {
        extra_mean / activity_mean
    } else {
        0.0
    };

    // Community structure (optional): merchants are sliced into
    // `honest_communities` contiguous ranges; each honest user mostly shops
    // inside its own slice via a community-local popularity law.
    let communities = cfg.honest_communities;
    let community_popularity = cfg.num_honest_merchants.checked_div(communities).map(|s| {
        let slice = s.max(1);
        (slice, Zipf::new(slice, cfg.merchant_popularity_alpha))
    });

    for u in 0..cfg.num_honest_users as u32 {
        let mut extra = 0usize;
        let mut budget = ratio;
        while budget >= 1.0 {
            extra += activity.sample(&mut rng);
            budget -= 1.0;
        }
        if budget > 0.0 && rng.random::<f64>() < budget {
            extra += activity.sample(&mut rng);
        }
        let degree = (1 + extra).min(cfg.max_user_degree);
        let home = if communities > 0 {
            (u as usize) % communities
        } else {
            0
        };
        for _ in 0..degree {
            let v = match &community_popularity {
                Some((slice, local)) if rng.random::<f64>() < cfg.community_affinity => {
                    let offset = home * slice;
                    ((offset + local.sample(&mut rng)) % cfg.num_honest_merchants) as u32
                }
                _ => popularity.sample(&mut rng) as u32,
            };
            builder.add_edge(UserId(u), MerchantId(v));
        }
    }

    // --- Fraud groups --------------------------------------------------------
    let mut next_user = cfg.num_honest_users as u32;
    let mut next_merchant = cfg.num_honest_merchants as u32;
    let mut groups = Vec::with_capacity(cfg.fraud_groups.len());
    let mut true_fraud_users = Vec::new();
    let mut fraud_merchants = Vec::new();

    for gcfg in &cfg.fraud_groups {
        let users: Vec<u32> = (next_user..next_user + gcfg.num_users as u32).collect();
        let merchants: Vec<u32> =
            (next_merchant..next_merchant + gcfg.num_merchants as u32).collect();
        next_user += gcfg.num_users as u32;
        next_merchant += gcfg.num_merchants as u32;

        let mut internal_edges = 0usize;
        for &u in &users {
            let mut hit_any = false;
            for &v in &merchants {
                if rng.random::<f64>() < gcfg.density {
                    builder.add_edge(UserId(u), MerchantId(v));
                    internal_edges += 1;
                    hit_any = true;
                }
            }
            if !hit_any {
                // A fraud account always hits at least one ring merchant —
                // it exists for the campaign.
                let v = merchants[rng.random_range(0..merchants.len())];
                builder.add_edge(UserId(u), MerchantId(v));
                internal_edges += 1;
            }
            // Camouflage: purchases at honest merchants, targeted per the
            // group's strategy.
            for _ in 0..gcfg.camouflage_per_user {
                let v = match gcfg.camouflage {
                    crate::config::CamouflageTargeting::UniformRandom => {
                        rng.random_range(0..cfg.num_honest_merchants) as u32
                    }
                    crate::config::CamouflageTargeting::PopularityBiased => {
                        popularity.sample(&mut rng) as u32
                    }
                };
                builder.add_edge(UserId(u), MerchantId(v));
            }
        }

        true_fraud_users.extend_from_slice(&users);
        fraud_merchants.extend_from_slice(&merchants);
        groups.push(FraudGroupInfo {
            users,
            merchants,
            internal_edges,
        });
    }

    // Abused stores are real stores: honest customers shop there too, which
    // is what keeps the detected blocks from being perfectly separable.
    for &v in &fraud_merchants {
        for _ in 0..cfg.ring_background_per_merchant {
            let u = rng.random_range(0..cfg.num_honest_users) as u32;
            builder.add_edge(UserId(u), MerchantId(v));
        }
    }

    // Diffuse fraud: blacklisted accounts whose purchase behaviour is
    // indistinguishable from the honest background — off-graph fraud that
    // caps every graph method's recall.
    for i in 0..cfg.diffuse_fraud_users {
        let u = next_user + i as u32;
        let degree = 1 + activity.sample(&mut rng).min(3);
        for _ in 0..degree {
            let v = popularity.sample(&mut rng) as u32;
            builder.add_edge(UserId(u), MerchantId(v));
        }
        true_fraud_users.push(u);
    }

    // --- Expert blacklist (noisy ground truth) ------------------------------
    let mut blacklist: Vec<u32> = true_fraud_users
        .iter()
        .copied()
        .filter(|_| rng.random::<f64>() >= cfg.blacklist_miss_rate)
        .collect();
    for u in 0..cfg.num_honest_users as u32 {
        if rng.random::<f64>() < cfg.blacklist_false_rate {
            blacklist.push(u);
        }
    }
    blacklist.sort_unstable();

    // Duplicate purchases collapse to simple edges: the paper's graphs are
    // unweighted purchase-relationship graphs.
    let graph = builder.build_with(ensemfdet_graph::builder::DuplicatePolicy::MergeBinary);

    Dataset {
        graph,
        blacklist,
        true_fraud_users,
        fraud_merchants,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CamouflageTargeting, FraudGroupConfig};

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig {
            num_honest_users: 2_000,
            num_honest_merchants: 600,
            mean_user_degree: 2.0,
            max_user_degree: 30,
            fraud_groups: vec![
                FraudGroupConfig {
                    num_users: 40,
                    num_merchants: 6,
                    density: 0.7,
                    camouflage_per_user: 2,
                    camouflage: CamouflageTargeting::PopularityBiased,
                },
                FraudGroupConfig {
                    num_users: 25,
                    num_merchants: 4,
                    density: 0.8,
                    camouflage_per_user: 1,
                    camouflage: CamouflageTargeting::PopularityBiased,
                },
            ],
            seed: 99,
            diffuse_fraud_users: 15,
            ..Default::default()
        }
    }

    #[test]
    fn shape_matches_config() {
        let cfg = small_cfg();
        let ds = generate(&cfg);
        assert_eq!(ds.graph.num_users(), cfg.total_users());
        assert_eq!(ds.graph.num_merchants(), cfg.total_merchants());
        assert_eq!(ds.groups.len(), 2);
        assert_eq!(ds.true_fraud_users.len(), 65 + 15);
        assert_eq!(ds.fraud_merchants.len(), 10);
    }

    #[test]
    fn diffuse_fraud_users_look_honest() {
        let cfg = small_cfg();
        let ds = generate(&cfg);
        // Diffuse fraud occupies the tail of the user id space with low
        // degree and no ring edges.
        let diffuse_start = (cfg.total_users() - cfg.diffuse_fraud_users) as u32;
        let ring: std::collections::HashSet<u32> = ds.fraud_merchants.iter().copied().collect();
        for u in diffuse_start..cfg.total_users() as u32 {
            assert!(ds.true_fraud_users.contains(&u));
            assert!(ds.graph.user_degree(UserId(u)) <= 8);
            for (v, _, _) in ds.graph.merchants_of(UserId(u)) {
                assert!(!ring.contains(&v.0), "diffuse user {u} touched a ring");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = small_cfg();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.graph.edge_slice(), b.graph.edge_slice());
        assert_eq!(a.blacklist, b.blacklist);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 100;
        let c = generate(&cfg2);
        assert_ne!(a.graph.edge_slice(), c.graph.edge_slice());
    }

    #[test]
    fn mean_degree_is_calibrated() {
        let ds = generate(&small_cfg());
        // Honest users only: degree mean should be near the target. Use the
        // pre-dedup expectation loosely (dedup can only reduce).
        let mut total = 0usize;
        for u in 0..2_000u32 {
            total += ds.graph.user_degree(UserId(u));
        }
        let mean = total as f64 / 2_000.0;
        assert!(
            (1.2..=2.5).contains(&mean),
            "honest mean degree {mean} not near 2.0"
        );
    }

    #[test]
    fn fraud_blocks_are_dense() {
        let ds = generate(&small_cfg());
        for g in &ds.groups {
            let possible = g.users.len() * g.merchants.len();
            let density = g.internal_edges as f64 / possible as f64;
            assert!(density > 0.5, "group density {density}");
            // Every fraud user touches the ring.
            for &u in &g.users {
                let deg = ds.graph.user_degree(UserId(u));
                assert!(deg >= 1);
            }
        }
    }

    #[test]
    fn merchant_popularity_is_heavy_tailed() {
        let ds = generate(&small_cfg());
        let mut degs: Vec<usize> = (0..600)
            .map(|v| ds.graph.merchant_degree(MerchantId(v)))
            .collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = degs[..10].iter().sum();
        let total: usize = degs.iter().sum();
        assert!(
            top10 as f64 > 0.2 * total as f64,
            "top-10 merchants hold only {top10}/{total} honest edges"
        );
    }

    #[test]
    fn blacklist_has_misses_and_false_positives() {
        let mut cfg = small_cfg();
        cfg.blacklist_miss_rate = 0.2;
        cfg.blacklist_false_rate = 0.01;
        let ds = generate(&cfg);
        let fraud: std::collections::HashSet<u32> =
            ds.true_fraud_users.iter().copied().collect();
        let listed: std::collections::HashSet<u32> = ds.blacklist.iter().copied().collect();
        let missed = fraud.difference(&listed).count();
        let false_pos = listed.difference(&fraud).count();
        assert!(missed > 0, "no fraud user was missed at 20% miss rate");
        assert!(false_pos > 0, "no honest user blacklisted at 1% rate");
    }

    #[test]
    fn zero_noise_blacklist_is_exact() {
        let mut cfg = small_cfg();
        cfg.blacklist_miss_rate = 0.0;
        cfg.blacklist_false_rate = 0.0;
        let ds = generate(&cfg);
        let mut fraud = ds.true_fraud_users.clone();
        fraud.sort_unstable();
        assert_eq!(ds.blacklist, fraud);
    }

    #[test]
    fn communities_localize_honest_traffic() {
        let mut cfg = small_cfg();
        cfg.honest_communities = 6;
        cfg.community_affinity = 0.9;
        let ds = generate(&cfg);
        // A user's modal merchant slice should be its home slice: check
        // that in-community edges dominate for a sample of users.
        let slice = 600 / 6;
        let mut in_home = 0usize;
        let mut total = 0usize;
        for u in 0..500u32 {
            let home = (u as usize) % 6;
            for (v, _, _) in ds.graph.merchants_of(UserId(u)) {
                let m = v.0 as usize;
                if m < 600 {
                    total += 1;
                    if m / slice == home {
                        in_home += 1;
                    }
                }
            }
        }
        let frac = in_home as f64 / total.max(1) as f64;
        assert!(frac > 0.7, "in-community fraction {frac:.2}");
        // Disabled communities → near-uniform slice membership.
        let ds0 = generate(&small_cfg());
        let mut in_home0 = 0usize;
        let mut total0 = 0usize;
        for u in 0..500u32 {
            let home = (u as usize) % 6;
            for (v, _, _) in ds0.graph.merchants_of(UserId(u)) {
                let m = v.0 as usize;
                if m < 600 {
                    total0 += 1;
                    if m / slice == home {
                        in_home0 += 1;
                    }
                }
            }
        }
        let frac0 = in_home0 as f64 / total0.max(1) as f64;
        assert!(frac0 < 0.4, "baseline in-community fraction {frac0:.2}");
    }

    #[test]
    fn uniform_camouflage_spreads_targets() {
        let mut cfg = small_cfg();
        for g in &mut cfg.fraud_groups {
            g.camouflage = CamouflageTargeting::UniformRandom;
            g.camouflage_per_user = 4;
        }
        let ds = generate(&cfg);
        let mut cfg_pop = small_cfg();
        for g in &mut cfg_pop.fraud_groups {
            g.camouflage = CamouflageTargeting::PopularityBiased;
            g.camouflage_per_user = 4;
        }
        let ds_pop = generate(&cfg_pop);
        // Biased camouflage concentrates on the busiest honest merchants;
        // compare the top-10 merchants' total degree between the variants.
        let top10_edges = |d: &crate::Dataset| -> usize {
            let mut degs: Vec<usize> = (0..600)
                .map(|v| d.graph.merchant_degree(MerchantId(v)))
                .collect();
            degs.sort_unstable_by(|a, b| b.cmp(a));
            degs[..10].iter().sum()
        };
        assert!(
            top10_edges(&ds_pop) > top10_edges(&ds),
            "biased camouflage should concentrate on popular merchants"
        );
    }

    #[test]
    fn graph_is_simple_after_dedup() {
        let ds = generate(&small_cfg());
        let mut seen = std::collections::HashSet::new();
        for &e in ds.graph.edge_slice() {
            assert!(seen.insert(e), "duplicate edge {e:?}");
        }
        assert!(!ds.graph.is_weighted());
    }
}
