#![warn(missing_docs)]

//! Synthetic *who-buys-from-where* transaction graphs with planted fraud.
//!
//! The paper evaluates on three proprietary JD.com PIN–Merchant graphs with
//! expert blacklists (Table I). Those cannot be redistributed, so this crate
//! generates graphs that reproduce the structural properties every method
//! under test keys on:
//!
//! - **heavy-tailed background**: honest users make few purchases; merchant
//!   popularity follows a (truncated) Zipf law, so a handful of merchants
//!   absorb a large share of honest traffic — the camouflage targets;
//! - **planted fraud groups**: disjoint near-complete bipartite blocks
//!   (`synchronized behavior`), each a group of accounts hammering a small
//!   merchant ring within a campaign window;
//! - **camouflage**: fraud accounts also buy from popular honest merchants,
//!   the attack Fraudar's log-weighted metric is designed to survive;
//! - **label noise**: the expert blacklist misses a fraction of fraud
//!   accounts and wrongly lists a few honest ones, putting a realistic
//!   ceiling on measurable precision/recall (the paper notes appeal-driven
//!   blacklist churn).
//!
//! [`presets`] mirrors Table I's node/edge/fraud *ratios* at a configurable
//! scale factor.
//!
//! ```
//! use ensemfdet_datagen::{presets, generate};
//!
//! let cfg = presets::jd_preset(presets::JdDataset::Jd1, 200, 7);
//! let ds = generate(&cfg);
//! assert!(ds.graph.num_edges() > 1000);
//! assert!(!ds.blacklist.is_empty());
//! ```

pub mod config;
pub mod dataset;
pub mod generator;
pub mod presets;
pub mod timeline;
pub mod translog;
pub mod zipf;

pub use config::{CamouflageTargeting, FraudGroupConfig, GeneratorConfig};
pub use dataset::Dataset;
pub use generator::generate;
pub use timeline::{
    generate_timeline, ramp_timeline, BehaviorDrift, IngestTimeline, TimelineConfig,
};
pub use translog::{
    save_transaction_log, transaction_log_string, write_transaction_log, LogSummary,
    TransactionLogConfig,
};
