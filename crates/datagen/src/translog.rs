//! Delimited transaction-log emission.
//!
//! The bulk loader and the service's `text/csv` ingest consume raw
//! `user,merchant[,amount]` logs, not edge lists — this module turns a
//! generated [`Dataset`] back into that wire format so benchmarks and
//! smoke tests exercise the real ingestion path end to end.
//!
//! Each graph edge becomes one or more log records (duplicates are what
//! the loader's amount-summing aggregation exists for), with amounts
//! drawn from separate honest/fraud distributions: fraud rings fire many
//! small near-identical charges, honest traffic spreads wide. Emission is
//! deterministic in the seed, and records are written in a shuffled
//! interleaved order — a real log is not grouped by account.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::{self, Write};

/// Knobs for [`write_transaction_log`].
#[derive(Clone, Copy, Debug)]
pub struct TransactionLogConfig {
    /// RNG seed; identical seeds emit byte-identical logs.
    pub seed: u64,
    /// Extra duplicate records per edge are drawn as `Geometric(p)` with
    /// `p = 1 / (1 + mean_repeats)`: `0.0` emits exactly one record per
    /// edge, `1.0` averages two.
    pub mean_repeats: f64,
    /// Honest charge amounts: uniform in this `(low, high)` range.
    pub honest_amount: (f64, f64),
    /// Fraud-ring charge amounts: uniform in this `(low, high)` range
    /// (typically tight and low — card-testing style).
    pub fraud_amount: (f64, f64),
    /// Emit every `comment_every`-th line as a `#` comment noise line
    /// (`0` disables); exercises the loader's skip paths at scale.
    pub comment_every: usize,
}

impl Default for TransactionLogConfig {
    fn default() -> Self {
        TransactionLogConfig {
            seed: 42,
            mean_repeats: 0.5,
            honest_amount: (1.0, 250.0),
            fraud_amount: (0.5, 10.0),
            comment_every: 0,
        }
    }
}

/// What [`write_transaction_log`] emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogSummary {
    /// Data records written (one per line, comments/blanks excluded).
    pub records: usize,
    /// Distinct `(user, merchant)` pairs — the edge count the loader must
    /// reproduce after amount-summing duplicates.
    pub distinct_pairs: usize,
}

/// Stable account key for user `u` — the string id space of the log.
pub fn user_key(u: u32) -> String {
    format!("pin-{u:07}")
}

/// Stable merchant key for merchant `v`.
pub fn merchant_key(v: u32) -> String {
    format!("shop-{v:06}")
}

/// Writes `ds` as a `user,merchant,amount` CSV log to `w`.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_transaction_log(
    ds: &Dataset,
    cfg: &TransactionLogConfig,
    w: &mut impl Write,
) -> io::Result<LogSummary> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut fraud = vec![false; ds.graph.num_users()];
    for &u in &ds.true_fraud_users {
        fraud[u as usize] = true;
    }

    // One index per record, duplicates included, then a Fisher–Yates
    // shuffle so the log interleaves accounts like a real capture.
    let pairs: &[(u32, u32)] = ds.graph.edge_pairs();
    let dup_p = 1.0 / (1.0 + cfg.mean_repeats.max(0.0));
    let mut order: Vec<u32> = Vec::with_capacity(pairs.len() * 2);
    for i in 0..pairs.len() as u32 {
        order.push(i);
        while cfg.mean_repeats > 0.0 && rng.random::<f64>() >= dup_p {
            order.push(i);
        }
    }
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..i + 1));
    }

    let mut out = io::BufWriter::new(w);
    let mut records = 0usize;
    for &i in &order {
        if cfg.comment_every > 0 && records.is_multiple_of(cfg.comment_every) {
            writeln!(out, "# batch marker {records}")?;
        }
        let (u, v) = pairs[i as usize];
        let (low, high) = if fraud[u as usize] {
            cfg.fraud_amount
        } else {
            cfg.honest_amount
        };
        // Two decimals, like a currency column.
        let amount = (low + (high - low) * rng.random::<f64>() * 100.0).round() / 100.0;
        writeln!(out, "{},{},{amount}", user_key(u), merchant_key(v))?;
        records += 1;
    }
    out.flush()?;
    Ok(LogSummary {
        records,
        distinct_pairs: pairs.len(),
    })
}

/// [`write_transaction_log`] into an owned string.
pub fn transaction_log_string(ds: &Dataset, cfg: &TransactionLogConfig) -> (String, LogSummary) {
    let mut buf = Vec::new();
    let summary = write_transaction_log(ds, cfg, &mut buf).expect("infallible Vec write");
    (String::from_utf8(buf).expect("ascii log"), summary)
}

/// Writes the log to a file path.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_transaction_log(
    ds: &Dataset,
    cfg: &TransactionLogConfig,
    path: impl AsRef<std::path::Path>,
) -> io::Result<LogSummary> {
    let mut f = std::fs::File::create(path)?;
    write_transaction_log(ds, cfg, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{jd_preset, JdDataset};

    fn small_ds() -> Dataset {
        crate::generate(&jd_preset(JdDataset::Jd1, 200, 7))
    }

    #[test]
    fn log_is_deterministic_in_the_seed() {
        let ds = small_ds();
        let cfg = TransactionLogConfig::default();
        let (a, sa) = transaction_log_string(&ds, &cfg);
        let (b, sb) = transaction_log_string(&ds, &cfg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = transaction_log_string(
            &ds,
            &TransactionLogConfig {
                seed: 43,
                ..cfg
            },
        );
        assert_ne!(a, c, "different seeds must shuffle differently");
    }

    #[test]
    fn every_edge_appears_and_duplicates_inflate_records() {
        let ds = small_ds();
        let cfg = TransactionLogConfig {
            mean_repeats: 1.0,
            comment_every: 50,
            ..Default::default()
        };
        let (log, summary) = transaction_log_string(&ds, &cfg);
        assert_eq!(summary.distinct_pairs, ds.graph.num_edges());
        assert!(
            summary.records > summary.distinct_pairs,
            "mean_repeats=1.0 should emit duplicates"
        );
        let data_lines = log.lines().filter(|l| !l.starts_with('#')).count();
        let comment_lines = log.lines().filter(|l| l.starts_with('#')).count();
        assert_eq!(data_lines, summary.records);
        assert!(comment_lines > 0);
        // Every record is a well-formed three-field row with a positive
        // parseable amount.
        for line in log.lines().filter(|l| !l.starts_with('#')) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 3, "{line}");
            assert!(fields[0].starts_with("pin-"), "{line}");
            assert!(fields[1].starts_with("shop-"), "{line}");
            let amount: f64 = fields[2].parse().unwrap();
            assert!(amount > 0.0, "{line}");
        }
    }

    #[test]
    fn loader_round_trips_the_log_to_the_same_graph() {
        let ds = small_ds();
        let cfg = TransactionLogConfig {
            mean_repeats: 0.7,
            ..Default::default()
        };
        let (log, summary) = transaction_log_string(&ds, &cfg);
        let loaded = ensemfdet_graph::load_transactions(
            log.as_bytes(),
            &ensemfdet_graph::LoadOptions::default(),
        )
        .unwrap();
        assert_eq!(loaded.records, summary.records);
        assert_eq!(loaded.graph.num_edges(), summary.distinct_pairs);
        // Only nodes with at least one edge can appear in a transaction
        // log — the generator leaves some Zipf-tail merchants isolated.
        let active = |degs: Vec<usize>| degs.iter().filter(|&&d| d > 0).count();
        assert_eq!(loaded.graph.num_users(), active(ds.graph.user_degrees()));
        assert_eq!(
            loaded.graph.num_merchants(),
            active(ds.graph.merchant_degrees())
        );
        // Key ids assign in order of first appearance in the shuffled log,
        // so compare structure via degree multisets rather than raw ids.
        let mut a: Vec<usize> = ds
            .graph
            .user_degrees()
            .into_iter()
            .filter(|&d| d > 0)
            .collect();
        let mut b: Vec<usize> = loaded.graph.user_degrees();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "log loses or invents edges");
    }
}
