//! Presets mirroring the paper's Table I datasets at configurable scale.
//!
//! The JD.com datasets are proprietary; these presets reproduce their
//! *ratios* — fraud fraction, merchant/user ratio, edges per user — which
//! are the statistics that drive detector behaviour:
//!
//! | Dataset | #PIN      | fraud PIN | #Merchant | #Edge     | fraud % | E/U  |
//! |---------|-----------|-----------|-----------|-----------|---------|------|
//! | #1      | 454,925   | 24,247    | 226,585   | 1,023,846 | 5.33    | 2.25 |
//! | #2      | 2,194,325 | 16,035    | 120,867   | 2,790,517 | 0.73    | 1.27 |
//! | #3      | 4,332,696 | 101,702   | 556,634   | 7,997,696 | 2.35    | 1.85 |
//!
//! `scale` divides every population: `jd_preset(Jd3, 20, seed)` builds a
//! 1:20 model of dataset #3 (≈217k users, 400k edges) that runs on a laptop.

use crate::config::{CamouflageTargeting, FraudGroupConfig, GeneratorConfig};

/// Which Table I dataset to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JdDataset {
    /// Dataset #1 — small, fraud-heavy (5.3% fraud PINs).
    Jd1,
    /// Dataset #2 — large, fraud-sparse (0.7%), few merchants.
    Jd2,
    /// Dataset #3 — largest, 2.4% fraud.
    Jd3,
}

impl JdDataset {
    /// All three, in paper order.
    pub const ALL: [JdDataset; 3] = [JdDataset::Jd1, JdDataset::Jd2, JdDataset::Jd3];

    /// Paper row: `(users, fraud_users, merchants, edges)`.
    pub fn paper_row(self) -> (usize, usize, usize, usize) {
        match self {
            JdDataset::Jd1 => (454_925, 24_247, 226_585, 1_023_846),
            JdDataset::Jd2 => (2_194_325, 16_035, 120_867, 2_790_517),
            JdDataset::Jd3 => (4_332_696, 101_702, 556_634, 7_997_696),
        }
    }

    /// Display name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            JdDataset::Jd1 => "Dataset #1",
            JdDataset::Jd2 => "Dataset #2",
            JdDataset::Jd3 => "Dataset #3",
        }
    }
}

/// Average fraud-group shape used by the presets: groups of ~120 accounts
/// on rings of ~16 merchants, 70% dense, 2 camouflage purchases each —
/// "a large number of accounts … controlled by a group of fraudsters"
/// making *bulk* purchases in specific stores, so a fraud account's degree
/// (~13) sits well above the honest mean (~2) but below the honest tail.
const GROUP_USERS: usize = 120;
const GROUP_MERCHANTS: usize = 16;
const GROUP_DENSITY: f64 = 0.7;
const CAMOUFLAGE: usize = 2;

/// Builds the generator config for a Table I dataset at `1/scale` size.
///
/// # Panics
///
/// Panics if `scale` is 0 or large enough to empty the dataset.
pub fn jd_preset(which: JdDataset, scale: u32, seed: u64) -> GeneratorConfig {
    assert!(scale > 0, "scale must be positive");
    let (users, fraud, merchants, edges) = which.paper_row();
    let scale = scale as usize;
    let total_users = users / scale;
    let fraud_users = (fraud / scale).max(GROUP_USERS);
    let total_merchants = merchants / scale;
    assert!(
        total_users > fraud_users && total_merchants > 64,
        "scale {scale} collapses the dataset"
    );

    // Two thirds of the blacklist is block-structured campaign fraud; the
    // rest is diffuse (off-graph) fraud no dense-subgraph method can see —
    // the recall ceiling visible in the paper's real-data curves.
    let block_fraud = (fraud_users * 2 / 3).max(GROUP_USERS);
    let diffuse_fraud = fraud_users - block_fraud.min(fraud_users);

    // Split block fraud into groups of ≈GROUP_USERS.
    let num_groups = (block_fraud / GROUP_USERS).max(1);
    let per_group = block_fraud / num_groups;
    let fraud_groups: Vec<FraudGroupConfig> = (0..num_groups)
        .map(|_| FraudGroupConfig {
            num_users: per_group,
            num_merchants: GROUP_MERCHANTS,
            density: GROUP_DENSITY,
            camouflage_per_user: CAMOUFLAGE,
            camouflage: CamouflageTargeting::PopularityBiased,
        })
        .collect();
    let fraud_merchants: usize = fraud_groups.iter().map(|g| g.num_merchants).sum();

    GeneratorConfig {
        num_honest_users: total_users - per_group * num_groups - diffuse_fraud,
        num_honest_merchants: total_merchants.saturating_sub(fraud_merchants).max(64),
        mean_user_degree: (edges as f64 / users as f64).max(1.0),
        merchant_popularity_alpha: 1.1,
        user_activity_alpha: 1.8,
        max_user_degree: 30,
        fraud_groups,
        ring_background_per_merchant: 8,
        diffuse_fraud_users: diffuse_fraud,
        honest_communities: 0,
        community_affinity: 0.7,
        blacklist_miss_rate: 0.05,
        blacklist_false_rate: 0.002,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn preset_ratios_track_table1() {
        for which in JdDataset::ALL {
            let cfg = jd_preset(which, 100, 1);
            let ds = generate(&cfg);
            let (pu, pf, pm, pe) = which.paper_row();
            let (gu, gf, gm, ge) = ds.table1_row();

            // Node populations within 5% of the scaled paper row (fraud
            // grouping rounds a little).
            let ratio = |got: usize, paper: usize| got as f64 / (paper as f64 / 100.0);
            assert!((0.9..=1.1).contains(&ratio(gu, pu)), "{which:?} users {gu}");
            assert!((0.85..=1.25).contains(&ratio(gm, pm)), "{which:?} merchants {gm}");
            // Fraud fraction within 2× of the paper's (blacklist noise and
            // group rounding both move it).
            let fraud_frac = gf as f64 / gu as f64;
            let paper_frac = pf as f64 / pu as f64;
            assert!(
                fraud_frac / paper_frac > 0.4 && fraud_frac / paper_frac < 2.5,
                "{which:?}: fraud fraction {fraud_frac:.4} vs paper {paper_frac:.4}"
            );
            // Edge volume within 2× (dedup + degree law approximation).
            let e_ratio = ge as f64 / (pe as f64 / 100.0);
            assert!(
                (0.5..=2.0).contains(&e_ratio),
                "{which:?}: edges {ge} vs scaled paper {}",
                pe / 100
            );
        }
    }

    #[test]
    fn jd2_is_fraud_sparse_jd1_fraud_heavy() {
        let d1 = generate(&jd_preset(JdDataset::Jd1, 100, 2));
        let d2 = generate(&jd_preset(JdDataset::Jd2, 100, 2));
        let f1 = d1.blacklist.len() as f64 / d1.graph.num_users() as f64;
        let f2 = d2.blacklist.len() as f64 / d2.graph.num_users() as f64;
        assert!(f1 > 2.0 * f2, "jd1 {f1:.4} vs jd2 {f2:.4}");
    }

    #[test]
    fn names_and_rows() {
        assert_eq!(JdDataset::Jd1.name(), "Dataset #1");
        assert_eq!(JdDataset::Jd3.paper_row().3, 7_997_696);
    }

    #[test]
    #[should_panic(expected = "collapses the dataset")]
    fn absurd_scale_panics() {
        jd_preset(JdDataset::Jd1, 400_000, 0);
    }
}
