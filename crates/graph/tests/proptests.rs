//! Property-based tests for the graph substrate.

use ensemfdet_graph::{
    components::connected_components, io, stats::degree_histogram, BipartiteGraph, GraphBuilder,
    MerchantId, SampledGraph, UserId,
};
use proptest::prelude::*;

/// Strategy: a random edge list over up to `nu × nv` node grid.
fn arb_edges(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = (u32, u32, Vec<(u32, u32)>)> {
    (1..=max_nodes, 1..=max_nodes).prop_flat_map(move |(nu, nv)| {
        let edges = prop::collection::vec((0..nu, 0..nv), 0..=max_edges);
        (Just(nu), Just(nv), edges)
    })
}

proptest! {
    #[test]
    fn degrees_sum_to_edge_count((nu, nv, edges) in arb_edges(24, 120)) {
        let g = BipartiteGraph::from_edges(nu as usize, nv as usize, edges.clone()).unwrap();
        let u_sum: usize = g.user_degrees().iter().sum();
        let v_sum: usize = g.merchant_degrees().iter().sum();
        prop_assert_eq!(u_sum, edges.len());
        prop_assert_eq!(v_sum, edges.len());
    }

    #[test]
    fn adjacency_is_consistent_both_ways((nu, nv, edges) in arb_edges(16, 80)) {
        let g = BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap();
        // Every (u -> v) adjacency must appear as (v -> u) with the same edge id.
        for u in 0..g.num_users() as u32 {
            for (v, e, _) in g.merchants_of(UserId(u)) {
                let found = g.users_of(v).any(|(u2, e2, _)| u2 == UserId(u) && e2 == e);
                prop_assert!(found, "edge {} missing from reverse adjacency", e);
            }
        }
    }

    #[test]
    fn edge_list_io_round_trip((nu, nv, edges) in arb_edges(16, 60)) {
        let g = BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap();
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_users(), g.num_users());
        prop_assert_eq!(g2.num_merchants(), g.num_merchants());
        prop_assert_eq!(g2.edge_slice(), g.edge_slice());
    }

    #[test]
    fn builder_dedup_total_weight_equals_record_count((nu, nv, edges) in arb_edges(12, 80)) {
        let mut b = GraphBuilder::with_min_sizes(nu as usize, nv as usize);
        b.extend_edges(edges.iter().map(|&(u, v)| (UserId(u), MerchantId(v))));
        let n = edges.len();
        let g = b.build_deduplicated();
        if n == 0 {
            prop_assert_eq!(g.num_edges(), 0);
        } else {
            prop_assert!((g.total_weight() - n as f64).abs() < 1e-9);
            prop_assert!(g.num_edges() <= n);
        }
    }

    #[test]
    fn edge_subset_sample_maps_back_correctly((nu, nv, edges) in arb_edges(16, 80), pick in prop::collection::vec(any::<prop::sample::Index>(), 0..20)) {
        let g = BipartiteGraph::from_edges(nu as usize, nv as usize, edges.clone()).unwrap();
        if edges.is_empty() { return Ok(()); }
        let ids: Vec<usize> = pick.iter().map(|i| i.index(edges.len())).collect();
        let s = SampledGraph::from_edge_subset(&g, &ids, 1.0);
        prop_assert_eq!(s.graph.num_edges(), ids.len());
        for (le, lu, lv, _) in s.graph.edges() {
            let pu = s.parent_user(lu);
            let pv = s.parent_merchant(lv);
            let (eu, ev) = g.edge_endpoints(ids[le]);
            prop_assert_eq!(pu, eu);
            prop_assert_eq!(pv, ev);
        }
    }

    #[test]
    fn components_partition_all_nodes((nu, nv, edges) in arb_edges(16, 60)) {
        let g = BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap();
        let c = connected_components(&g);
        // Every node labelled, labels dense in 0..count.
        for &l in c.user_comp.iter().chain(c.merchant_comp.iter()) {
            prop_assert!(l < c.count);
        }
        let sizes = c.sizes();
        let users: usize = sizes.iter().map(|s| s.0).sum();
        let merchants: usize = sizes.iter().map(|s| s.1).sum();
        prop_assert_eq!(users, g.num_users());
        prop_assert_eq!(merchants, g.num_merchants());
        // Edges never cross components.
        for (_, u, v, _) in g.edges() {
            prop_assert_eq!(c.of_user(u), c.of_merchant(v));
        }
    }

    #[test]
    fn degree_histogram_sums_to_node_count((nu, nv, edges) in arb_edges(16, 60)) {
        let g = BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap();
        let h = degree_histogram(&g.user_degrees());
        prop_assert_eq!(h.iter().sum::<usize>(), g.num_users());
    }
}
