//! Property-based validation of the bucket-queue k-core decomposition
//! against the defining fixed-point (iterated stripping).

use ensemfdet_graph::{core_decomposition, BipartiteGraph, MerchantId, UserId};
use proptest::prelude::*;

/// Reference: the k-core by iterated stripping, per k.
fn brute_core(g: &BipartiteGraph) -> (Vec<u32>, Vec<u32>) {
    let nu = g.num_users();
    let nv = g.num_merchants();
    let mut ucore = vec![0u32; nu];
    let mut vcore = vec![0u32; nv];
    let max_k = g
        .user_degrees()
        .into_iter()
        .chain(g.merchant_degrees())
        .max()
        .unwrap_or(0) as u32;
    for k in 1..=max_k {
        let mut alive_u = vec![true; nu];
        let mut alive_v = vec![true; nv];
        loop {
            let mut changed = false;
            for (u, alive) in alive_u.iter_mut().enumerate() {
                if *alive {
                    let d = g
                        .merchants_of(UserId(u as u32))
                        .filter(|(v, _, _)| alive_v[v.index()])
                        .count();
                    if (d as u32) < k {
                        *alive = false;
                        changed = true;
                    }
                }
            }
            for (v, alive) in alive_v.iter_mut().enumerate() {
                if *alive {
                    let d = g
                        .users_of(MerchantId(v as u32))
                        .filter(|(u, _, _)| alive_u[u.index()])
                        .count();
                    if (d as u32) < k {
                        *alive = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for u in 0..nu {
            if alive_u[u] {
                ucore[u] = k;
            }
        }
        for v in 0..nv {
            if alive_v[v] {
                vcore[v] = k;
            }
        }
    }
    (ucore, vcore)
}

fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..14, 1u32..12).prop_flat_map(|(nu, nv)| {
        prop::collection::vec((0..nu, 0..nv), 0..90).prop_map(move |mut edges| {
            edges.sort_unstable();
            edges.dedup();
            BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kcore_matches_iterated_stripping(g in arb_graph()) {
        let c = core_decomposition(&g);
        let (bu, bv) = brute_core(&g);
        prop_assert_eq!(&c.user_core, &bu);
        prop_assert_eq!(&c.merchant_core, &bv);
        prop_assert_eq!(
            c.degeneracy,
            bu.iter().chain(bv.iter()).copied().max().unwrap_or(0)
        );
    }

    #[test]
    fn core_numbers_bounded_by_degree(g in arb_graph()) {
        let c = core_decomposition(&g);
        for (u, &k) in c.user_core.iter().enumerate() {
            prop_assert!(k as usize <= g.user_degree(UserId(u as u32)));
        }
        for (v, &k) in c.merchant_core.iter().enumerate() {
            prop_assert!(k as usize <= g.merchant_degree(MerchantId(v as u32)));
        }
    }

    #[test]
    fn users_in_core_is_monotone(g in arb_graph()) {
        let c = core_decomposition(&g);
        let mut prev = usize::MAX;
        for k in 1..=c.degeneracy.max(1) {
            let n = c.users_in_core(k).len();
            prop_assert!(n <= prev);
            prev = n;
        }
    }
}
