//! Allocation-count regression tests for the interners.
//!
//! The legacy `TransactionInterner` used to call `key.to_string()` twice
//! per miss (once for the map key, once for the id→key vector). These
//! tests pin the fixed behavior — one shared allocation per distinct key —
//! and the arena interner's amortized-doubling profile, using a counting
//! `#[global_allocator]`. They live in their own integration-test binary
//! so the allocator swap cannot perturb any other test.

use ensemfdet_graph::{ArenaInterner, TransactionInterner};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static ALLOC_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns (allocation calls, bytes requested) during it.
fn counted<R>(f: impl FnOnce() -> R) -> (usize, usize, R) {
    let calls0 = ALLOC_CALLS.load(Ordering::SeqCst);
    let bytes0 = ALLOC_BYTES.load(Ordering::SeqCst);
    let out = f();
    let calls = ALLOC_CALLS.load(Ordering::SeqCst) - calls0;
    let bytes = ALLOC_BYTES.load(Ordering::SeqCst) - bytes0;
    (calls, bytes, out)
}

#[test]
fn legacy_interner_allocates_each_key_once() {
    const N: usize = 4096;
    // Pre-build the key strings so only interner-internal allocation is
    // measured.
    let keys: Vec<String> = (0..N).map(|i| format!("PIN-{i:08}")).collect();

    let mut interner = TransactionInterner::new();
    let (calls, _bytes, ()) = counted(|| {
        for k in &keys {
            interner.user(k);
        }
    });

    // One Arc<str> allocation per distinct key, plus amortized HashMap and
    // Vec growth (O(log N) doublings each, but rehashing is what it is).
    // The old double-`to_string()` code performed ≥ 2N string allocations
    // alone, so a 1.5N ceiling cleanly separates fixed from broken.
    assert!(
        calls <= N * 3 / 2,
        "legacy interner made {calls} allocations for {N} distinct keys \
         (double-allocation regression?)"
    );

    // Hits must not allocate at all.
    let (hit_calls, _, ()) = counted(|| {
        for k in &keys {
            interner.user(k);
        }
    });
    assert_eq!(hit_calls, 0, "interner hits allocated");
}

#[test]
fn arena_interner_allocates_amortized_not_per_key() {
    const N: usize = 4096;
    let keys: Vec<String> = (0..N).map(|i| format!("PIN-{i:08}")).collect();

    let mut arena = ArenaInterner::new();
    let (calls, _bytes, ()) = counted(|| {
        for k in &keys {
            arena.intern(k);
        }
    });

    // Arena + span vector + probe table each double O(log N) times; no
    // per-key allocation at all. Allow generous slack — the point is the
    // asymptotic gap to the one-alloc-per-key legacy path.
    assert!(
        calls < N / 4,
        "arena interner made {calls} allocations for {N} keys — \
         expected amortized doubling only"
    );
    assert_eq!(arena.len(), N);

    let (hit_calls, _, ()) = counted(|| {
        for k in &keys {
            arena.intern(k);
        }
    });
    assert_eq!(hit_calls, 0, "arena hits allocated");

    let (find_calls, _, found) = counted(|| arena.find(&keys[N / 2]));
    assert_eq!(found, Some((N / 2) as u32));
    assert_eq!(find_calls, 0, "borrow-keyed find allocated");
}
