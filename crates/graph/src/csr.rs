//! Flat CSR view of a (sub)graph: the peeling engine's memory layout.
//!
//! [`crate::BipartiteGraph`] is already CSR-indexed, but its adjacency
//! stores *edge ids*, so walking a neighborhood costs one random access
//! into the edge array (for the endpoint) and one into the weight array
//! per edge. The greedy peel visits every edge once per FDET iteration,
//! so those two dependent loads per step dominate the hot loop on graphs
//! that exceed the cache.
//!
//! [`CsrView`] materializes what the peel actually reads — neighbor id,
//! edge id, and weight — as parallel, contiguous arrays on both sides,
//! plus a canonical alive-edge array in ascending edge-id order. Every
//! neighborhood is then an O(1) triple of slices streamed sequentially.
//!
//! The view is immutable and cheap to (re)build: construction is two
//! counting sorts over the surviving edges, and [`CsrView::rebuild`]
//! reuses the previous allocation, which is what lets FDET rebuild the
//! view after removing each detected block instead of re-scanning every
//! dead edge of the parent graph.

use crate::graph::{BipartiteGraph, EdgeId};
use crate::ids::{MerchantId, UserId};
use crate::spec::{SampleMaps, SampleSpec, SpecKind, SpecResolver};

/// One side's neighborhood as a slice of `(neighbor, weight)` pairs;
/// position i describes one incident edge.
///
/// The pair layout keeps each edge's id and weight on the same cache line,
/// so both the build scatter and the peel's relax walk touch one stream
/// instead of two parallel ones.
#[derive(Clone, Copy, Debug)]
pub struct NeighborSlices<'a> {
    /// `(opposite-endpoint raw id, edge weight)` per incident edge.
    pub pairs: &'a [(u32, f64)],
}

impl<'a> NeighborSlices<'a> {
    /// Number of incident edges in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when the node has no alive incident edge.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Raw ids of the opposite-side endpoints, in slice order.
    #[inline]
    pub fn neighbor_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.pairs.iter().map(|&(n, _)| n)
    }
}

/// An immutable flat-CSR snapshot of the alive subgraph of a
/// [`BipartiteGraph`].
///
/// Node ids are the parent graph's ids (no compaction), so results read
/// off the view — block members, edge ids, tie-breaks — are directly in
/// parent coordinates and bit-identical to an algorithm walking the
/// parent graph with an alive-edge mask.
///
/// ```
/// use ensemfdet_graph::{BipartiteGraph, CsrView, UserId};
///
/// let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 1)]).unwrap();
/// let view = CsrView::from_graph(&g);
/// let n = view.user_neighbors(UserId(0));
/// assert_eq!(n.pairs, &[(0, 1.0), (1, 1.0)]);
///
/// // Filtered view: drop edge 1, keeping parent node and edge ids.
/// let view = CsrView::from_graph_filtered(&g, &[true, false, true]);
/// assert_eq!(view.num_edges(), 2);
/// assert_eq!(view.edge_ids(), &[0, 2]);
/// assert_eq!(view.user_neighbors(UserId(0)).pairs, &[(0, 1.0)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CsrView {
    num_users: usize,
    num_merchants: usize,

    // Canonical alive-edge arrays, ascending global edge id.
    e_id: Vec<u32>,
    e_u: Vec<u32>,
    e_v: Vec<u32>,
    e_w: Vec<f64>,

    // User-side CSR over the alive edges.
    u_off: Vec<u32>,
    u_adj: Vec<(u32, f64)>,

    // Merchant-side CSR over the alive edges.
    v_off: Vec<u32>,
    v_adj: Vec<(u32, f64)>,
}

impl CsrView {
    /// An empty view (no nodes, no edges); fill it with [`CsrView::rebuild`].
    pub fn new() -> Self {
        CsrView::default()
    }

    /// Builds the view of the whole graph.
    pub fn from_graph(g: &BipartiteGraph) -> Self {
        let mut view = CsrView::new();
        view.rebuild(g, None);
        view
    }

    /// [`from_graph`](Self::from_graph) with the build sharded over
    /// `workers` threads; see [`rebuild_sharded`](Self::rebuild_sharded).
    pub fn from_graph_sharded(g: &BipartiteGraph, workers: usize) -> Self {
        let mut view = CsrView::new();
        view.rebuild_sharded(g, workers);
        view
    }

    /// Builds the view of the subgraph spanned by edges with
    /// `edge_alive[e] == true`.
    ///
    /// # Panics
    ///
    /// Panics if `edge_alive.len() != g.num_edges()`.
    pub fn from_graph_filtered(g: &BipartiteGraph, edge_alive: &[bool]) -> Self {
        let mut view = CsrView::new();
        view.rebuild(g, Some(edge_alive));
        view
    }

    /// Re-fills the view in place (reusing allocations) from `g`, keeping
    /// only edges where `edge_alive` is true (`None` ⇒ all edges).
    ///
    /// Relative edge order is preserved, so the canonical arrays stay in
    /// ascending global edge id and each CSR row lists its edges in the
    /// same relative order as the parent graph's adjacency.
    ///
    /// # Panics
    ///
    /// Panics if a mask is given and `edge_alive.len() != g.num_edges()`.
    pub fn rebuild(&mut self, g: &BipartiteGraph, edge_alive: Option<&[bool]>) {
        if let Some(mask) = edge_alive {
            assert_eq!(
                mask.len(),
                g.num_edges(),
                "edge_alive mask must cover every edge"
            );
        }
        self.num_users = g.num_users();
        self.num_merchants = g.num_merchants();

        self.e_id.clear();
        self.e_u.clear();
        self.e_v.clear();
        self.e_w.clear();
        let pairs = g.edge_pairs();
        match edge_alive {
            None => {
                self.e_id.extend(0..pairs.len() as u32);
                self.e_u.extend(pairs.iter().map(|&(u, _)| u));
                self.e_v.extend(pairs.iter().map(|&(_, v)| v));
                match g.weight_values() {
                    Some(w) => self.e_w.extend_from_slice(w),
                    None => self.e_w.resize(pairs.len(), 1.0),
                }
            }
            Some(mask) => {
                for (e, &(u, v)) in pairs.iter().enumerate() {
                    if mask[e] {
                        self.e_id.push(e as u32);
                        self.e_u.push(u);
                        self.e_v.push(v);
                    }
                }
                match g.weight_values() {
                    Some(w) => self.e_w.extend(self.e_id.iter().map(|&e| w[e as usize])),
                    None => self.e_w.resize(self.e_id.len(), 1.0),
                }
            }
        }
        self.fill_sides();
    }

    /// Full-graph [`rebuild`](Self::rebuild) sharded over `workers`
    /// scoped threads — the parent-snapshot build for full-JD-scale
    /// scans, where the two counting sorts dominate.
    ///
    /// Each stage parallelizes over contiguous edge ranges: the canonical
    /// arrays are copied in disjoint chunks, per-shard degree counts feed
    /// one sequential prefix sum that assigns every shard a per-node write
    /// cursor, and the scatter then writes each shard's edge range through
    /// its own cursors. Because shard `s` covers edges `[s·c, (s+1)·c)`
    /// and its cursor for a node starts after all earlier shards'
    /// occurrences of that node, the output order per CSR row is exactly
    /// ascending edge index — the same stable counting sort
    /// [`rebuild`](Self::rebuild) runs sequentially, so the result is
    /// **bit-identical** for any worker count (gated in tests and by the
    /// `bench_suite` scale phase).
    ///
    /// `workers == 0` or `1` (or an edgeless graph) falls back to the
    /// sequential builder. Transient cost: one `num_nodes`-sized count
    /// array per shard per unsorted side.
    pub fn rebuild_sharded(&mut self, g: &BipartiteGraph, workers: usize) {
        let m = g.num_edges();
        let workers = workers.clamp(1, m.max(1));
        if workers == 1 {
            self.rebuild(g, None);
            return;
        }
        self.num_users = g.num_users();
        self.num_merchants = g.num_merchants();

        let pairs = g.edge_pairs();
        let chunk = m.div_ceil(workers);
        self.e_id.clear();
        self.e_id.resize(m, 0);
        self.e_u.clear();
        self.e_u.resize(m, 0);
        self.e_v.clear();
        self.e_v.resize(m, 0);
        self.e_w.clear();
        self.e_w.resize(m, 1.0);
        let weights = g.weight_values();
        std::thread::scope(|sc| {
            let shards = self
                .e_id
                .chunks_mut(chunk)
                .zip(self.e_u.chunks_mut(chunk))
                .zip(self.e_v.chunks_mut(chunk))
                .zip(self.e_w.chunks_mut(chunk))
                .enumerate();
            for (s, (((ids, us), vs), ws)) in shards {
                let base = s * chunk;
                let src = &pairs[base..base + ids.len()];
                let w_src = weights.map(|w| &w[base..base + ids.len()]);
                sc.spawn(move || {
                    for (j, (id, ((u, v), &(pu, pv)))) in ids
                        .iter_mut()
                        .zip(us.iter_mut().zip(vs.iter_mut()).zip(src))
                        .enumerate()
                    {
                        *id = (base + j) as u32;
                        *u = pu;
                        *v = pv;
                    }
                    if let Some(w_src) = w_src {
                        ws.copy_from_slice(w_src);
                    }
                });
            }
        });

        fill_side_sharded(
            &mut self.u_off,
            &mut self.u_adj,
            self.num_users,
            &self.e_u,
            &self.e_v,
            &self.e_w,
            workers,
        );
        fill_side_sharded(
            &mut self.v_off,
            &mut self.v_adj,
            self.num_merchants,
            &self.e_v,
            &self.e_u,
            &self.e_w,
            workers,
        );
    }

    /// Re-fills the view in place directly from a sampler's
    /// [`SampleSpec`] against the parent graph, skipping the intermediate
    /// compacted [`crate::SampledGraph`] copy.
    ///
    /// The result is bit-identical to
    /// `CsrView::from_graph(&spec.materialize(parent).graph)`: endpoints
    /// are interned first-seen in the same edge-visit order the
    /// materializing constructors use, edge ids are local `0..k`, weights
    /// follow the same carry rules, and `maps` receives the same
    /// local→parent id maps a `SampledGraph` would hold. Unlike the
    /// materializing path, nothing here allocates per sample once the
    /// view, resolver, and maps have grown to steady state.
    ///
    /// # Panics
    ///
    /// Panics if the spec references an edge or node outside the parent.
    pub fn rebuild_from_spec(
        &mut self,
        parent: &BipartiteGraph,
        spec: &SampleSpec,
        resolver: &mut SpecResolver,
        maps: &mut SampleMaps,
    ) {
        resolver.begin(parent.num_users(), parent.num_merchants());
        maps.clear();
        self.e_id.clear();
        self.e_u.clear();
        self.e_v.clear();
        self.e_w.clear();

        match spec.kind {
            SpecKind::EdgeSubset => {
                // Mirrors `SampledGraph::from_edge_subset`: intern u then
                // v per chosen edge, carry weights iff the parent is
                // weighted or a non-unit scale applies.
                //
                // The loop is split into gather-then-intern passes so each
                // pass chases a single random-access stream (parent edge
                // array, then one intern table at a time) instead of three
                // interleaved ones. Within a side, endpoints are still
                // interned in edge-visit order, and the two sides' id
                // spaces are independent, so local ids match the fused
                // loop's exactly.
                let pairs = parent.edge_pairs();
                self.e_u.extend(spec.edges.iter().map(|&e| pairs[e].0));
                self.e_v.extend(spec.edges.iter().map(|&e| pairs[e].1));
                for u in &mut self.e_u {
                    *u = resolver.intern_user(*u, &mut maps.orig_users);
                }
                for v in &mut self.e_v {
                    *v = resolver.intern_merchant(*v, &mut maps.orig_merchants);
                }
                if parent.is_weighted() || spec.weight_scale != 1.0 {
                    self.e_w.extend(
                        spec.edges
                            .iter()
                            .map(|&e| parent.edge_weight(e) * spec.weight_scale),
                    );
                } else {
                    self.e_w.resize(spec.edges.len(), 1.0);
                }
            }
            SpecKind::UserSubset => {
                // Mirrors `from_user_subset` → `from_edge_subset` over the
                // concatenated incident-edge lists: adjacency order per
                // chosen user, interning u before v on every edge. `u` is
                // loop-invariant per chosen user, but interning must still
                // happen edge-by-edge order-wise — first-seen order is what
                // the materializing path produces — so intern on the first
                // incident edge and reuse the local id afterwards.
                for &u in &spec.users {
                    let mut lu = u32::MAX;
                    for (v, _e, w) in parent.merchants_of(u) {
                        if lu == u32::MAX {
                            lu = resolver.intern_user(u.0, &mut maps.orig_users);
                        }
                        let lv = resolver.intern_merchant(v.0, &mut maps.orig_merchants);
                        self.e_u.push(lu);
                        self.e_v.push(lv);
                        self.e_w.push(w);
                    }
                }
            }
            SpecKind::MerchantSubset => {
                for &v in &spec.merchants {
                    let mut lv = u32::MAX;
                    for (u, _e, w) in parent.users_of(v) {
                        if lv == u32::MAX {
                            lv = resolver.intern_merchant(v.0, &mut maps.orig_merchants);
                        }
                        let lu = resolver.intern_user(u.0, &mut maps.orig_users);
                        self.e_u.push(lu);
                        self.e_v.push(lv);
                        self.e_w.push(w);
                    }
                }
            }
            SpecKind::NodeSubsets => {
                // Mirrors `from_node_subsets`: every chosen node is
                // interned up front (isolated ones included), then only
                // crossing edges survive.
                for &u in &spec.users {
                    resolver.intern_user(u.0, &mut maps.orig_users);
                }
                for &v in &spec.merchants {
                    resolver.intern_merchant(v.0, &mut maps.orig_merchants);
                }
                for &u in &spec.users {
                    let lu = resolver.intern_user(u.0, &mut maps.orig_users);
                    for (v, _e, w) in parent.merchants_of(u) {
                        if let Some(lv) = resolver.merchant_local(v.0) {
                            self.e_u.push(lu);
                            self.e_v.push(lv);
                            self.e_w.push(w);
                        }
                    }
                }
            }
        }

        // Edge ids are local (0..k), exactly as `from_graph` numbers the
        // compacted graph's edges.
        self.e_id.extend(0..self.e_u.len() as u32);
        self.num_users = maps.orig_users.len();
        self.num_merchants = maps.orig_merchants.len();
        self.fill_sides();
    }

    /// Shrinks the view in place to the edges whose *global* id is still
    /// alive, then rebuilds both adjacency sides.
    ///
    /// Equivalent to `rebuild(g, Some(edge_alive))` whenever the view
    /// already holds a superset of the alive edges (masks only ever turn
    /// edges off during FDET), but touches `O(view edges)` instead of
    /// re-scanning the parent graph's full edge list — which is what keeps
    /// later FDET iterations proportional to the surviving subgraph.
    ///
    /// # Panics
    ///
    /// Panics if some held edge id is out of `edge_alive`'s bounds.
    pub fn refilter(&mut self, edge_alive: &[bool]) {
        let mut k = 0usize;
        for i in 0..self.e_id.len() {
            if edge_alive[self.e_id[i] as usize] {
                self.e_id[k] = self.e_id[i];
                self.e_u[k] = self.e_u[i];
                self.e_v[k] = self.e_v[i];
                self.e_w[k] = self.e_w[i];
                k += 1;
            }
        }
        self.e_id.truncate(k);
        self.e_u.truncate(k);
        self.e_v.truncate(k);
        self.e_w.truncate(k);
        self.fill_sides();
    }

    /// Rebuilds both per-side CSRs from the canonical arrays.
    fn fill_sides(&mut self) {
        fill_side(
            &mut self.u_off,
            &mut self.u_adj,
            self.num_users,
            &self.e_u,
            &self.e_v,
            &self.e_w,
        );
        fill_side(
            &mut self.v_off,
            &mut self.v_adj,
            self.num_merchants,
            &self.e_v,
            &self.e_u,
            &self.e_w,
        );
    }

    /// Number of user-side nodes (parent graph's count, isolated included).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of merchant-side nodes.
    #[inline]
    pub fn num_merchants(&self) -> usize {
        self.num_merchants
    }

    /// Number of alive edges in the view.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.e_id.len()
    }

    /// Global edge ids of the alive edges, ascending.
    #[inline]
    pub fn edge_ids(&self) -> &[u32] {
        &self.e_id
    }

    /// User endpoints of the alive edges, aligned with [`CsrView::edge_ids`].
    #[inline]
    pub fn edge_users(&self) -> &[u32] {
        &self.e_u
    }

    /// Merchant endpoints of the alive edges.
    #[inline]
    pub fn edge_merchants(&self) -> &[u32] {
        &self.e_v
    }

    /// Weights of the alive edges.
    #[inline]
    pub fn edge_weights(&self) -> &[f64] {
        &self.e_w
    }

    /// Alive degree of user `u`.
    #[inline]
    pub fn user_degree(&self, u: UserId) -> usize {
        (self.u_off[u.index() + 1] - self.u_off[u.index()]) as usize
    }

    /// Alive degree of merchant `v`.
    #[inline]
    pub fn merchant_degree(&self, v: MerchantId) -> usize {
        (self.v_off[v.index() + 1] - self.v_off[v.index()]) as usize
    }

    /// O(1) neighborhood slice of user `u` (merchant ids in the pairs).
    #[inline]
    pub fn user_neighbors(&self, u: UserId) -> NeighborSlices<'_> {
        let lo = self.u_off[u.index()] as usize;
        let hi = self.u_off[u.index() + 1] as usize;
        NeighborSlices {
            pairs: &self.u_adj[lo..hi],
        }
    }

    /// O(1) neighborhood slice of merchant `v` (user ids in the pairs).
    #[inline]
    pub fn merchant_neighbors(&self, v: MerchantId) -> NeighborSlices<'_> {
        let lo = self.v_off[v.index()] as usize;
        let hi = self.v_off[v.index() + 1] as usize;
        NeighborSlices {
            pairs: &self.v_adj[lo..hi],
        }
    }

    /// Iterates the alive edges as `(edge_id, user, merchant, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, UserId, MerchantId, f64)> + '_ {
        (0..self.e_id.len()).map(move |i| {
            (
                self.e_id[i] as EdgeId,
                UserId(self.e_u[i]),
                MerchantId(self.e_v[i]),
                self.e_w[i],
            )
        })
    }
}

/// Counting-sort one side's CSR from the canonical edge arrays, reusing
/// the output allocations.
fn fill_side(
    off: &mut Vec<u32>,
    adj: &mut Vec<(u32, f64)>,
    num_nodes: usize,
    own: &[u32],
    other: &[u32],
    weights: &[f64],
) {
    off.clear();
    off.resize(num_nodes + 1, 0);
    for &n in own {
        off[n as usize + 1] += 1;
    }
    for i in 0..num_nodes {
        off[i + 1] += off[i];
    }
    adj.clear();
    // Fast path: when this side's endpoints are already non-decreasing
    // (builder output is (u, v)-sorted, and filtering preserves order),
    // the stable counting sort is the identity — the adjacency is a
    // straight zip of the canonical arrays.
    if own.is_sorted() {
        adj.extend(other.iter().zip(weights).map(|(&o, &w)| (o, w)));
        return;
    }
    let total = own.len();
    adj.resize(total, (0, 0.0));
    // Scatter through `off[node]` as the write cursor; afterwards each
    // entry holds its row's END offset, which one shift turns back into
    // start offsets (avoids cloning a cursor array every rebuild).
    for i in 0..total {
        let node = own[i] as usize;
        let slot = off[node] as usize;
        adj[slot] = (other[i], weights[i]);
        off[node] += 1;
    }
    off.copy_within(0..num_nodes, 1);
    off[0] = 0;
}

/// A raw pointer that may cross scoped-thread boundaries. Used for the
/// sharded scatter, where disjointness of the writes is established by
/// the cursor construction rather than by slice splitting (each shard's
/// write set is interleaved across the whole adjacency array).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Sharded [`fill_side`]: parallel per-shard degree counts over edge
/// ranges, one sequential prefix sum handing every `(shard, node)` pair
/// its write cursor, then a parallel scatter of each shard's edge range.
///
/// Output is bit-identical to the sequential stable counting sort: a
/// shard's cursor for node `n` starts at `off[n]` plus all earlier
/// shards' occurrences of `n`, and within a shard edges are visited in
/// ascending index, so every CSR row lists its edges in global edge
/// order — exactly what stability means.
fn fill_side_sharded(
    off: &mut Vec<u32>,
    adj: &mut Vec<(u32, f64)>,
    num_nodes: usize,
    own: &[u32],
    other: &[u32],
    weights: &[f64],
    workers: usize,
) {
    let m = own.len();
    let workers = workers.clamp(1, m.max(1));
    if workers == 1 {
        fill_side(off, adj, num_nodes, own, other, weights);
        return;
    }
    let chunk = m.div_ceil(workers);

    // Stage 1: per-shard degree counts, each over its own edge range.
    let mut counts: Vec<Vec<u32>> = std::thread::scope(|sc| {
        let handles: Vec<_> = own
            .chunks(chunk)
            .map(|range| {
                sc.spawn(move || {
                    let mut cnt = vec![0u32; num_nodes];
                    for &n in range {
                        cnt[n as usize] += 1;
                    }
                    cnt
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("csr degree-count shard panicked"))
            .collect()
    });

    // Stage 2: prefix sum. `off[n]` becomes node n's row start; each
    // shard's count entry becomes its write cursor for that node (row
    // start advanced past every earlier shard's occurrences).
    off.clear();
    off.resize(num_nodes + 1, 0);
    let mut total = 0u32;
    for n in 0..num_nodes {
        off[n] = total;
        for cnt in counts.iter_mut() {
            let deg = cnt[n];
            cnt[n] = total;
            total += deg;
        }
    }
    off[num_nodes] = total;

    adj.clear();
    // Same fast path as the sequential builder: sorted endpoints make the
    // stable sort the identity, so the adjacency is a chunked parallel
    // copy of the canonical arrays.
    if own.is_sorted() {
        adj.resize(m, (0, 0.0));
        std::thread::scope(|sc| {
            for ((dst, o), w) in adj
                .chunks_mut(chunk)
                .zip(other.chunks(chunk))
                .zip(weights.chunks(chunk))
            {
                sc.spawn(move || {
                    for (d, (&o, &w)) in dst.iter_mut().zip(o.iter().zip(w)) {
                        *d = (o, w);
                    }
                });
            }
        });
        return;
    }

    // Stage 3: scatter. Each shard writes its edge range through its own
    // cursors. SAFETY: the cursor construction above partitions `0..m`
    // exactly — slot `cursor_s[n] + k` is claimed by precisely one
    // `(shard, node, occurrence)` triple — so all writes are disjoint and
    // every slot is written exactly once before the scope joins.
    adj.resize(m, (0, 0.0));
    let adj_ptr = SendPtr(adj.as_mut_ptr());
    std::thread::scope(|sc| {
        for (s, (own_c, (other_c, w_c))) in own
            .chunks(chunk)
            .zip(other.chunks(chunk).zip(weights.chunks(chunk)))
            .enumerate()
        {
            let mut cursor = std::mem::take(&mut counts[s]);
            sc.spawn(move || {
                let adj_ptr = adj_ptr;
                for i in 0..own_c.len() {
                    let n = own_c[i] as usize;
                    let slot = cursor[n] as usize;
                    unsafe {
                        *adj_ptr.0.add(slot) = (other_c[i], w_c[i]);
                    }
                    cursor[n] += 1;
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> BipartiteGraph {
        // u0 - m0, m1; u1 - m1; u2 - m1, m2
        BipartiteGraph::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]).unwrap()
    }

    #[test]
    fn full_view_matches_graph_adjacency() {
        let g = sample_graph();
        let view = CsrView::from_graph(&g);
        assert_eq!(view.num_users(), 3);
        assert_eq!(view.num_merchants(), 3);
        assert_eq!(view.num_edges(), 5);
        for u in 0..3u32 {
            let from_graph: Vec<(u32, f64)> = g
                .merchants_of(UserId(u))
                .map(|(v, _, w)| (v.0, w))
                .collect();
            let from_view: Vec<(u32, f64)> = view.user_neighbors(UserId(u)).pairs.to_vec();
            assert_eq!(from_view, from_graph, "user {u}");
            assert_eq!(view.user_degree(UserId(u)), g.user_degree(UserId(u)));
        }
        for v in 0..3u32 {
            let from_graph: Vec<u32> =
                g.users_of(MerchantId(v)).map(|(u, _, _)| u.0).collect();
            let from_view: Vec<u32> =
                view.merchant_neighbors(MerchantId(v)).neighbor_ids().collect();
            assert_eq!(from_view, from_graph, "merchant {v}");
        }
    }

    #[test]
    fn canonical_edges_ascend_and_round_trip() {
        let g = sample_graph();
        let view = CsrView::from_graph(&g);
        let ids: Vec<u32> = view.edge_ids().to_vec();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending edge ids");
        for (e, u, v, w) in view.edges() {
            let (gu, gv) = g.edge_endpoints(e);
            assert_eq!((gu, gv), (u, v));
            assert_eq!(w, g.edge_weight(e));
        }
    }

    #[test]
    fn filtered_view_drops_edges_keeps_ids() {
        let g = sample_graph();
        let mask = [true, false, true, false, true];
        let view = CsrView::from_graph_filtered(&g, &mask);
        assert_eq!(view.num_edges(), 3);
        assert_eq!(view.edge_ids(), &[0, 2, 4]);
        // Node population is unchanged; only adjacency shrinks.
        assert_eq!(view.num_users(), 3);
        assert_eq!(view.user_degree(UserId(0)), 1);
        assert_eq!(view.merchant_degree(MerchantId(1)), 1);
        assert_eq!(view.user_neighbors(UserId(0)).pairs, &[(0, 1.0)]);
        assert_eq!(view.merchant_neighbors(MerchantId(1)).pairs, &[(1, 1.0)]);
    }

    #[test]
    fn rebuild_reuses_and_replaces() {
        let g = sample_graph();
        let mut view = CsrView::from_graph(&g);
        view.rebuild(&g, Some(&[false, false, true, true, false]));
        assert_eq!(view.num_edges(), 2);
        assert_eq!(view.edge_ids(), &[2, 3]);
        view.rebuild(&g, None);
        assert_eq!(view.num_edges(), 5);
    }

    #[test]
    fn weighted_graph_weights_flow_through() {
        let g = BipartiteGraph::from_weighted_edges(2, 2, vec![(0, 0), (1, 1)], vec![2.5, 0.5])
            .unwrap();
        let view = CsrView::from_graph(&g);
        assert_eq!(view.edge_weights(), &[2.5, 0.5]);
        assert_eq!(view.user_neighbors(UserId(1)).pairs, &[(1, 0.5)]);
        assert_eq!(view.merchant_neighbors(MerchantId(0)).pairs, &[(0, 2.5)]);
    }

    #[test]
    fn empty_and_edgeless_views() {
        let g = BipartiteGraph::from_edges(0, 0, vec![]).unwrap();
        let view = CsrView::from_graph(&g);
        assert_eq!(view.num_edges(), 0);
        let g = BipartiteGraph::from_edges(2, 2, vec![]).unwrap();
        let view = CsrView::from_graph(&g);
        assert_eq!(view.user_degree(UserId(1)), 0);
        assert!(view.user_neighbors(UserId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "edge_alive mask")]
    fn wrong_mask_length_panics() {
        let g = sample_graph();
        CsrView::from_graph_filtered(&g, &[true]);
    }

    /// Field-by-field equality, including the private CSR internals —
    /// the "bit-identical" contract of `rebuild_from_spec`.
    fn assert_views_identical(spec_built: &CsrView, materialized: &CsrView) {
        assert_eq!(spec_built.num_users, materialized.num_users);
        assert_eq!(spec_built.num_merchants, materialized.num_merchants);
        assert_eq!(spec_built.e_id, materialized.e_id);
        assert_eq!(spec_built.e_u, materialized.e_u);
        assert_eq!(spec_built.e_v, materialized.e_v);
        assert_eq!(spec_built.e_w, materialized.e_w);
        assert_eq!(spec_built.u_off, materialized.u_off);
        assert_eq!(spec_built.u_adj, materialized.u_adj);
        assert_eq!(spec_built.v_off, materialized.v_off);
        assert_eq!(spec_built.v_adj, materialized.v_adj);
    }

    fn check_spec_equivalence(parent: &BipartiteGraph, spec: &SampleSpec) {
        let mut resolver = SpecResolver::new();
        let mut maps = SampleMaps::default();
        let mut view = CsrView::new();
        view.rebuild_from_spec(parent, spec, &mut resolver, &mut maps);

        let sampled = spec.materialize(parent);
        let reference = CsrView::from_graph(&sampled.graph);
        assert_views_identical(&view, &reference);
        assert_eq!(maps.orig_users, sampled.orig_users);
        assert_eq!(maps.orig_merchants, sampled.orig_merchants);
    }

    #[test]
    fn spec_built_view_matches_materialized_for_every_kind() {
        let unweighted = BipartiteGraph::from_edges(
            4,
            4,
            vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 3)],
        )
        .unwrap();
        let weighted = BipartiteGraph::from_weighted_edges(
            4,
            4,
            vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 3)],
            vec![1.5, 2.0, 0.5, 3.0, 1.0, 4.0],
        )
        .unwrap();

        for parent in [&unweighted, &weighted] {
            let mut spec = SampleSpec::new();
            spec.reset(SpecKind::EdgeSubset);
            spec.edges.extend([5usize, 1, 3, 2]); // deliberately unsorted
            check_spec_equivalence(parent, &spec);

            spec.reset(SpecKind::EdgeSubset);
            spec.edges.extend([0usize, 5]);
            spec.weight_scale = 4.0; // forces the weight-carry rule
            check_spec_equivalence(parent, &spec);

            spec.reset(SpecKind::UserSubset);
            spec.users.extend([UserId(2), UserId(0)]);
            check_spec_equivalence(parent, &spec);

            spec.reset(SpecKind::MerchantSubset);
            spec.merchants.extend([MerchantId(1), MerchantId(3)]);
            check_spec_equivalence(parent, &spec);

            // Includes a node that ends up isolated (u3 × {m1, m2}).
            spec.reset(SpecKind::NodeSubsets);
            spec.users.extend([UserId(2), UserId(3), UserId(0)]);
            spec.merchants.extend([MerchantId(1), MerchantId(2)]);
            check_spec_equivalence(parent, &spec);

            // Degenerate specs: empty selections.
            spec.reset(SpecKind::EdgeSubset);
            check_spec_equivalence(parent, &spec);
            spec.reset(SpecKind::NodeSubsets);
            check_spec_equivalence(parent, &spec);
        }
    }

    #[test]
    fn resolver_and_view_are_reusable_across_specs() {
        let parent = BipartiteGraph::from_edges(
            4,
            4,
            vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 3)],
        )
        .unwrap();
        let mut resolver = SpecResolver::new();
        let mut maps = SampleMaps::default();
        let mut view = CsrView::new();

        let mut spec = SampleSpec::new();
        spec.reset(SpecKind::UserSubset);
        spec.users.extend([UserId(0), UserId(1)]);
        view.rebuild_from_spec(&parent, &spec, &mut resolver, &mut maps);

        // Second resolve with the same scratch must not see stale interns.
        spec.reset(SpecKind::EdgeSubset);
        spec.edges.extend([4usize, 5]);
        view.rebuild_from_spec(&parent, &spec, &mut resolver, &mut maps);
        let sampled = spec.materialize(&parent);
        assert_views_identical(&view, &CsrView::from_graph(&sampled.graph));
        assert_eq!(maps.orig_users, sampled.orig_users);
        assert_eq!(maps.orig_merchants, sampled.orig_merchants);
    }

    /// A pseudo-random graph with multi-edges and skewed degrees — enough
    /// irregularity that a scatter-order bug would misplace entries.
    fn scrambled_graph(nu: u32, nv: u32, m: usize, weighted: bool) -> BipartiteGraph {
        let mut x = 0x9E37_79B9u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| {
                let u = (step() % nu as u64) as u32;
                // Skew merchants so some rows are long, some empty.
                let v = ((step() % nv as u64) * (step() % nv as u64) / nv as u64) as u32;
                (u, v)
            })
            .collect();
        if weighted {
            let w = (0..m).map(|_| (step() % 1000) as f64 / 10.0 + 0.1).collect();
            BipartiteGraph::from_weighted_edges(nu as usize, nv as usize, edges, w).unwrap()
        } else {
            BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap()
        }
    }

    /// The sharded build is the same stable counting sort — every private
    /// field bit-identical to the sequential builder, for any worker
    /// count, graph shape, and weighting.
    #[test]
    fn sharded_build_matches_sequential_bit_for_bit() {
        let graphs = [
            scrambled_graph(97, 41, 1_123, false),
            scrambled_graph(97, 41, 1_123, true),
            scrambled_graph(5, 400, 777, true),
            sample_graph(),
            BipartiteGraph::from_edges(3, 3, vec![]).unwrap(),
            BipartiteGraph::from_edges(0, 0, vec![]).unwrap(),
            BipartiteGraph::from_edges(1, 1, vec![(0, 0), (0, 0)]).unwrap(),
        ];
        for (gi, g) in graphs.iter().enumerate() {
            let sequential = CsrView::from_graph(g);
            for workers in [0, 1, 2, 3, 5, 16] {
                let sharded = CsrView::from_graph_sharded(g, workers);
                assert_views_identical(&sharded, &sequential);
                let _ = (gi, workers); // context on failure via panic site
            }
        }
    }

    /// `rebuild_sharded` reuses a dirty view's allocations without
    /// leaking state from the previous fill.
    #[test]
    fn sharded_rebuild_reuses_dirty_view() {
        let big = scrambled_graph(60, 30, 500, true);
        let small = sample_graph();
        let mut view = CsrView::from_graph_sharded(&big, 4);
        view.rebuild_sharded(&small, 4);
        assert_views_identical(&view, &CsrView::from_graph(&small));
        view.rebuild_sharded(&big, 3);
        assert_views_identical(&view, &CsrView::from_graph(&big));
    }

    #[test]
    fn multi_edges_preserved() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0), (0, 0)]).unwrap();
        let view = CsrView::from_graph(&g);
        assert_eq!(
            view.user_neighbors(UserId(0)).neighbor_ids().collect::<Vec<_>>(),
            vec![0, 0]
        );
        assert_eq!(view.edge_ids(), &[0, 1]);
        assert_eq!(view.merchant_degree(MerchantId(0)), 2);
    }
}
