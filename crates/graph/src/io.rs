//! Plain-text persistence: edge lists and ground-truth label files.
//!
//! Formats are deliberately boring so datasets can be inspected and diffed:
//!
//! - **Edge list**: one `user<TAB>merchant[<TAB>weight]` record per line;
//!   `#`-prefixed lines are comments. A header comment records the node
//!   counts so isolated nodes survive a round-trip.
//! - **Label file**: one user id per line — the blacklist of fraud PINs.

use crate::error::GraphError;
use crate::graph::BipartiteGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `g` as a tab-separated edge list with a size header.
pub fn write_edge_list<W: Write>(g: &BipartiteGraph, w: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# bipartite {} {} {}", g.num_users(), g.num_merchants(), g.num_edges())?;
    if g.is_weighted() {
        for (_, u, v, wt) in g.edges() {
            writeln!(w, "{}\t{}\t{}", u.0, v.0, wt)?;
        }
    } else {
        for (_, u, v, _) in g.edges() {
            writeln!(w, "{}\t{}", u.0, v.0)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads an edge list produced by [`write_edge_list`] (or any headerless
/// `u<TAB>v` file, in which case node counts are inferred from max indexes).
pub fn read_edge_list<R: Read>(r: R) -> Result<BipartiteGraph, GraphError> {
    let mut r = BufReader::new(r);
    let mut declared: Option<(usize, usize)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut any_weight = false;

    // One line buffer reused across the file, trimmed in place — `lines()`
    // would allocate a fresh String per edge.
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(dims) = rest.strip_prefix("bipartite") {
                let parts: Vec<&str> = dims.split_whitespace().collect();
                if parts.len() >= 2 {
                    let nu = parts[0].parse().map_err(|e| GraphError::Parse {
                        line: lineno,
                        message: format!("bad user count: {e}"),
                    })?;
                    let nv = parts[1].parse().map_err(|e| GraphError::Parse {
                        line: lineno,
                        message: format!("bad merchant count: {e}"),
                    })?;
                    declared = Some((nu, nv));
                }
            }
            continue;
        }
        let mut fields = line.split_whitespace();
        let u: u32 = fields
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: "missing user field".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno,
                message: format!("bad user id: {e}"),
            })?;
        let v: u32 = fields
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: "missing merchant field".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno,
                message: format!("bad merchant id: {e}"),
            })?;
        let w: f64 = match fields.next() {
            Some(s) => {
                any_weight = true;
                s.parse().map_err(|e| GraphError::Parse {
                    line: lineno,
                    message: format!("bad weight: {e}"),
                })?
            }
            None => 1.0,
        };
        edges.push((u, v));
        weights.push(w);
    }

    let (nu, nv) = declared.unwrap_or_else(|| {
        let nu = edges.iter().map(|&(u, _)| u as usize + 1).max().unwrap_or(0);
        let nv = edges.iter().map(|&(_, v)| v as usize + 1).max().unwrap_or(0);
        (nu, nv)
    });

    if any_weight {
        BipartiteGraph::from_weighted_edges(nu, nv, edges, weights)
    } else {
        BipartiteGraph::from_edges(nu, nv, edges)
    }
}

/// Writes a blacklist (one user id per line).
pub fn write_labels<W: Write>(fraud_users: &[u32], w: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    for &u in fraud_users {
        writeln!(w, "{u}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a blacklist written by [`write_labels`].
pub fn read_labels<R: Read>(r: R) -> Result<Vec<u32>, GraphError> {
    let mut r = BufReader::new(r);
    let mut out = Vec::new();
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(line.parse().map_err(|e| GraphError::Parse {
            line: lineno,
            message: format!("bad user id: {e}"),
        })?);
    }
    Ok(out)
}

/// Convenience: write an edge list to a filesystem path.
pub fn save_edge_list(g: &BipartiteGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Convenience: read an edge list from a filesystem path.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<BipartiteGraph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Convenience: write a blacklist to a filesystem path.
pub fn save_labels(fraud_users: &[u32], path: impl AsRef<Path>) -> Result<(), GraphError> {
    write_labels(fraud_users, std::fs::File::create(path)?)
}

/// Convenience: read a blacklist from a filesystem path.
pub fn load_labels(path: impl AsRef<Path>) -> Result<Vec<u32>, GraphError> {
    read_labels(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        BipartiteGraph::from_edges(3, 3, vec![(0, 0), (0, 1), (2, 1)]).unwrap()
    }

    #[test]
    fn edge_list_round_trip_unweighted() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_users(), 3);
        assert_eq!(g2.num_merchants(), 3);
        assert_eq!(g2.edge_slice(), g.edge_slice());
        assert!(!g2.is_weighted());
    }

    #[test]
    fn edge_list_round_trip_weighted() {
        let g = BipartiteGraph::from_weighted_edges(2, 2, vec![(0, 1), (1, 0)], vec![2.5, 1.0])
            .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert!(g2.is_weighted());
        assert_eq!(g2.edge_weight(0), 2.5);
        assert_eq!(g2.edge_weight(1), 1.0);
    }

    #[test]
    fn header_preserves_isolated_nodes() {
        // u2 and m2 are isolated; without the header their existence is lost.
        let g = BipartiteGraph::from_edges(3, 3, vec![(0, 0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_users(), 3);
        assert_eq!(g2.num_merchants(), 3);
    }

    #[test]
    fn headerless_input_infers_sizes() {
        let input = b"0\t5\n3\t1\n";
        let g = read_edge_list(&input[..]).unwrap();
        assert_eq!(g.num_users(), 4);
        assert_eq!(g.num_merchants(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input = b"# a comment\n\n0 0\n# another\n1 1\n";
        let g = read_edge_list(&input[..]).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let input = b"0\t0\nnot-a-number\t3\n";
        let err = read_edge_list(&input[..]).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn missing_field_is_an_error() {
        let input = b"42\n";
        assert!(matches!(
            read_edge_list(&input[..]).unwrap_err(),
            GraphError::Parse { .. }
        ));
    }

    #[test]
    fn labels_round_trip() {
        let labels = vec![3, 1, 4, 1, 5];
        let mut buf = Vec::new();
        write_labels(&labels, &mut buf).unwrap();
        assert_eq!(read_labels(&buf[..]).unwrap(), labels);
    }

    #[test]
    fn labels_skip_comments() {
        let input = b"# blacklist\n7\n\n9\n";
        assert_eq!(read_labels(&input[..]).unwrap(), vec![7, 9]);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ensemfdet_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let g = sample();
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.edge_slice(), g.edge_slice());
        let lpath = dir.join("g.labels");
        save_labels(&[1, 2], &lpath).unwrap();
        assert_eq!(load_labels(&lpath).unwrap(), vec![1, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
