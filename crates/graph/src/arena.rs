//! Arena-backed string interning.
//!
//! The legacy [`TransactionInterner`](crate::TransactionInterner) stores
//! every key twice (`HashMap<String, u32>` + `Vec<String>`), which means two
//! heap allocations per distinct key and pointer-chasing on every probe. At
//! the 60M-transaction regime the paper targets, interning is the ingest
//! bottleneck, so this module rebuilds it around a byte arena:
//!
//! - [`ArenaInterner`]: one contiguous byte arena plus `(offset, len)` spans
//!   per key, with an open-addressing index of dense ids probed directly
//!   against the arena. One amortized allocation per *arena doubling*, not
//!   per key, and borrow-keyed lookup with no temporary `String`.
//! - [`ShardedInterner`]: a concurrent variant routing keys by hash to
//!   independent [`ArenaInterner`]-style shards so threads interning
//!   disjoint keys never contend, while a global reverse map keeps ids
//!   **dense and arrival-ordered** — single-threaded use assigns exactly
//!   the ids the serial interner would.
//! - [`ArenaTransactionInterner`] / [`ConcurrentTransactionInterner`]:
//!   the two-namespace (user + merchant) wrappers the loader and service
//!   use, mirroring the legacy `TransactionInterner` surface.

use crate::ids::{MerchantId, UserId};
use std::sync::RwLock;

/// FNV-1a, 64-bit: deterministic across runs and platforms (unlike the
/// std `RandomState`), cheap on the short keys transaction logs carry.
#[inline]
fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Number of shards in [`ShardedInterner`]. Sixteen keeps per-shard table
/// sizes reasonable while making same-shard collisions rare for typical
/// worker counts (≤ 16).
const NUM_SHARDS: usize = 16;

/// A single-namespace interner: one byte arena, `(offset, len)` spans, and
/// an open-addressing table of dense ids compared straight against the
/// arena. Exactly one amortized byte-copy per distinct key.
#[derive(Clone, Debug, Default)]
pub struct ArenaInterner {
    arena: Vec<u8>,
    spans: Vec<(u32, u32)>,
    /// Open-addressing slots holding `id + 1` (`0` = empty). Capacity is a
    /// power of two; resized at 3/4 load.
    table: Vec<u32>,
}

impl ArenaInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner sized for roughly `keys` distinct keys.
    pub fn with_capacity(keys: usize) -> Self {
        let cap = (keys * 4 / 3 + 1).next_power_of_two().max(16);
        ArenaInterner {
            arena: Vec::new(),
            spans: Vec::with_capacity(keys),
            table: vec![0; cap],
        }
    }

    /// Number of distinct keys interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no key has been interned yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Bytes held by the key arena (the dominant term of interner memory).
    #[inline]
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// The key stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`Self::intern`].
    #[inline]
    pub fn key(&self, id: u32) -> &str {
        let (off, len) = self.spans[id as usize];
        // Spans are only ever created from `&str` input, so the slice is
        // valid UTF-8 by construction.
        std::str::from_utf8(&self.arena[off as usize..(off + len) as usize])
            .expect("arena spans are UTF-8 by construction")
    }

    #[inline]
    fn span_bytes(&self, id: u32) -> &[u8] {
        let (off, len) = self.spans[id as usize];
        &self.arena[off as usize..(off + len) as usize]
    }

    /// Looks up an existing key without allocating.
    #[inline]
    pub fn find(&self, key: &str) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (fnv1a(key.as_bytes()) as usize) & mask;
        loop {
            match self.table[slot] {
                0 => return None,
                stored => {
                    let id = stored - 1;
                    if self.span_bytes(id) == key.as_bytes() {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns `key`, returning its dense id (assigned in first-appearance
    /// order: the n-th distinct key gets id `n - 1`).
    pub fn intern(&mut self, key: &str) -> u32 {
        if self.table.is_empty() {
            self.table = vec![0; 16];
        }
        let hash = fnv1a(key.as_bytes());
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                0 => break,
                stored => {
                    let id = stored - 1;
                    if self.span_bytes(id) == key.as_bytes() {
                        return id;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
        let id = self.push_key(key);
        self.table[slot] = id + 1;
        if (self.spans.len() + 1) * 4 > self.table.len() * 3 {
            self.grow_table();
        }
        id
    }

    /// Appends `key` to the arena and records its span. Caller owns table
    /// insertion.
    fn push_key(&mut self, key: &str) -> u32 {
        let off = u32::try_from(self.arena.len()).expect("interner arena exceeds 4 GiB");
        let len = u32::try_from(key.len()).expect("interner key exceeds 4 GiB");
        assert!(
            off.checked_add(len).is_some(),
            "interner arena exceeds 4 GiB"
        );
        self.arena.extend_from_slice(key.as_bytes());
        let id = self.spans.len() as u32;
        self.spans.push((off, len));
        id
    }

    fn grow_table(&mut self) {
        let new_cap = self.table.len() * 2;
        let mask = new_cap - 1;
        let mut table = vec![0u32; new_cap];
        for id in 0..self.spans.len() as u32 {
            let mut slot = (fnv1a(self.span_bytes(id)) as usize) & mask;
            while table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            table[slot] = id + 1;
        }
        self.table = table;
    }

    /// Iterates keys in id order (first-appearance order).
    pub fn keys(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.spans.len() as u32).map(move |id| self.key(id))
    }
}

/// Two-namespace (user + merchant) arena interner mirroring the legacy
/// [`TransactionInterner`](crate::TransactionInterner) surface. This is
/// what the parallel loader returns.
#[derive(Clone, Debug, Default)]
pub struct ArenaTransactionInterner {
    users: ArenaInterner,
    merchants: ArenaInterner,
}

impl ArenaTransactionInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (possibly allocating) the dense id of a user key.
    #[inline]
    pub fn user(&mut self, key: &str) -> UserId {
        UserId(self.users.intern(key))
    }

    /// Returns (possibly allocating) the dense id of a merchant key.
    #[inline]
    pub fn merchant(&mut self, key: &str) -> MerchantId {
        MerchantId(self.merchants.intern(key))
    }

    /// Looks up an existing user key without allocating.
    pub fn find_user(&self, key: &str) -> Option<UserId> {
        self.users.find(key).map(UserId)
    }

    /// Looks up an existing merchant key without allocating.
    pub fn find_merchant(&self, key: &str) -> Option<MerchantId> {
        self.merchants.find(key).map(MerchantId)
    }

    /// The original key of a user id.
    pub fn user_key(&self, u: UserId) -> &str {
        self.users.key(u.0)
    }

    /// The original key of a merchant id.
    pub fn merchant_key(&self, v: MerchantId) -> &str {
        self.merchants.key(v.0)
    }

    /// Number of distinct users seen.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of distinct merchants seen.
    pub fn num_merchants(&self) -> usize {
        self.merchants.len()
    }

    /// Translates a detected user set back to keys.
    pub fn user_keys_of(&self, detected: &[UserId]) -> Vec<&str> {
        detected.iter().map(|&u| self.user_key(u)).collect()
    }

    /// Total arena bytes across both namespaces.
    pub fn arena_bytes(&self) -> usize {
        self.users.arena_bytes() + self.merchants.arena_bytes()
    }

    /// The user-side namespace (for tests and merging).
    pub fn users(&self) -> &ArenaInterner {
        &self.users
    }

    /// The merchant-side namespace (for tests and merging).
    pub fn merchants(&self) -> &ArenaInterner {
        &self.merchants
    }
}

/// One shard of a [`ShardedInterner`]: a local arena plus a table mapping
/// keys to *local* indexes, and the local→global id translation.
#[derive(Debug, Default)]
struct Shard {
    local: ArenaInterner,
    /// `globals[local_index]` is the dense global id.
    globals: Vec<u32>,
}

/// Recovers a read guard even if a writer panicked; the interner's
/// invariants hold at every await-free step, so the data is still usable.
fn read_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// A concurrent interner: keys route by hash to [`NUM_SHARDS`] independent
/// shards, so threads interning disjoint keys take disjoint locks. Hits —
/// the overwhelming majority on real logs — need only a shard *read* lock.
///
/// Global ids stay **dense and arrival-ordered**: a miss takes the shard
/// write lock, then a global reverse-map lock (always in that order) to
/// allocate the next id. Used single-threaded, the assigned ids are
/// identical to [`ArenaInterner`]'s.
#[derive(Debug)]
pub struct ShardedInterner {
    shards: Vec<RwLock<Shard>>,
    /// `reverse[global_id] = (shard, local_index)`.
    reverse: RwLock<Vec<(u32, u32)>>,
}

impl Default for ShardedInterner {
    fn default() -> Self {
        ShardedInterner {
            shards: (0..NUM_SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            reverse: RwLock::new(Vec::new()),
        }
    }
}

impl ShardedInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn shard_of(key: &str) -> usize {
        // High bits pick the shard so the low bits the shard table uses
        // stay independent of the routing decision.
        (fnv1a(key.as_bytes()) >> 57) as usize & (NUM_SHARDS - 1)
    }

    /// Interns `key`, returning its dense global id (arrival order).
    pub fn intern(&self, key: &str) -> u32 {
        let shard = &self.shards[Self::shard_of(key)];
        {
            let guard = read_recover(shard);
            if let Some(local) = guard.local.find(key) {
                return guard.globals[local as usize];
            }
        }
        let mut guard = write_recover(shard);
        // Re-check under the write lock: another thread may have won the
        // race between our read probe and here.
        if let Some(local) = guard.local.find(key) {
            return guard.globals[local as usize];
        }
        // Lock order is always shard → reverse, so two misses on different
        // shards serialize only on the id allocation itself.
        let mut reverse = write_recover(&self.reverse);
        let global = u32::try_from(reverse.len()).expect("interner exceeds u32 ids");
        let local = guard.local.intern(key);
        reverse.push((Self::shard_of(key) as u32, local));
        guard.globals.push(global);
        global
    }

    /// Looks up an existing key without allocating.
    pub fn find(&self, key: &str) -> Option<u32> {
        let guard = read_recover(&self.shards[Self::shard_of(key)]);
        guard.local.find(key).map(|l| guard.globals[l as usize])
    }

    /// The key stored under `id`, as an owned `String` (the backing arena
    /// lives behind a shard lock, so a borrow cannot escape).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`Self::intern`].
    pub fn key(&self, id: u32) -> String {
        let (shard, local) = read_recover(&self.reverse)[id as usize];
        read_recover(&self.shards[shard as usize]).local.key(local).to_string()
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        read_recover(&self.reverse).len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes held by the key arenas across all shards.
    pub fn arena_bytes(&self) -> usize {
        self.shards.iter().map(|s| read_recover(s).local.arena_bytes()).sum()
    }
}

/// Two-namespace concurrent interner for the service's bulk-ingest path:
/// `&self` methods and internal sharding replace the coarse
/// `Mutex<TransactionInterner>` that previously serialized every record.
#[derive(Debug, Default)]
pub struct ConcurrentTransactionInterner {
    users: ShardedInterner,
    merchants: ShardedInterner,
}

impl ConcurrentTransactionInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (possibly allocating) the dense id of a user key.
    #[inline]
    pub fn user(&self, key: &str) -> UserId {
        UserId(self.users.intern(key))
    }

    /// Returns (possibly allocating) the dense id of a merchant key.
    #[inline]
    pub fn merchant(&self, key: &str) -> MerchantId {
        MerchantId(self.merchants.intern(key))
    }

    /// Looks up an existing user key without allocating.
    pub fn find_user(&self, key: &str) -> Option<UserId> {
        self.users.find(key).map(UserId)
    }

    /// Looks up an existing merchant key without allocating.
    pub fn find_merchant(&self, key: &str) -> Option<MerchantId> {
        self.merchants.find(key).map(MerchantId)
    }

    /// The original key of a user id, as an owned `String`.
    pub fn user_key(&self, u: UserId) -> String {
        self.users.key(u.0)
    }

    /// The original key of a merchant id, as an owned `String`.
    pub fn merchant_key(&self, v: MerchantId) -> String {
        self.merchants.key(v.0)
    }

    /// Number of distinct users seen.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of distinct merchants seen.
    pub fn num_merchants(&self) -> usize {
        self.merchants.len()
    }

    /// Translates a detected user set back to keys.
    pub fn user_keys_of(&self, detected: &[UserId]) -> Vec<String> {
        detected.iter().map(|&u| self.user_key(u)).collect()
    }

    /// Total arena bytes across both namespaces and all shards.
    pub fn arena_bytes(&self) -> usize {
        self.users.arena_bytes() + self.merchants.arena_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn arena_ids_are_first_appearance_order() {
        let mut a = ArenaInterner::new();
        assert_eq!(a.intern("alice"), 0);
        assert_eq!(a.intern("bob"), 1);
        assert_eq!(a.intern("alice"), 0);
        assert_eq!(a.intern("carol"), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.key(1), "bob");
        assert_eq!(a.find("carol"), Some(2));
        assert_eq!(a.find("dave"), None);
        assert_eq!(a.keys().collect::<Vec<_>>(), vec!["alice", "bob", "carol"]);
    }

    #[test]
    fn arena_survives_table_growth() {
        let mut a = ArenaInterner::new();
        let n = 10_000u32;
        for i in 0..n {
            assert_eq!(a.intern(&format!("key-{i}")), i);
        }
        for i in 0..n {
            assert_eq!(a.find(&format!("key-{i}")), Some(i), "key-{i} lost in resize");
            assert_eq!(a.key(i), format!("key-{i}"));
        }
        assert_eq!(a.len(), n as usize);
        assert!(a.arena_bytes() > 0);
    }

    #[test]
    fn arena_handles_empty_and_colliding_keys() {
        let mut a = ArenaInterner::new();
        let empty = a.intern("");
        let ab = a.intern("ab");
        // "a" + "b" concatenated in the arena must not alias "ab".
        let a1 = a.intern("a");
        let b1 = a.intern("b");
        assert_eq!(a.intern(""), empty);
        assert_eq!(a.intern("ab"), ab);
        assert_eq!(HashSet::from([empty, ab, a1, b1]).len(), 4);
        assert_eq!(a.key(empty), "");
    }

    #[test]
    fn with_capacity_matches_default_ids() {
        let mut a = ArenaInterner::new();
        let mut b = ArenaInterner::with_capacity(100);
        for key in ["x", "y", "x", "z"] {
            assert_eq!(a.intern(key), b.intern(key));
        }
    }

    #[test]
    fn sharded_single_thread_matches_serial_ids() {
        let serial = {
            let mut a = ArenaInterner::new();
            (0..500).map(|i| a.intern(&format!("u{}", i % 173))).collect::<Vec<_>>()
        };
        let sharded = ShardedInterner::new();
        let got: Vec<u32> = (0..500).map(|i| sharded.intern(&format!("u{}", i % 173))).collect();
        assert_eq!(serial, got);
        assert_eq!(sharded.len(), 173);
        for id in 0..173u32 {
            let key = sharded.key(id);
            assert_eq!(sharded.find(&key), Some(id));
        }
    }

    #[test]
    fn sharded_concurrent_interning_is_consistent() {
        let interner = ShardedInterner::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let interner = &interner;
                scope.spawn(move || {
                    for i in 0..1000 {
                        // Heavy overlap across threads to exercise the
                        // double-checked miss path.
                        interner.intern(&format!("key-{}", (i * 7 + t) % 311));
                    }
                });
            }
        });
        assert_eq!(interner.len(), 311);
        // Every id round-trips and ids are dense 0..n.
        let mut seen = HashSet::new();
        for id in 0..311u32 {
            let key = interner.key(id);
            assert_eq!(interner.find(&key), Some(id));
            assert!(seen.insert(key));
        }
    }

    #[test]
    fn concurrent_transaction_interner_has_disjoint_namespaces() {
        let i = ConcurrentTransactionInterner::new();
        let u = i.user("same-key");
        let v = i.merchant("same-key");
        assert_eq!(u.0, 0);
        assert_eq!(v.0, 0);
        assert_eq!(i.num_users(), 1);
        assert_eq!(i.num_merchants(), 1);
        assert_eq!(i.user_key(u), "same-key");
        assert_eq!(i.merchant_key(v), "same-key");
        assert_eq!(i.user_keys_of(&[u]), vec!["same-key".to_string()]);
        assert!(i.arena_bytes() >= 16);
        assert_eq!(i.find_user("same-key"), Some(u));
        assert_eq!(i.find_merchant("other"), None);
    }

    #[test]
    fn arena_transaction_interner_mirrors_legacy_surface() {
        let mut i = ArenaTransactionInterner::new();
        let a = i.user("PIN-alice");
        let b = i.user("PIN-bob");
        assert_eq!(i.user("PIN-alice"), a);
        assert_ne!(a, b);
        assert_eq!(i.user_key(a), "PIN-alice");
        assert_eq!(i.num_users(), 2);
        let m = i.merchant("store-1");
        assert_eq!(i.merchant_key(m), "store-1");
        assert_eq!(i.find_user("PIN-bob"), Some(b));
        assert_eq!(i.find_merchant("store-1"), Some(m));
        assert_eq!(i.user_keys_of(&[a, b]), vec!["PIN-alice", "PIN-bob"]);
    }
}
