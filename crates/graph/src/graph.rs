//! Immutable bipartite graph stored in compressed sparse row form from both
//! sides.
//!
//! The detection algorithms need three access patterns, all O(1)/O(degree):
//!
//! 1. `u → incident edges → merchant endpoints` (peeling a user),
//! 2. `v → incident edges → user endpoints` (peeling a merchant),
//! 3. `edge id → (u, v, weight)` (removing a detected block's edges,
//!    Algorithm 1 line 11).
//!
//! We therefore keep one canonical edge array plus two CSR indexes of edge
//! ids, one grouped by user and one grouped by merchant. Edge weights are
//! optional: plain transaction graphs are unweighted, but Theorem 1's
//! ε-approximation rescales sampled edges by `1/p`, so the density machinery
//! accepts weights everywhere.

use crate::error::GraphError;
use crate::ids::{MerchantId, UserId};

/// Index into the canonical edge array of a [`BipartiteGraph`].
pub type EdgeId = usize;

/// An immutable bipartite graph `G = (U ∪ V, E)` in dual-CSR form.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    /// Canonical edge list: `edges[e] = (user, merchant)`.
    edges: Vec<(u32, u32)>,
    /// Optional per-edge weights aligned with `edges`. `None` ⇒ all 1.0.
    weights: Option<Vec<f64>>,
    /// CSR offsets for the user side; `u_offsets.len() == num_users + 1`.
    u_offsets: Vec<usize>,
    /// Edge ids incident to each user, grouped by `u_offsets`.
    u_edges: Vec<u32>,
    /// CSR offsets for the merchant side.
    v_offsets: Vec<usize>,
    /// Edge ids incident to each merchant, grouped by `v_offsets`.
    v_edges: Vec<u32>,
}

impl BipartiteGraph {
    /// Builds a graph from an explicit edge list.
    ///
    /// Duplicate edges are kept (multi-edges are meaningful: two purchases
    /// are stronger evidence than one); use [`crate::GraphBuilder`] to
    /// deduplicate into weights instead.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint index is out of range, or if the
    /// edge count exceeds `u32::MAX` (the CSR index width).
    pub fn from_edges(
        num_users: usize,
        num_merchants: usize,
        edges: Vec<(u32, u32)>,
    ) -> Result<Self, GraphError> {
        Self::new_impl(num_users, num_merchants, edges, None)
    }

    /// Builds a weighted graph; `weights` must align with `edges`.
    ///
    /// # Errors
    ///
    /// As [`BipartiteGraph::from_edges`]; additionally requires
    /// `weights.len() == edges.len()`.
    pub fn from_weighted_edges(
        num_users: usize,
        num_merchants: usize,
        edges: Vec<(u32, u32)>,
        weights: Vec<f64>,
    ) -> Result<Self, GraphError> {
        if weights.len() != edges.len() {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "weights length {} does not match edges length {}",
                    weights.len(),
                    edges.len()
                ),
            });
        }
        Self::new_impl(num_users, num_merchants, edges, Some(weights))
    }

    fn new_impl(
        num_users: usize,
        num_merchants: usize,
        edges: Vec<(u32, u32)>,
        weights: Option<Vec<f64>>,
    ) -> Result<Self, GraphError> {
        if edges.len() > u32::MAX as usize {
            return Err(GraphError::EdgeOutOfRange {
                id: edges.len(),
                num_edges: u32::MAX as usize,
            });
        }
        for &(u, v) in &edges {
            if (u as usize) >= num_users {
                return Err(GraphError::UserOutOfRange { id: u, num_users });
            }
            if (v as usize) >= num_merchants {
                return Err(GraphError::MerchantOutOfRange {
                    id: v,
                    num_merchants,
                });
            }
        }

        let u_csr = build_csr(num_users, edges.iter().map(|&(u, _)| u as usize));
        let v_csr = build_csr(num_merchants, edges.iter().map(|&(_, v)| v as usize));

        Ok(BipartiteGraph {
            edges,
            weights,
            u_offsets: u_csr.0,
            u_edges: u_csr.1,
            v_offsets: v_csr.0,
            v_edges: v_csr.1,
        })
    }

    /// Number of user-side nodes (including isolated ones).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.u_offsets.len() - 1
    }

    /// Number of merchant-side nodes (including isolated ones).
    #[inline]
    pub fn num_merchants(&self) -> usize {
        self.v_offsets.len() - 1
    }

    /// Total node count `|U| + |V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_users() + self.num_merchants()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the graph carries per-edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The canonical edge array as raw `(user, merchant)` index pairs, in
    /// edge-id order — the zero-cost bulk accessor behind
    /// [`crate::CsrView`] construction.
    #[inline]
    pub fn edge_pairs(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Per-edge weights aligned with [`Self::edge_pairs`] when the graph
    /// is weighted (`None` ⇒ every edge weighs `1.0`).
    #[inline]
    pub fn weight_values(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Degree of user `u` (number of incident edges).
    #[inline]
    pub fn user_degree(&self, u: UserId) -> usize {
        self.u_offsets[u.index() + 1] - self.u_offsets[u.index()]
    }

    /// Degree of merchant `v`.
    #[inline]
    pub fn merchant_degree(&self, v: MerchantId) -> usize {
        self.v_offsets[v.index() + 1] - self.v_offsets[v.index()]
    }

    /// Endpoints of edge `e` as `(user, merchant)`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (UserId, MerchantId) {
        let (u, v) = self.edges[e];
        (UserId(u), MerchantId(v))
    }

    /// Weight of edge `e` (1.0 on unweighted graphs).
    #[inline]
    pub fn edge_weight(&self, e: EdgeId) -> f64 {
        match &self.weights {
            Some(w) => w[e],
            None => 1.0,
        }
    }

    /// Iterates the merchants adjacent to user `u`, with the connecting edge.
    #[inline]
    pub fn merchants_of(&self, u: UserId) -> NeighborIter<'_, MerchantSide> {
        let range = self.u_offsets[u.index()]..self.u_offsets[u.index() + 1];
        NeighborIter {
            graph: self,
            edge_ids: &self.u_edges[range],
            pos: 0,
            _side: std::marker::PhantomData,
        }
    }

    /// Iterates the users adjacent to merchant `v`, with the connecting edge.
    #[inline]
    pub fn users_of(&self, v: MerchantId) -> NeighborIter<'_, UserSide> {
        let range = self.v_offsets[v.index()]..self.v_offsets[v.index() + 1];
        NeighborIter {
            graph: self,
            edge_ids: &self.v_edges[range],
            pos: 0,
            _side: std::marker::PhantomData,
        }
    }

    /// Edge ids incident to user `u`.
    #[inline]
    pub fn user_edge_ids(&self, u: UserId) -> impl Iterator<Item = EdgeId> + '_ {
        self.u_edges[self.u_offsets[u.index()]..self.u_offsets[u.index() + 1]]
            .iter()
            .map(|&e| e as EdgeId)
    }

    /// Edge ids incident to merchant `v`.
    #[inline]
    pub fn merchant_edge_ids(&self, v: MerchantId) -> impl Iterator<Item = EdgeId> + '_ {
        self.v_edges[self.v_offsets[v.index()]..self.v_offsets[v.index() + 1]]
            .iter()
            .map(|&e| e as EdgeId)
    }

    /// Iterates all edges as `(edge_id, user, merchant, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, UserId, MerchantId, f64)> + '_ {
        self.edges.iter().enumerate().map(move |(e, &(u, v))| {
            (
                e,
                UserId(u),
                MerchantId(v),
                self.weights.as_ref().map_or(1.0, |w| w[e]),
            )
        })
    }

    /// Raw edge-endpoint slice, for bulk consumers (samplers, SVD assembly).
    #[inline]
    pub fn edge_slice(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Sum of all edge weights (`|E|` on unweighted graphs).
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.edges.len() as f64,
        }
    }

    /// Mean degree of the user side, `|E| / |U|` (0 when there are no users).
    pub fn avg_user_degree(&self) -> f64 {
        if self.num_users() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_users() as f64
        }
    }

    /// Mean degree of the merchant side, `|E| / |V|`.
    pub fn avg_merchant_degree(&self) -> f64 {
        if self.num_merchants() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_merchants() as f64
        }
    }

    /// All user-side degrees as a vector.
    pub fn user_degrees(&self) -> Vec<usize> {
        self.u_offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// All merchant-side degrees as a vector.
    pub fn merchant_degrees(&self) -> Vec<usize> {
        self.v_offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Marker for iterators yielding user-side neighbors.
pub struct UserSide;
/// Marker for iterators yielding merchant-side neighbors.
pub struct MerchantSide;

/// Iterator over one node's neighbors; yields `(neighbor_raw_id, edge_id,
/// weight)`. The typed wrappers below restore `UserId`/`MerchantId`.
pub struct NeighborIter<'g, Side> {
    graph: &'g BipartiteGraph,
    edge_ids: &'g [u32],
    pos: usize,
    _side: std::marker::PhantomData<Side>,
}

impl<'g> Iterator for NeighborIter<'g, MerchantSide> {
    type Item = (MerchantId, EdgeId, f64);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let e = *self.edge_ids.get(self.pos)? as EdgeId;
        self.pos += 1;
        let (_, v) = self.graph.edges[e];
        Some((MerchantId(v), e, self.graph.edge_weight(e)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.edge_ids.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<'g> Iterator for NeighborIter<'g, UserSide> {
    type Item = (UserId, EdgeId, f64);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let e = *self.edge_ids.get(self.pos)? as EdgeId;
        self.pos += 1;
        let (u, _) = self.graph.edges[e];
        Some((UserId(u), e, self.graph.edge_weight(e)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.edge_ids.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<'g> ExactSizeIterator for NeighborIter<'g, MerchantSide> {}
impl<'g> ExactSizeIterator for NeighborIter<'g, UserSide> {}

/// Counting-sort CSR construction: one pass to count, one to place.
fn build_csr(num_nodes: usize, endpoints: impl Iterator<Item = usize> + Clone) -> (Vec<usize>, Vec<u32>) {
    let mut offsets = vec![0usize; num_nodes + 1];
    let mut total = 0usize;
    for n in endpoints.clone() {
        offsets[n + 1] += 1;
        total += 1;
    }
    for i in 0..num_nodes {
        offsets[i + 1] += offsets[i];
    }
    let mut adj = vec![0u32; total];
    let mut cursor = offsets.clone();
    for (e, n) in endpoints.enumerate() {
        adj[cursor[n]] = e as u32;
        cursor[n] += 1;
    }
    (offsets, adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> BipartiteGraph {
        // u0 - m0, m1; u1 - m1; u2 - m1, m2
        BipartiteGraph::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = sample_graph();
        assert_eq!(g.num_users(), 3);
        assert_eq!(g.num_merchants(), 3);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
        assert!(!g.is_weighted());
        assert_eq!(g.total_weight(), 5.0);
    }

    #[test]
    fn degrees_match_edges() {
        let g = sample_graph();
        assert_eq!(g.user_degree(UserId(0)), 2);
        assert_eq!(g.user_degree(UserId(1)), 1);
        assert_eq!(g.user_degree(UserId(2)), 2);
        assert_eq!(g.merchant_degree(MerchantId(0)), 1);
        assert_eq!(g.merchant_degree(MerchantId(1)), 3);
        assert_eq!(g.merchant_degree(MerchantId(2)), 1);
        assert_eq!(g.user_degrees(), vec![2, 1, 2]);
        assert_eq!(g.merchant_degrees(), vec![1, 3, 1]);
    }

    #[test]
    fn adjacency_iterators_agree_with_edge_list() {
        let g = sample_graph();
        let ms: Vec<u32> = g.merchants_of(UserId(2)).map(|(m, _, _)| m.0).collect();
        assert_eq!(ms, vec![1, 2]);
        let us: Vec<u32> = g.users_of(MerchantId(1)).map(|(u, _, _)| u.0).collect();
        assert_eq!(us, vec![0, 1, 2]);
        // Edge ids reported by the iterator must round-trip via endpoints.
        for (v, e, w) in g.merchants_of(UserId(0)) {
            let (u2, v2) = g.edge_endpoints(e);
            assert_eq!(u2, UserId(0));
            assert_eq!(v2, v);
            assert_eq!(w, 1.0);
        }
    }

    #[test]
    fn exact_size_iterators() {
        let g = sample_graph();
        assert_eq!(g.merchants_of(UserId(0)).len(), 2);
        assert_eq!(g.users_of(MerchantId(1)).len(), 3);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let g = BipartiteGraph::from_edges(4, 4, vec![(0, 0)]).unwrap();
        assert_eq!(g.user_degree(UserId(3)), 0);
        assert_eq!(g.merchant_degree(MerchantId(2)), 0);
        assert_eq!(g.merchants_of(UserId(3)).count(), 0);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = BipartiteGraph::from_edges(0, 0, vec![]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_user_degree(), 0.0);
        assert_eq!(g.avg_merchant_degree(), 0.0);
    }

    #[test]
    fn out_of_range_user_rejected() {
        let err = BipartiteGraph::from_edges(1, 1, vec![(1, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::UserOutOfRange { id: 1, .. }));
    }

    #[test]
    fn out_of_range_merchant_rejected() {
        let err = BipartiteGraph::from_edges(1, 1, vec![(0, 2)]).unwrap_err();
        assert!(matches!(err, GraphError::MerchantOutOfRange { id: 2, .. }));
    }

    #[test]
    fn weighted_graph_round_trips_weights() {
        let g = BipartiteGraph::from_weighted_edges(2, 2, vec![(0, 0), (1, 1)], vec![2.5, 0.5])
            .unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0), 2.5);
        assert_eq!(g.edge_weight(1), 0.5);
        assert_eq!(g.total_weight(), 3.0);
        let (_, _, w) = g.merchants_of(UserId(0)).next().unwrap();
        assert_eq!(w, 2.5);
    }

    #[test]
    fn mismatched_weight_len_rejected() {
        let err =
            BipartiteGraph::from_weighted_edges(2, 2, vec![(0, 0), (1, 1)], vec![1.0]).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn multi_edges_are_preserved() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0), (0, 0)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.user_degree(UserId(0)), 2);
        assert_eq!(g.merchant_degree(MerchantId(0)), 2);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = sample_graph();
        let collected: Vec<(u32, u32)> = g.edges().map(|(_, u, v, _)| (u.0, v.0)).collect();
        assert_eq!(collected, g.edge_slice().to_vec());
    }

    #[test]
    fn avg_degrees() {
        let g = sample_graph();
        assert!((g.avg_user_degree() - 5.0 / 3.0).abs() < 1e-12);
        assert!((g.avg_merchant_degree() - 5.0 / 3.0).abs() < 1e-12);
    }
}
