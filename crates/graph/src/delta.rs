//! Delta-CSR: the compact record of what changed between two snapshot
//! graphs.
//!
//! A continuously monitored deployment rebuilds its purchase graph epoch
//! after epoch, and most epochs change very little of it: repeat
//! purchases dedup away entirely, and genuinely new edges cluster on a
//! small set of accounts (FraudTrap's *loosely synchronized* arrival
//! pattern, arXiv:1810.08885). A [`GraphDelta`] captures exactly that
//! change surface — the dimensions on both ends plus the sorted sets of
//! users and merchants whose adjacency runs differ — in O(touched) space,
//! so downstream consumers (incremental compaction, dirty-sample reuse in
//! the ensemble) can scale their work with the delta instead of the
//! graph.
//!
//! # Why this is enough for bit-identical sample reuse
//!
//! Every sampler draw in `ensemfdet_sampling` is a deterministic function
//! of `(population size, ratio, seed)`: Floyd's algorithm over `0..n`
//! where `n` is the edge count (RES), one side's node count (ONS), or
//! both side counts (TNS). The delta therefore answers the only two
//! questions reuse needs:
//!
//! 1. **Did the draw population change?** If a relevant dimension in
//!    [`GraphDelta::base_dims`] differs from [`GraphDelta::new_dims`],
//!    the *selection itself* is different and the sample must re-run.
//! 2. **Did the selected subgraph change?** With populations unchanged
//!    the selection is provably identical, and a node-subset sample's
//!    materialized subgraph is a pure function of the selected nodes'
//!    adjacency — untouched per [`GraphDelta::touches_user`] /
//!    [`GraphDelta::touches_merchant`] means bit-identical.
//!
//! Snapshot graphs here are append-only and deduplicated (sorted unique
//! edge lists), so an unchanged edge count means an unchanged graph:
//! edges are never removed, and a "new" duplicate purchase adds nothing.

use serde::{Deserialize, Serialize};

/// Node/edge dimensions of a snapshot graph: `(users, merchants, edges)`.
pub type GraphDims = (usize, usize, usize);

/// The change surface between two epoch-tagged snapshot graphs.
///
/// Construction sites guarantee `touched_users` / `touched_merchants` are
/// sorted and deduplicated, so membership tests are binary searches.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Epoch of the base (older) snapshot.
    pub from_epoch: u64,
    /// Epoch of the new snapshot this delta leads to.
    pub to_epoch: u64,
    /// `(users, merchants, edges)` of the base snapshot.
    pub base_dims: GraphDims,
    /// `(users, merchants, edges)` of the new snapshot.
    pub new_dims: GraphDims,
    /// Users whose adjacency runs changed, sorted ascending, deduplicated.
    pub touched_users: Vec<u32>,
    /// Merchants whose adjacency runs changed, sorted ascending,
    /// deduplicated.
    pub touched_merchants: Vec<u32>,
}

impl GraphDelta {
    /// The delta of an epoch bump that changed nothing in the graph
    /// (e.g. a compaction that drained only repeat purchases).
    pub fn unchanged(from_epoch: u64, to_epoch: u64, dims: GraphDims) -> Self {
        GraphDelta {
            from_epoch,
            to_epoch,
            base_dims: dims,
            new_dims: dims,
            touched_users: Vec::new(),
            touched_merchants: Vec::new(),
        }
    }

    /// Builds the delta from the sorted-unique edges that are genuinely
    /// new in the target snapshot (present there, absent in the base).
    ///
    /// The touched sets are exactly the endpoints of those edges: in an
    /// append-only deduplicated graph an adjacency run changes iff a new
    /// unique edge lands on it.
    pub fn from_new_edges(
        from_epoch: u64,
        to_epoch: u64,
        base_dims: GraphDims,
        new_dims: GraphDims,
        new_edges: &[(u32, u32)],
    ) -> Self {
        let mut touched_users: Vec<u32> = new_edges.iter().map(|&(u, _)| u).collect();
        let mut touched_merchants: Vec<u32> = new_edges.iter().map(|&(_, v)| v).collect();
        touched_users.sort_unstable();
        touched_users.dedup();
        touched_merchants.sort_unstable();
        touched_merchants.dedup();
        GraphDelta {
            from_epoch,
            to_epoch,
            base_dims,
            new_dims,
            touched_users,
            touched_merchants,
        }
    }

    /// `true` when the two snapshots hold the *same* graph: no dimension
    /// moved and no adjacency run changed. Every cached sample is
    /// reusable across such a delta, whatever its kind.
    pub fn graph_unchanged(&self) -> bool {
        self.base_dims == self.new_dims
            && self.touched_users.is_empty()
            && self.touched_merchants.is_empty()
    }

    /// Whether user `u`'s adjacency changed across this delta.
    pub fn touches_user(&self, u: u32) -> bool {
        self.touched_users.binary_search(&u).is_ok()
    }

    /// Whether merchant `v`'s adjacency changed across this delta.
    pub fn touches_merchant(&self, v: u32) -> bool {
        self.touched_merchants.binary_search(&v).is_ok()
    }

    /// Touched nodes as a fraction of the new snapshot's node population
    /// (`0.0` for an empty graph). The oversized-delta fallback threshold
    /// compares against this.
    pub fn touched_fraction(&self) -> f64 {
        let (nu, nv, _) = self.new_dims;
        let total = nu + nv;
        if total == 0 {
            return 0.0;
        }
        (self.touched_users.len() + self.touched_merchants.len()) as f64 / total as f64
    }

    /// Total touched nodes (both sides).
    pub fn touched_nodes(&self) -> usize {
        self.touched_users.len() + self.touched_merchants.len()
    }

    /// Composes `self` (base → mid) with `next` (mid → new) into one
    /// base → new delta, or `None` when the epochs do not chain.
    ///
    /// Touched sets union (a node changed across the span iff it changed
    /// in some hop — sound because edges are append-only, so a change
    /// never "un-happens"), and the dims are taken from the two ends.
    pub fn compose(&self, next: &GraphDelta) -> Option<GraphDelta> {
        if self.to_epoch != next.from_epoch {
            return None;
        }
        Some(GraphDelta {
            from_epoch: self.from_epoch,
            to_epoch: next.to_epoch,
            base_dims: self.base_dims,
            new_dims: next.new_dims,
            touched_users: merge_sorted(&self.touched_users, &next.touched_users),
            touched_merchants: merge_sorted(&self.touched_merchants, &next.touched_merchants),
        })
    }
}

/// Union of two sorted-unique `u32` slices, sorted and unique.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_new_edges_collects_sorted_unique_endpoints() {
        let d = GraphDelta::from_new_edges(
            1,
            2,
            (10, 8, 20),
            (10, 8, 23),
            &[(7, 2), (3, 2), (7, 5)],
        );
        assert_eq!(d.touched_users, vec![3, 7]);
        assert_eq!(d.touched_merchants, vec![2, 5]);
        assert!(!d.graph_unchanged());
        assert!(d.touches_user(7));
        assert!(!d.touches_user(4));
        assert!(d.touches_merchant(5));
        assert!(!d.touches_merchant(0));
        assert_eq!(d.touched_nodes(), 4);
    }

    #[test]
    fn unchanged_delta_is_unchanged() {
        let d = GraphDelta::unchanged(3, 4, (5, 5, 9));
        assert!(d.graph_unchanged());
        assert_eq!(d.touched_fraction(), 0.0);
    }

    #[test]
    fn touched_fraction_uses_new_dims() {
        let d = GraphDelta::from_new_edges(0, 1, (0, 0, 0), (8, 2, 5), &[(1, 0), (2, 1)]);
        // 2 users + 2 merchants touched out of 10 nodes.
        assert!((d.touched_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn compose_chains_epochs_and_unions_touched_sets() {
        let a = GraphDelta::from_new_edges(1, 2, (4, 4, 6), (5, 4, 8), &[(4, 1), (0, 2)]);
        let b = GraphDelta::from_new_edges(2, 3, (5, 4, 8), (5, 6, 9), &[(0, 5)]);
        let ab = a.compose(&b).expect("epochs chain");
        assert_eq!(ab.from_epoch, 1);
        assert_eq!(ab.to_epoch, 3);
        assert_eq!(ab.base_dims, (4, 4, 6));
        assert_eq!(ab.new_dims, (5, 6, 9));
        assert_eq!(ab.touched_users, vec![0, 4]);
        assert_eq!(ab.touched_merchants, vec![1, 2, 5]);
        // Non-chaining epochs refuse to compose.
        assert!(b.compose(&a).is_none());
    }

    #[test]
    fn merge_sorted_unions_without_duplicates() {
        assert_eq!(merge_sorted(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merge_sorted(&[], &[4]), vec![4]);
        assert_eq!(merge_sorted(&[4], &[]), vec![4]);
        assert_eq!(merge_sorted(&[], &[]), Vec::<u32>::new());
    }
}
