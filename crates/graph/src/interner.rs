//! String-keyed graph construction.
//!
//! Production transaction logs identify accounts and merchants by opaque
//! strings (PINs, store codes), not dense integer indexes. The
//! [`TransactionInterner`] maps those keys to the contiguous ids the
//! detection stack uses and back, and [`read_transactions_csv`] ingests a
//! delimited log (`user,merchant` per line) directly into a
//! [`BipartiteGraph`] plus its id maps.

use crate::builder::{DuplicatePolicy, GraphBuilder};
use crate::error::GraphError;
use crate::graph::BipartiteGraph;
use crate::ids::{MerchantId, UserId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::sync::Arc;

/// Bidirectional mapping between string keys and dense node ids.
///
/// Each key is stored once as an `Arc<str>` shared between the lookup map
/// and the id→key vector — one heap copy per distinct key. (The
/// arena-backed [`ArenaTransactionInterner`](crate::ArenaTransactionInterner)
/// and concurrent [`ConcurrentTransactionInterner`](crate::ConcurrentTransactionInterner)
/// supersede this type on the hot ingest paths; it remains for callers
/// that want a plain, clonable map.)
#[derive(Clone, Debug, Default)]
pub struct TransactionInterner {
    user_ids: HashMap<Arc<str>, u32>,
    merchant_ids: HashMap<Arc<str>, u32>,
    user_keys: Vec<Arc<str>>,
    merchant_keys: Vec<Arc<str>>,
}

impl TransactionInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (possibly allocating) the dense id of a user key.
    pub fn user(&mut self, key: &str) -> UserId {
        if let Some(&id) = self.user_ids.get(key) {
            return UserId(id);
        }
        let id = self.user_keys.len() as u32;
        let shared: Arc<str> = Arc::from(key);
        self.user_ids.insert(shared.clone(), id);
        self.user_keys.push(shared);
        UserId(id)
    }

    /// Returns (possibly allocating) the dense id of a merchant key.
    pub fn merchant(&mut self, key: &str) -> MerchantId {
        if let Some(&id) = self.merchant_ids.get(key) {
            return MerchantId(id);
        }
        let id = self.merchant_keys.len() as u32;
        let shared: Arc<str> = Arc::from(key);
        self.merchant_ids.insert(shared.clone(), id);
        self.merchant_keys.push(shared);
        MerchantId(id)
    }

    /// Looks up an existing user key without allocating.
    pub fn find_user(&self, key: &str) -> Option<UserId> {
        self.user_ids.get(key).map(|&id| UserId(id))
    }

    /// Looks up an existing merchant key without allocating.
    pub fn find_merchant(&self, key: &str) -> Option<MerchantId> {
        self.merchant_ids.get(key).map(|&id| MerchantId(id))
    }

    /// The original key of a user id.
    pub fn user_key(&self, u: UserId) -> &str {
        &self.user_keys[u.index()]
    }

    /// The original key of a merchant id.
    pub fn merchant_key(&self, v: MerchantId) -> &str {
        &self.merchant_keys[v.index()]
    }

    /// Number of distinct users seen.
    pub fn num_users(&self) -> usize {
        self.user_keys.len()
    }

    /// Number of distinct merchants seen.
    pub fn num_merchants(&self) -> usize {
        self.merchant_keys.len()
    }

    /// Translates a detected user set back to keys (e.g. for reporting to
    /// a risk-control console).
    pub fn user_keys_of(&self, detected: &[UserId]) -> Vec<&str> {
        detected.iter().map(|&u| self.user_key(u)).collect()
    }
}

/// Reads a delimited transaction log: one `user<DELIM>merchant` record per
/// line, `#` comments and blank lines skipped, extra fields ignored (real
/// logs carry amounts/timestamps we don't need). Returns the deduplicated
/// purchase graph and the interner for translating results back.
///
/// # Errors
///
/// Fails on I/O errors or records with fewer than two fields.
pub fn read_transactions_csv<R: Read>(
    r: R,
    delimiter: char,
) -> Result<(BipartiteGraph, TransactionInterner), GraphError> {
    let mut r = BufReader::new(r);
    let mut interner = TransactionInterner::new();
    let mut builder = GraphBuilder::new();
    // One line buffer reused across the whole file — `lines()` would
    // allocate a fresh String per record.
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(delimiter);
        let user = fields.next().map(str::trim).filter(|s| !s.is_empty());
        let merchant = fields.next().map(str::trim).filter(|s| !s.is_empty());
        let (Some(user), Some(merchant)) = (user, merchant) else {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("expected `user{delimiter}merchant[{delimiter}…]`"),
            });
        };
        let u = interner.user(user);
        let v = interner.merchant(merchant);
        builder.add_edge(u, v);
    }
    let graph = builder.build_with(DuplicatePolicy::MergeBinary);
    Ok((graph, interner))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_round_trips_keys() {
        let mut i = TransactionInterner::new();
        let a = i.user("PIN-alice");
        let b = i.user("PIN-bob");
        let a2 = i.user("PIN-alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.user_key(a), "PIN-alice");
        assert_eq!(i.num_users(), 2);
        let m = i.merchant("store-1");
        assert_eq!(i.merchant_key(m), "store-1");
        assert_eq!(i.find_user("PIN-bob"), Some(b));
        assert_eq!(i.find_user("PIN-carol"), None);
        assert_eq!(i.find_merchant("store-1"), Some(m));
    }

    #[test]
    fn user_and_merchant_namespaces_are_disjoint() {
        let mut i = TransactionInterner::new();
        let u = i.user("same-key");
        let v = i.merchant("same-key");
        assert_eq!(u.0, 0);
        assert_eq!(v.0, 0); // separate id spaces, no collision
        assert_eq!(i.num_users(), 1);
        assert_eq!(i.num_merchants(), 1);
    }

    #[test]
    fn csv_ingestion_builds_graph() {
        let log = "\
# ts omitted
alice,storeA,12.50
bob,storeA
alice,storeB
alice,storeA
";
        let (g, interner) = read_transactions_csv(log.as_bytes(), ',').unwrap();
        assert_eq!(g.num_users(), 2);
        assert_eq!(g.num_merchants(), 2);
        // Duplicate alice→storeA deduplicated.
        assert_eq!(g.num_edges(), 3);
        let alice = interner.find_user("alice").unwrap();
        assert_eq!(g.user_degree(alice), 2);
    }

    #[test]
    fn tab_delimited_logs_work() {
        let log = "u1\tm1\nu2\tm1\n";
        let (g, _) = read_transactions_csv(log.as_bytes(), '\t').unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_record_reports_line() {
        let log = "alice,storeA\njust-one-field\n";
        let err = read_transactions_csv(log.as_bytes(), ',').unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn detected_ids_translate_back_to_keys() {
        let log = "alice,s1\nbob,s1\ncarol,s2\n";
        let (_, interner) = read_transactions_csv(log.as_bytes(), ',').unwrap();
        let detected = vec![
            interner.find_user("alice").unwrap(),
            interner.find_user("carol").unwrap(),
        ];
        assert_eq!(interner.user_keys_of(&detected), vec!["alice", "carol"]);
    }

    #[test]
    fn empty_log_is_empty_graph() {
        let (g, i) = read_transactions_csv("".as_bytes(), ',').unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(i.num_users(), 0);
    }
}
