//! Error type shared by the graph crate.

use std::fmt;
use std::io;

/// Errors produced while building, slicing, or (de)serializing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A node index referenced a user that is out of range.
    UserOutOfRange {
        /// Offending index.
        id: u32,
        /// Number of users in the graph.
        num_users: usize,
    },
    /// A node index referenced a merchant that is out of range.
    MerchantOutOfRange {
        /// Offending index.
        id: u32,
        /// Number of merchants in the graph.
        num_merchants: usize,
    },
    /// An edge id was out of range.
    EdgeOutOfRange {
        /// Offending edge index.
        id: usize,
        /// Number of edges in the graph.
        num_edges: usize,
    },
    /// A text line could not be parsed as an edge or label record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UserOutOfRange { id, num_users } => {
                write!(f, "user id {id} out of range (num_users = {num_users})")
            }
            GraphError::MerchantOutOfRange { id, num_merchants } => write!(
                f,
                "merchant id {id} out of range (num_merchants = {num_merchants})"
            ),
            GraphError::EdgeOutOfRange { id, num_edges } => {
                write!(f, "edge id {id} out of range (num_edges = {num_edges})")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::UserOutOfRange { id: 9, num_users: 3 };
        assert!(e.to_string().contains("user id 9"));
        let e = GraphError::Parse {
            line: 4,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
