//! Incremental graph construction.
//!
//! Transaction logs arrive as a stream of `(user, merchant)` purchase
//! records; the builder accumulates them, optionally merging repeated
//! purchases into a single weighted edge, and produces a
//! [`BipartiteGraph`] sized to the largest index seen.

use crate::graph::BipartiteGraph;
use crate::ids::{MerchantId, UserId};
use std::collections::HashMap;

/// How repeated `(u, v)` records are treated by [`GraphBuilder::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DuplicatePolicy {
    /// Keep every record as its own (multi-)edge.
    Keep,
    /// Merge duplicates into one edge whose weight is the record count.
    MergeCounting,
    /// Merge duplicates into a single unit-weight edge.
    MergeBinary,
}

/// Accumulates purchase records and builds a [`BipartiteGraph`].
///
/// ```
/// use ensemfdet_graph::{GraphBuilder, UserId, MerchantId};
/// let mut b = GraphBuilder::new();
/// b.add_edge(UserId(0), MerchantId(2));
/// b.add_edge(UserId(0), MerchantId(2)); // repeated purchase
/// let g = b.build_deduplicated();
/// assert_eq!(g.num_edges(), 1);
/// assert_eq!(g.edge_weight(0), 2.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32)>,
    min_users: usize,
    min_merchants: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that will produce a graph with at least the given
    /// node counts, even if higher indexes never appear in an edge.
    pub fn with_min_sizes(min_users: usize, min_merchants: usize) -> Self {
        GraphBuilder {
            edges: Vec::new(),
            min_users,
            min_merchants,
        }
    }

    /// Records one purchase `u → v`.
    pub fn add_edge(&mut self, u: UserId, v: MerchantId) -> &mut Self {
        self.edges.push((u.0, v.0));
        self
    }

    /// Records many purchases at once.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (UserId, MerchantId)>) -> &mut Self {
        self.edges.extend(it.into_iter().map(|(u, v)| (u.0, v.0)));
        self
    }

    /// Number of records accumulated so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when no records have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    fn sizes(&self) -> (usize, usize) {
        let mut nu = self.min_users;
        let mut nv = self.min_merchants;
        for &(u, v) in &self.edges {
            nu = nu.max(u as usize + 1);
            nv = nv.max(v as usize + 1);
        }
        (nu, nv)
    }

    /// Builds keeping every record as its own edge
    /// ([`DuplicatePolicy::Keep`]).
    pub fn build(self) -> BipartiteGraph {
        self.build_with(DuplicatePolicy::Keep)
    }

    /// Builds merging duplicates into counted weights
    /// ([`DuplicatePolicy::MergeCounting`]).
    pub fn build_deduplicated(self) -> BipartiteGraph {
        self.build_with(DuplicatePolicy::MergeCounting)
    }

    /// Builds under an explicit [`DuplicatePolicy`].
    pub fn build_with(self, policy: DuplicatePolicy) -> BipartiteGraph {
        let (nu, nv) = self.sizes();
        match policy {
            DuplicatePolicy::Keep => BipartiteGraph::from_edges(nu, nv, self.edges)
                .expect("builder indexes are in range by construction"),
            DuplicatePolicy::MergeCounting | DuplicatePolicy::MergeBinary => {
                let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
                for e in &self.edges {
                    *counts.entry(*e).or_insert(0) += 1;
                }
                let mut merged: Vec<((u32, u32), u64)> = counts.into_iter().collect();
                // Deterministic edge order regardless of hash seed.
                merged.sort_unstable_by_key(|&(e, _)| e);
                let edges: Vec<(u32, u32)> = merged.iter().map(|&(e, _)| e).collect();
                if policy == DuplicatePolicy::MergeBinary {
                    BipartiteGraph::from_edges(nu, nv, edges)
                        .expect("builder indexes are in range by construction")
                } else {
                    let weights: Vec<f64> = merged.iter().map(|&(_, c)| c as f64).collect();
                    BipartiteGraph::from_weighted_edges(nu, nv, edges, weights)
                        .expect("builder indexes are in range by construction")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn sizes_follow_max_index() {
        let mut b = GraphBuilder::new();
        b.add_edge(UserId(4), MerchantId(9));
        let g = b.build();
        assert_eq!(g.num_users(), 5);
        assert_eq!(g.num_merchants(), 10);
    }

    #[test]
    fn min_sizes_respected() {
        let mut b = GraphBuilder::with_min_sizes(10, 20);
        b.add_edge(UserId(0), MerchantId(0));
        let g = b.build();
        assert_eq!(g.num_users(), 10);
        assert_eq!(g.num_merchants(), 20);
    }

    #[test]
    fn keep_policy_preserves_multi_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(UserId(0), MerchantId(0));
        b.add_edge(UserId(0), MerchantId(0));
        let g = b.build_with(DuplicatePolicy::Keep);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_weighted());
    }

    #[test]
    fn merge_counting_produces_weights() {
        let mut b = GraphBuilder::new();
        b.extend_edges([
            (UserId(0), MerchantId(0)),
            (UserId(0), MerchantId(0)),
            (UserId(0), MerchantId(0)),
            (UserId(1), MerchantId(0)),
        ]);
        let g = b.build_deduplicated();
        assert_eq!(g.num_edges(), 2);
        assert!(g.is_weighted());
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn merge_binary_drops_counts() {
        let mut b = GraphBuilder::new();
        b.extend_edges([
            (UserId(0), MerchantId(0)),
            (UserId(0), MerchantId(0)),
            (UserId(1), MerchantId(1)),
        ]);
        let g = b.build_with(DuplicatePolicy::MergeBinary);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_weighted());
    }

    #[test]
    fn merged_edge_order_is_deterministic() {
        let make = || {
            let mut b = GraphBuilder::new();
            b.extend_edges([
                (UserId(2), MerchantId(1)),
                (UserId(0), MerchantId(3)),
                (UserId(2), MerchantId(1)),
                (UserId(1), MerchantId(0)),
            ]);
            b.build_deduplicated()
        };
        let (g1, g2) = (make(), make());
        assert_eq!(g1.edge_slice(), g2.edge_slice());
        assert_eq!(
            g1.edge_slice(),
            &[(0, 3), (1, 0), (2, 1)],
            "merged edges sorted by (u, v)"
        );
    }

    #[test]
    fn len_and_is_empty() {
        let mut b = GraphBuilder::new();
        assert!(b.is_empty());
        b.add_edge(UserId(0), MerchantId(0));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
