//! Sample *specs*: what a sampler chose, decoupled from materializing it.
//!
//! The ensemble's original data path copied the parent graph N times per
//! scan: every `Sampler::sample` call built a compacted
//! [`crate::SampledGraph`] (two O(parent)-sized intern maps plus fresh
//! edge/weight vectors), and the engine then converted that copy into a
//! [`crate::CsrView`]. A [`SampleSpec`] instead records only the sampler's
//! *selection* — parent edge ids or per-side node ids — so the engine can
//! compact straight from `(parent, spec)` into its reusable `CsrView` via
//! [`crate::CsrView::rebuild_from_spec`], skipping the intermediate
//! `BipartiteGraph` entirely.
//!
//! The two paths are interchangeable by construction:
//! [`SampleSpec::materialize`] routes to the original `SampledGraph`
//! constructors, and `rebuild_from_spec` interns endpoints in the same
//! first-seen order those constructors use, so the resulting views are
//! bit-identical (see the equivalence tests in `csr.rs` and
//! `tests/tests/spec_equivalence.rs`).

use crate::graph::{BipartiteGraph, EdgeId};
use crate::ids::{MerchantId, UserId};
use crate::sampled::SampledGraph;

/// Which selection a [`SampleSpec`] carries, mirroring the four
/// [`SampledGraph`] constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpecKind {
    /// The subgraph spanned by `edges` (Random Edge Sampling's shape).
    #[default]
    EdgeSubset,
    /// All edges incident to `users` (One-side Node Sampling, PIN side).
    UserSubset,
    /// All edges incident to `merchants` (One-side Node Sampling,
    /// merchant side).
    MerchantSubset,
    /// Crossing edges of `users` × `merchants` plus the chosen nodes
    /// themselves, isolated or not (Two-side Node Sampling's shape).
    NodeSubsets,
}

/// A sampler's selection against a fixed parent graph.
///
/// Only the vectors named by [`SampleSpec::kind`] are meaningful; the
/// others stay empty. The struct is designed to be reused across samples
/// ([`SampleSpec::reset`] keeps capacity), so a steady-state sampling run
/// allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct SampleSpec {
    /// Which constructor shape this spec resolves through.
    pub kind: SpecKind,
    /// Chosen parent edge ids (`EdgeSubset` only), in draw order.
    pub edges: Vec<EdgeId>,
    /// Chosen parent users (`UserSubset` / `NodeSubsets`), in draw order.
    pub users: Vec<UserId>,
    /// Chosen parent merchants (`MerchantSubset` / `NodeSubsets`), in
    /// draw order.
    pub merchants: Vec<MerchantId>,
    /// Multiplies every copied edge weight (`EdgeSubset` only); `1.0` for
    /// a plain subgraph, `1/p` for the ε-approximation of Theorem 1.
    pub weight_scale: f64,
}

impl SampleSpec {
    /// A fresh, empty spec (equivalent to `Default` but with the unit
    /// weight scale made explicit).
    pub fn new() -> Self {
        SampleSpec {
            weight_scale: 1.0,
            ..SampleSpec::default()
        }
    }

    /// Clears the selection for reuse, keeping vector capacity.
    pub fn reset(&mut self, kind: SpecKind) {
        self.kind = kind;
        self.edges.clear();
        self.users.clear();
        self.merchants.clear();
        self.weight_scale = 1.0;
    }

    /// Bytes held by the selection itself — the mask path's entire
    /// per-sample footprint beyond the reusable scratch.
    pub fn selection_bytes(&self) -> u64 {
        (self.edges.len() * std::mem::size_of::<EdgeId>()
            + self.users.len() * std::mem::size_of::<UserId>()
            + self.merchants.len() * std::mem::size_of::<MerchantId>()) as u64
    }

    /// Resolves the spec into a compacted [`SampledGraph`] via the
    /// reference constructors — the materializing path the mask path is
    /// checked against.
    pub fn materialize(&self, parent: &BipartiteGraph) -> SampledGraph {
        match self.kind {
            SpecKind::EdgeSubset => {
                SampledGraph::from_edge_subset(parent, &self.edges, self.weight_scale)
            }
            SpecKind::UserSubset => SampledGraph::from_user_subset(parent, &self.users),
            SpecKind::MerchantSubset => {
                SampledGraph::from_merchant_subset(parent, &self.merchants)
            }
            SpecKind::NodeSubsets => {
                SampledGraph::from_node_subsets(parent, &self.users, &self.merchants)
            }
        }
    }
}

/// Local↔parent id maps for a spec-built view: the piece of
/// [`SampledGraph`] that voting still needs once the compacted graph copy
/// is gone.
///
/// `orig_users[local] = parent user id`, in the same first-seen intern
/// order the materializing constructors produce.
#[derive(Clone, Debug, Default)]
pub struct SampleMaps {
    /// `orig_users[local_u] = parent user id`.
    pub orig_users: Vec<u32>,
    /// `orig_merchants[local_v] = parent merchant id`.
    pub orig_merchants: Vec<u32>,
}

impl SampleMaps {
    /// Clears both maps for reuse, keeping capacity.
    pub fn clear(&mut self) {
        self.orig_users.clear();
        self.orig_merchants.clear();
    }

    /// Number of distinct users in the sample.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.orig_users.len()
    }

    /// Number of distinct merchants in the sample.
    #[inline]
    pub fn num_merchants(&self) -> usize {
        self.orig_merchants.len()
    }

    /// Maps a local user id back to the parent graph.
    #[inline]
    pub fn parent_user(&self, local: UserId) -> UserId {
        UserId(self.orig_users[local.index()])
    }

    /// Maps a local merchant id back to the parent graph.
    #[inline]
    pub fn parent_merchant(&self, local: MerchantId) -> MerchantId {
        MerchantId(self.orig_merchants[local.index()])
    }
}

/// Number of low bits of a resolver slot holding the local id; the
/// remaining high bits hold the epoch stamp. The full `u32` id space
/// fits, so every node id the graph layer can represent is resolvable —
/// full-JD-scale parents (~4.3 M users) use a fraction of the range.
const SLOT_LOCAL_BITS: u32 = 32;
/// Mask extracting the local id from a slot.
const SLOT_LOCAL_MASK: u64 = (1 << SLOT_LOCAL_BITS) - 1;

/// Reusable epoch-stamped intern scratch for resolving specs.
///
/// The materializing constructors pay two `O(parent)` `u32::MAX` memsets
/// per sample for their intern maps. This scratch keeps the maps alive
/// across samples and invalidates them by bumping a 32-bit epoch stamp
/// instead, so a steady-state resolve touches only the sampled rows.
/// Buffers grow monotonically to the largest parent seen and the epoch
/// wrap (once per 2³² − 1 resolves) triggers the only full clear — an
/// amortized cost of effectively zero. Slots were originally packed
/// `u32`s with an 8-bit epoch / 24-bit local split; the 2²⁴ side cap
/// that split imposed sat ~4× under the full JD parent graph, so the
/// slots were widened to `u64` — same single-probe layout, headroom for
/// the whole id space.
#[derive(Clone, Debug, Default)]
pub struct SpecResolver {
    /// Packed `(stamp << 32) | local` per parent user: one cache line
    /// covers eight probe targets, and a single array access both
    /// checks and reads the mapping.
    u_slot: Vec<u64>,
    /// Merchant-side twin of `u_slot`.
    v_slot: Vec<u64>,
    /// Current 32-bit stamp, 1..=`u32::MAX`; `0` marks never-touched
    /// slots.
    epoch: u32,
}

impl SpecResolver {
    /// A fresh resolver; buffers grow on first use.
    pub fn new() -> Self {
        SpecResolver::default()
    }

    /// Starts a new resolve against a parent with the given side sizes.
    /// Any side the `u32` id space can address is accepted.
    pub(crate) fn begin(&mut self, num_users: usize, num_merchants: usize) {
        if self.u_slot.len() < num_users {
            self.u_slot.resize(num_users, 0);
        }
        if self.v_slot.len() < num_merchants {
            self.v_slot.resize(num_merchants, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: a restarted counter could collide with stale
            // stamps, so this is the one full clear.
            self.u_slot.fill(0);
            self.v_slot.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Checks that the next local id still fits the slot's low bits.
    ///
    /// Graph sides are addressed by `u32`, which bounds how many distinct
    /// ids can be interned, so this can only fire if a caller feeds a
    /// pre-populated `originals` vector past `u32::MAX` entries — but a
    /// violation would not crash, it would silently corrupt the epoch
    /// bits (`(epoch << 32) | local` with `local ≥ 2³²` carries into the
    /// stamp) and alias unrelated parent ids across samples. Worth one
    /// branch per first-seen node to keep impossible.
    #[inline]
    fn check_local_cap(next_local: usize) {
        assert!(
            next_local <= SLOT_LOCAL_MASK as usize,
            "SpecResolver slot overflow: {next_local} locals exceed the \
             {SLOT_LOCAL_BITS}-bit local-id cap ({SLOT_LOCAL_MASK})",
        );
    }

    /// Assigns `raw` the next dense local user index if unseen this
    /// epoch; returns its local id. Mirrors `sampled.rs`'s `intern`.
    #[inline]
    pub(crate) fn intern_user(&mut self, raw: u32, originals: &mut Vec<u32>) -> u32 {
        let i = raw as usize;
        let slot = self.u_slot[i];
        if (slot >> SLOT_LOCAL_BITS) as u32 == self.epoch {
            (slot & SLOT_LOCAL_MASK) as u32
        } else {
            Self::check_local_cap(originals.len());
            let local = originals.len() as u32;
            self.u_slot[i] = ((self.epoch as u64) << SLOT_LOCAL_BITS) | local as u64;
            originals.push(raw);
            local
        }
    }

    /// Merchant-side twin of [`SpecResolver::intern_user`].
    #[inline]
    pub(crate) fn intern_merchant(&mut self, raw: u32, originals: &mut Vec<u32>) -> u32 {
        let i = raw as usize;
        let slot = self.v_slot[i];
        if (slot >> SLOT_LOCAL_BITS) as u32 == self.epoch {
            (slot & SLOT_LOCAL_MASK) as u32
        } else {
            Self::check_local_cap(originals.len());
            let local = originals.len() as u32;
            self.v_slot[i] = ((self.epoch as u64) << SLOT_LOCAL_BITS) | local as u64;
            originals.push(raw);
            local
        }
    }

    /// The local id of a merchant already interned this epoch, if any.
    #[inline]
    pub(crate) fn merchant_local(&self, raw: u32) -> Option<u32> {
        let slot = self.v_slot[raw as usize];
        if (slot >> SLOT_LOCAL_BITS) as u32 == self.epoch {
            Some((slot & SLOT_LOCAL_MASK) as u32)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent() -> BipartiteGraph {
        BipartiteGraph::from_edges(4, 4, vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 3)])
            .unwrap()
    }

    #[test]
    fn materialize_routes_to_each_constructor() {
        let p = parent();

        let mut spec = SampleSpec::new();
        spec.reset(SpecKind::EdgeSubset);
        spec.edges.extend([1usize, 2, 3]);
        let s = spec.materialize(&p);
        assert_eq!(s.graph.num_edges(), 3);
        assert_eq!(s.graph.num_merchants(), 1);

        spec.reset(SpecKind::UserSubset);
        spec.users.extend([UserId(0), UserId(2)]);
        let s = spec.materialize(&p);
        assert_eq!(s.graph.num_edges(), 4);

        spec.reset(SpecKind::MerchantSubset);
        spec.merchants.push(MerchantId(1));
        let s = spec.materialize(&p);
        assert_eq!(s.graph.num_users(), 3);

        spec.reset(SpecKind::NodeSubsets);
        spec.users.extend([UserId(0), UserId(3)]);
        spec.merchants.extend([MerchantId(1), MerchantId(2)]);
        let s = spec.materialize(&p);
        assert_eq!(s.graph.num_edges(), 1);
        assert_eq!(s.graph.num_users(), 2);
        assert_eq!(s.graph.num_merchants(), 2);
    }

    #[test]
    fn reset_keeps_capacity_and_clears_state() {
        let mut spec = SampleSpec::new();
        spec.edges.extend([1usize, 2, 3]);
        spec.weight_scale = 4.0;
        let cap = spec.edges.capacity();
        spec.reset(SpecKind::UserSubset);
        assert_eq!(spec.kind, SpecKind::UserSubset);
        assert!(spec.edges.is_empty());
        assert_eq!(spec.weight_scale, 1.0);
        assert_eq!(spec.edges.capacity(), cap);
    }

    #[test]
    fn selection_bytes_counts_only_the_selection() {
        let mut spec = SampleSpec::new();
        spec.edges.extend([0usize, 1]);
        spec.users.push(UserId(0));
        assert_eq!(
            spec.selection_bytes(),
            (2 * std::mem::size_of::<EdgeId>() + 4) as u64
        );
    }

    #[test]
    fn resolver_interning_matches_first_seen_order() {
        let mut r = SpecResolver::new();
        let mut orig = Vec::new();
        r.begin(8, 8);
        assert_eq!(r.intern_user(5, &mut orig), 0);
        assert_eq!(r.intern_user(2, &mut orig), 1);
        assert_eq!(r.intern_user(5, &mut orig), 0);
        assert_eq!(orig, vec![5, 2]);
        assert_eq!(r.merchant_local(3), None);
        let mut vorig = Vec::new();
        assert_eq!(r.intern_merchant(3, &mut vorig), 0);
        assert_eq!(r.merchant_local(3), Some(0));

        // A new epoch forgets everything without clearing the buffers.
        let mut orig2 = Vec::new();
        r.begin(8, 8);
        assert_eq!(r.intern_user(2, &mut orig2), 0);
        assert_eq!(orig2, vec![2]);
        assert_eq!(r.merchant_local(3), None);
    }

    /// The packed-u32 layout this replaced capped each side (and every
    /// local id) at 2²⁴ − 1.
    const OLD_U32_CAP: usize = (1 << 24) - 1;

    #[test]
    fn begin_accepts_sides_beyond_the_old_packed_u32_cap() {
        // The retired 8-bit-epoch/24-bit-local u32 layout panicked here;
        // u64 slots make a full-JD-sized side (and well beyond) legal.
        let side = OLD_U32_CAP + 2;
        let mut r = SpecResolver::new();
        let mut orig = Vec::new();
        r.begin(side, 8);
        // Raw ids past the old cap intern and re-probe without touching
        // the epoch bits.
        assert_eq!(r.intern_user(OLD_U32_CAP as u32 + 1, &mut orig), 0);
        assert_eq!(r.intern_user(7, &mut orig), 1);
        assert_eq!(r.intern_user(OLD_U32_CAP as u32 + 1, &mut orig), 0);
        assert_eq!(orig, vec![OLD_U32_CAP as u32 + 1, 7]);
    }

    #[test]
    fn locals_past_the_old_packed_cap_do_not_alias() {
        // Regression for the 2²⁴ boundary: under the packed-u32 layout a
        // local id of exactly 2²⁴ carried into the epoch stamp, aliasing
        // unrelated parent ids across samples. Cross the boundary for
        // real — intern 2²⁴ + 64 distinct users — and verify every
        // mapping round-trips, then that a new epoch forgets them all.
        let side = OLD_U32_CAP + 65;
        let mut r = SpecResolver::new();
        let mut orig = Vec::new();
        r.begin(side, 8);
        for raw in 0..side as u32 {
            assert_eq!(r.intern_user(raw, &mut orig), raw);
        }
        assert_eq!(orig.len(), side);
        // Re-probe a spread of ids either side of the old boundary: each
        // must return its original local, not an epoch-corrupted alias.
        for raw in [
            0u32,
            OLD_U32_CAP as u32 - 1,
            OLD_U32_CAP as u32,
            OLD_U32_CAP as u32 + 1,
            side as u32 - 1,
        ] {
            assert_eq!(r.intern_user(raw, &mut orig), raw, "alias at {raw}");
        }
        assert_eq!(orig.len(), side, "re-probes must not re-intern");

        // A new epoch invalidates every slot, including those whose local
        // ids exceeded the old cap.
        let mut orig2 = Vec::new();
        r.begin(side, 8);
        assert_eq!(r.intern_user(side as u32 - 1, &mut orig2), 0);
        assert_eq!(orig2, vec![side as u32 - 1]);
    }

    #[test]
    #[should_panic(expected = "SpecResolver slot overflow")]
    fn check_local_cap_still_guards_the_u64_packing() {
        // The guard survives the widening: a local id of 2³² would carry
        // into the (now 32-bit) epoch stamp. Unreachable through graph
        // sides (u32-addressed) — exercised directly.
        SpecResolver::check_local_cap(SLOT_LOCAL_MASK as usize + 1);
    }

    #[test]
    fn check_local_cap_accepts_the_last_representable_local_id() {
        SpecResolver::check_local_cap(SLOT_LOCAL_MASK as usize);
    }
}
