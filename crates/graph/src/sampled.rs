//! Subgraphs that remember where they came from.
//!
//! Every sampled graph in the ensemble is a compacted [`BipartiteGraph`]
//! (node ids renumbered to `0..n`) plus index maps back to the parent, so
//! that FDET's detections on the sample can be voted in the parent's id
//! space (Algorithm 2 lines 6–7).

use crate::graph::{BipartiteGraph, EdgeId};
use crate::ids::{MerchantId, UserId};

/// A compacted subgraph of a parent [`BipartiteGraph`] with back-maps.
#[derive(Clone, Debug)]
pub struct SampledGraph {
    /// The compacted subgraph; node ids are local.
    pub graph: BipartiteGraph,
    /// `orig_users[local_u] = parent user id`.
    pub orig_users: Vec<u32>,
    /// `orig_merchants[local_v] = parent merchant id`.
    pub orig_merchants: Vec<u32>,
}

impl SampledGraph {
    /// Subgraph induced by a set of parent edge ids (Random Edge Sampling's
    /// shape): nodes are exactly the endpoints of the chosen edges.
    ///
    /// `weight_scale` multiplies every copied edge weight; pass `1.0` for a
    /// plain subgraph, or `1/p` for the ε-approximation of Theorem 1.
    pub fn from_edge_subset(parent: &BipartiteGraph, edge_ids: &[EdgeId], weight_scale: f64) -> Self {
        let mut u_map = vec![u32::MAX; parent.num_users()];
        let mut v_map = vec![u32::MAX; parent.num_merchants()];
        let mut orig_users = Vec::new();
        let mut orig_merchants = Vec::new();
        let mut edges = Vec::with_capacity(edge_ids.len());
        let mut weights = Vec::with_capacity(edge_ids.len());
        let carry_weights = parent.is_weighted() || weight_scale != 1.0;

        for &e in edge_ids {
            let (u, v) = parent.edge_endpoints(e);
            let lu = intern(&mut u_map, &mut orig_users, u.0);
            let lv = intern(&mut v_map, &mut orig_merchants, v.0);
            edges.push((lu, lv));
            if carry_weights {
                weights.push(parent.edge_weight(e) * weight_scale);
            }
        }

        let graph = if carry_weights {
            BipartiteGraph::from_weighted_edges(orig_users.len(), orig_merchants.len(), edges, weights)
        } else {
            BipartiteGraph::from_edges(orig_users.len(), orig_merchants.len(), edges)
        }
        .expect("interned indexes are dense by construction");

        SampledGraph {
            graph,
            orig_users,
            orig_merchants,
        }
    }

    /// Subgraph induced by a set of parent users (One-side Node Sampling on
    /// the PIN side): keeps *all* edges incident to the chosen users; the
    /// merchant side is whatever those edges touch.
    pub fn from_user_subset(parent: &BipartiteGraph, users: &[UserId]) -> Self {
        let mut edge_ids = Vec::new();
        for &u in users {
            edge_ids.extend(parent.user_edge_ids(u));
        }
        Self::from_edge_subset(parent, &edge_ids, 1.0)
    }

    /// Subgraph induced by a set of parent merchants (One-side Node Sampling
    /// on the merchant side).
    pub fn from_merchant_subset(parent: &BipartiteGraph, merchants: &[MerchantId]) -> Self {
        let mut edge_ids = Vec::new();
        for &v in merchants {
            edge_ids.extend(parent.merchant_edge_ids(v));
        }
        Self::from_edge_subset(parent, &edge_ids, 1.0)
    }

    /// Subgraph induced by node subsets on *both* sides (Two-side Node
    /// Sampling): keeps only edges whose both endpoints were chosen.
    ///
    /// Chosen nodes that end up isolated are still materialized, so the
    /// sample's node count reflects the sampling ratio, as in the paper's
    /// adjacency-matrix cross-section description.
    pub fn from_node_subsets(
        parent: &BipartiteGraph,
        users: &[UserId],
        merchants: &[MerchantId],
    ) -> Self {
        let mut u_map = vec![u32::MAX; parent.num_users()];
        let mut v_map = vec![u32::MAX; parent.num_merchants()];
        let mut orig_users = Vec::with_capacity(users.len());
        let mut orig_merchants = Vec::with_capacity(merchants.len());
        for &u in users {
            intern(&mut u_map, &mut orig_users, u.0);
        }
        for &v in merchants {
            intern(&mut v_map, &mut orig_merchants, v.0);
        }

        let mut edges = Vec::new();
        let mut weights = Vec::new();
        let carry_weights = parent.is_weighted();
        // Iterate the smaller side's adjacency to find crossing edges.
        for &u in users {
            let lu = u_map[u.index()];
            for (v, _e, w) in parent.merchants_of(u) {
                let lv = v_map[v.index()];
                if lv != u32::MAX {
                    edges.push((lu, lv));
                    if carry_weights {
                        weights.push(w);
                    }
                }
            }
        }

        let graph = if carry_weights {
            BipartiteGraph::from_weighted_edges(orig_users.len(), orig_merchants.len(), edges, weights)
        } else {
            BipartiteGraph::from_edges(orig_users.len(), orig_merchants.len(), edges)
        }
        .expect("interned indexes are dense by construction");

        SampledGraph {
            graph,
            orig_users,
            orig_merchants,
        }
    }

    /// A whole-graph "sample" with identity maps. Lets callers run the
    /// ensemble pipeline with sampling disabled (N = 1, S = 1.0).
    pub fn identity(parent: &BipartiteGraph) -> Self {
        SampledGraph {
            graph: parent.clone(),
            orig_users: (0..parent.num_users() as u32).collect(),
            orig_merchants: (0..parent.num_merchants() as u32).collect(),
        }
    }

    /// Maps a local user id back to the parent graph.
    #[inline]
    pub fn parent_user(&self, local: UserId) -> UserId {
        UserId(self.orig_users[local.index()])
    }

    /// Maps a local merchant id back to the parent graph.
    #[inline]
    pub fn parent_merchant(&self, local: MerchantId) -> MerchantId {
        MerchantId(self.orig_merchants[local.index()])
    }
}

/// Assigns `raw` the next dense local index if unseen; returns its local id.
#[inline]
fn intern(map: &mut [u32], originals: &mut Vec<u32>, raw: u32) -> u32 {
    let slot = &mut map[raw as usize];
    if *slot == u32::MAX {
        *slot = originals.len() as u32;
        originals.push(raw);
    }
    *slot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent() -> BipartiteGraph {
        // u0-{m0,m1}, u1-{m1}, u2-{m1,m2}, u3-{m3}
        BipartiteGraph::from_edges(4, 4, vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 3)])
            .unwrap()
    }

    #[test]
    fn edge_subset_compacts_and_maps_back() {
        let p = parent();
        let s = SampledGraph::from_edge_subset(&p, &[1, 2, 3], 1.0); // edges into m1
        assert_eq!(s.graph.num_edges(), 3);
        assert_eq!(s.graph.num_users(), 3); // u0, u1, u2
        assert_eq!(s.graph.num_merchants(), 1); // m1
        assert_eq!(s.parent_merchant(MerchantId(0)), MerchantId(1));
        let parents: Vec<u32> = (0..3).map(|i| s.parent_user(UserId(i)).0).collect();
        assert_eq!(parents, vec![0, 1, 2]);
    }

    #[test]
    fn edge_subset_weight_scaling() {
        let p = parent();
        let s = SampledGraph::from_edge_subset(&p, &[0, 5], 4.0);
        assert!(s.graph.is_weighted());
        assert_eq!(s.graph.edge_weight(0), 4.0);
        assert_eq!(s.graph.total_weight(), 8.0);
    }

    #[test]
    fn edge_subset_unit_scale_stays_unweighted() {
        let p = parent();
        let s = SampledGraph::from_edge_subset(&p, &[0], 1.0);
        assert!(!s.graph.is_weighted());
    }

    #[test]
    fn user_subset_keeps_all_incident_edges() {
        let p = parent();
        let s = SampledGraph::from_user_subset(&p, &[UserId(0), UserId(2)]);
        assert_eq!(s.graph.num_users(), 2);
        assert_eq!(s.graph.num_edges(), 4); // (0,0),(0,1),(2,1),(2,2)
        assert_eq!(s.graph.num_merchants(), 3); // m0, m1, m2
    }

    #[test]
    fn merchant_subset_keeps_all_incident_edges() {
        let p = parent();
        let s = SampledGraph::from_merchant_subset(&p, &[MerchantId(1)]);
        assert_eq!(s.graph.num_merchants(), 1);
        assert_eq!(s.graph.num_users(), 3);
        assert_eq!(s.graph.num_edges(), 3);
    }

    #[test]
    fn two_side_subset_keeps_only_crossing_edges() {
        let p = parent();
        let s = SampledGraph::from_node_subsets(
            &p,
            &[UserId(0), UserId(3)],
            &[MerchantId(1), MerchantId(2)],
        );
        // Only (u0, m1) crosses; u3 and m2 are materialized but isolated.
        assert_eq!(s.graph.num_users(), 2);
        assert_eq!(s.graph.num_merchants(), 2);
        assert_eq!(s.graph.num_edges(), 1);
        let (lu, lv) = s.graph.edge_endpoints(0);
        assert_eq!(s.parent_user(lu), UserId(0));
        assert_eq!(s.parent_merchant(lv), MerchantId(1));
    }

    #[test]
    fn identity_sample_is_whole_graph() {
        let p = parent();
        let s = SampledGraph::identity(&p);
        assert_eq!(s.graph.num_edges(), p.num_edges());
        assert_eq!(s.parent_user(UserId(3)), UserId(3));
        assert_eq!(s.parent_merchant(MerchantId(2)), MerchantId(2));
    }

    #[test]
    fn duplicate_edge_ids_yield_multi_edges() {
        // Samplers sample edges without replacement, but the subgraph type
        // itself tolerates repeats (weighted samplers may pass them).
        let p = parent();
        let s = SampledGraph::from_edge_subset(&p, &[0, 0], 1.0);
        assert_eq!(s.graph.num_edges(), 2);
        assert_eq!(s.graph.num_users(), 1);
    }

    #[test]
    fn weighted_parent_weights_are_carried() {
        let p = BipartiteGraph::from_weighted_edges(2, 1, vec![(0, 0), (1, 0)], vec![3.0, 7.0])
            .unwrap();
        let s = SampledGraph::from_edge_subset(&p, &[1], 1.0);
        assert_eq!(s.graph.edge_weight(0), 7.0);
        let s2 = SampledGraph::from_node_subsets(&p, &[UserId(1)], &[MerchantId(0)]);
        assert_eq!(s2.graph.edge_weight(0), 7.0);
    }
}
