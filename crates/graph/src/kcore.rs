//! Bipartite k-core decomposition.
//!
//! The `k`-core is the maximal subgraph in which every node has degree ≥ k;
//! a node's *core number* is the largest `k` whose core contains it. Dense
//! fraud blocks sit in high cores, which makes core numbers (a) a classic
//! dense-subgraph baseline and (b) a cheap pre-filter for the peeling
//! algorithms. Computed with the standard bucket-queue peeling in
//! `O(|E| + |U| + |V|)`.

use crate::graph::BipartiteGraph;
use crate::ids::{MerchantId, UserId};

/// Core numbers for both sides of a bipartite graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// Core number per user.
    pub user_core: Vec<u32>,
    /// Core number per merchant.
    pub merchant_core: Vec<u32>,
    /// The largest core number present (0 for an edgeless graph).
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// Core number of user `u`.
    #[inline]
    pub fn of_user(&self, u: UserId) -> u32 {
        self.user_core[u.index()]
    }

    /// Core number of merchant `v`.
    #[inline]
    pub fn of_merchant(&self, v: MerchantId) -> u32 {
        self.merchant_core[v.index()]
    }

    /// Users whose core number is at least `k`.
    pub fn users_in_core(&self, k: u32) -> Vec<UserId> {
        self.user_core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(i, _)| UserId(i as u32))
            .collect()
    }
}

/// Computes the core decomposition by bucketed min-degree peeling.
pub fn core_decomposition(g: &BipartiteGraph) -> CoreDecomposition {
    let nu = g.num_users();
    let nv = g.num_merchants();
    let n = nu + nv;
    // Unified node ids: users then merchants.
    let mut degree: Vec<u32> = Vec::with_capacity(n);
    degree.extend(g.user_degrees().iter().map(|&d| d as u32));
    degree.extend(g.merchant_degrees().iter().map(|&d| d as u32));

    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    // Bucket sort nodes by degree.
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &degree {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut order = vec![0usize; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bucket_start.clone();
        for node in 0..n {
            let d = degree[node] as usize;
            order[cursor[d]] = node;
            pos[node] = cursor[d];
            cursor[d] += 1;
        }
    }
    // bucket_start[d] = index of the first node with (current) degree ≥ d.
    let mut core = degree.clone();
    let mut current = vec![false; n]; // removed flag
    let mut edge_dead = vec![false; g.num_edges()];

    for i in 0..n {
        let node = order[i];
        current[node] = true;
        core[node] = degree[node];
        // Relax neighbors with higher current degree: the textbook
        // decrement-and-swap into the lower bucket.
        let relax = |other: usize,
                         degree: &mut Vec<u32>,
                         order: &mut Vec<usize>,
                         pos: &mut Vec<usize>,
                         bucket_start: &mut Vec<usize>| {
            let dv = degree[other] as usize;
            if dv > degree[node] as usize {
                // Swap `other` with the first node of its bucket, then
                // shrink the bucket boundary.
                let pw = bucket_start[dv];
                let w = order[pw];
                let pu = pos[other];
                order.swap(pu, pw);
                pos[other] = pw;
                pos[w] = pu;
                bucket_start[dv] += 1;
                degree[other] -= 1;
            }
        };
        if node < nu {
            for (v, e, _) in g.merchants_of(UserId(node as u32)) {
                if !edge_dead[e] {
                    edge_dead[e] = true;
                    relax(nu + v.index(), &mut degree, &mut order, &mut pos, &mut bucket_start);
                }
            }
        } else {
            for (u, e, _) in g.users_of(MerchantId((node - nu) as u32)) {
                if !edge_dead[e] {
                    edge_dead[e] = true;
                    relax(u.index(), &mut degree, &mut order, &mut pos, &mut bucket_start);
                }
            }
        }
    }

    // Core numbers are monotone along the peeling order; enforce the
    // prefix-max to absorb the usual bucket-boundary wrinkles.
    let mut running = 0u32;
    for &node in order.iter().take(n) {
        running = running.max(core[node]);
        core[node] = running;
    }

    let degeneracy = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        user_core: core[..nu].to_vec(),
        merchant_core: core[nu..].to_vec(),
        degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force core numbers: repeatedly strip nodes with degree < k.
    fn brute_core(g: &BipartiteGraph) -> (Vec<u32>, Vec<u32>) {
        let nu = g.num_users();
        let nv = g.num_merchants();
        let mut ucore = vec![0u32; nu];
        let mut vcore = vec![0u32; nv];
        let max_k = g
            .user_degrees()
            .into_iter()
            .chain(g.merchant_degrees())
            .max()
            .unwrap_or(0) as u32;
        for k in 1..=max_k {
            // Compute the k-core by iterated stripping.
            let mut alive_u = vec![true; nu];
            let mut alive_v = vec![true; nv];
            loop {
                let mut changed = false;
                for (u, alive) in alive_u.iter_mut().enumerate() {
                    if *alive {
                        let d = g
                            .merchants_of(UserId(u as u32))
                            .filter(|(v, _, _)| alive_v[v.index()])
                            .count();
                        if (d as u32) < k {
                            *alive = false;
                            changed = true;
                        }
                    }
                }
                for (v, alive) in alive_v.iter_mut().enumerate() {
                    if *alive {
                        let d = g
                            .users_of(MerchantId(v as u32))
                            .filter(|(u, _, _)| alive_u[u.index()])
                            .count();
                        if (d as u32) < k {
                            *alive = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for u in 0..nu {
                if alive_u[u] {
                    ucore[u] = k;
                }
            }
            for v in 0..nv {
                if alive_v[v] {
                    vcore[v] = k;
                }
            }
        }
        (ucore, vcore)
    }

    fn planted() -> BipartiteGraph {
        let mut edges = Vec::new();
        // 4×3 complete block: its nodes are in the 3-core (users have
        // degree 3, merchants 4).
        for u in 0..4u32 {
            for v in 0..3u32 {
                edges.push((u, v));
            }
        }
        // A path: low core.
        edges.push((4, 3));
        edges.push((5, 3));
        edges.push((5, 4));
        BipartiteGraph::from_edges(6, 5, edges).unwrap()
    }

    #[test]
    fn matches_brute_force_on_planted() {
        let g = planted();
        let c = core_decomposition(&g);
        let (bu, bv) = brute_core(&g);
        assert_eq!(c.user_core, bu);
        assert_eq!(c.merchant_core, bv);
        assert_eq!(c.degeneracy, 3);
    }

    #[test]
    fn block_users_have_high_core() {
        let g = planted();
        let c = core_decomposition(&g);
        for u in 0..4 {
            assert_eq!(c.of_user(UserId(u)), 3);
        }
        assert!(c.of_user(UserId(4)) <= 1);
        assert_eq!(c.users_in_core(3).len(), 4);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..12u64 {
            let mut edges = Vec::new();
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..60 {
                edges.push(((next() % 10) as u32, (next() % 8) as u32));
            }
            edges.sort_unstable();
            edges.dedup();
            let g = BipartiteGraph::from_edges(10, 8, edges).unwrap();
            let c = core_decomposition(&g);
            let (bu, bv) = brute_core(&g);
            assert_eq!(c.user_core, bu, "seed {seed}");
            assert_eq!(c.merchant_core, bv, "seed {seed}");
        }
    }

    #[test]
    fn edgeless_graph_is_zero_core() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]).unwrap();
        let c = core_decomposition(&g);
        assert_eq!(c.degeneracy, 0);
        assert!(c.user_core.iter().all(|&k| k == 0));
    }

    #[test]
    fn star_is_one_core() {
        let g = BipartiteGraph::from_edges(5, 1, (0..5u32).map(|u| (u, 0)).collect()).unwrap();
        let c = core_decomposition(&g);
        assert!(c.user_core.iter().all(|&k| k == 1));
        assert_eq!(c.merchant_core, vec![1]);
    }
}
