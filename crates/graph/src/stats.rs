//! Dataset statistics in the shape of the paper's Table I, plus degree
//! distributions used by the sampling-theory module.

use crate::graph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a bipartite graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|U|` — user (PIN) nodes.
    pub num_users: usize,
    /// `|V|` — merchant nodes.
    pub num_merchants: usize,
    /// `|E|`.
    pub num_edges: usize,
    /// `|E| / |U|`.
    pub avg_user_degree: f64,
    /// `|E| / |V|`.
    pub avg_merchant_degree: f64,
    /// Largest user degree.
    pub max_user_degree: usize,
    /// Largest merchant degree.
    pub max_merchant_degree: usize,
    /// Users with no incident edge.
    pub isolated_users: usize,
    /// Merchants with no incident edge.
    pub isolated_merchants: usize,
    /// Edge density `|E| / (|U| · |V|)`.
    pub density: f64,
}

impl GraphStats {
    /// Computes all statistics in one pass over the degree arrays.
    pub fn of(g: &BipartiteGraph) -> Self {
        let ud = g.user_degrees();
        let vd = g.merchant_degrees();
        let density = if g.num_users() == 0 || g.num_merchants() == 0 {
            0.0
        } else {
            g.num_edges() as f64 / (g.num_users() as f64 * g.num_merchants() as f64)
        };
        GraphStats {
            num_users: g.num_users(),
            num_merchants: g.num_merchants(),
            num_edges: g.num_edges(),
            avg_user_degree: g.avg_user_degree(),
            avg_merchant_degree: g.avg_merchant_degree(),
            max_user_degree: ud.iter().copied().max().unwrap_or(0),
            max_merchant_degree: vd.iter().copied().max().unwrap_or(0),
            isolated_users: ud.iter().filter(|&&d| d == 0).count(),
            isolated_merchants: vd.iter().filter(|&&d| d == 0).count(),
            density,
        }
    }
}

/// Histogram of node degrees: `histogram[q] = f_D(q)`, the number of nodes of
/// degree `q` (Eq. 3 of the paper uses this as `fD(q)`).
pub fn degree_histogram(degrees: &[usize]) -> Vec<usize> {
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for &d in degrees {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_graph() {
        let g =
            BipartiteGraph::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.num_users, 3);
        assert_eq!(s.num_merchants, 3);
        assert_eq!(s.num_edges, 5);
        assert_eq!(s.max_merchant_degree, 3);
        assert_eq!(s.max_user_degree, 2);
        assert_eq!(s.isolated_users, 0);
        assert!((s.density - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn stats_count_isolated_nodes() {
        let g = BipartiteGraph::from_edges(3, 4, vec![(0, 0)]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.isolated_users, 2);
        assert_eq!(s.isolated_merchants, 3);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, vec![]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.max_user_degree, 0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn degree_histogram_counts() {
        assert_eq!(degree_histogram(&[0, 1, 1, 3]), vec![1, 2, 0, 1]);
        assert_eq!(degree_histogram(&[]), vec![0]);
    }

    #[test]
    fn stats_clone_and_eq() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 1)]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.clone(), s);
    }
}
