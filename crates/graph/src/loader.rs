//! Chunked parallel loading of delimited transaction logs.
//!
//! Real transaction logs are `user,merchant[,amount]` lines — the shape of
//! SNIPPETS.md snippet 2's `build_graph_bipartite` input. This module turns
//! such a log into an **amount-summed weighted** [`BipartiteGraph`] plus an
//! [`ArenaTransactionInterner`], using all available cores without giving
//! up determinism:
//!
//! 1. **Split** the input at line boundaries into one chunk per worker.
//! 2. **Parse** chunks in parallel under `std::thread::scope`, each into a
//!    *local* dictionary (an [`ArenaTransactionInterner`]) and local-id
//!    records — no shared state, no locks.
//! 3. **Merge** sequentially: walk each chunk's local keys in
//!    first-appearance order, chunk 0 first, interning into the final
//!    dictionary, then remap the records through per-chunk translation
//!    tables.
//!
//! The merge makes ids *bit-identical for every worker count*: within a
//! chunk, local first-appearance order is file order, so interning chunk
//! 0's dictionary then chunk 1's replays exactly the key-first-occurrence
//! sequence a serial scan would see — a key first seen in chunk `c` at
//! local position `p` is interned before any key first seen later in `c`
//! or in any later chunk. Amounts are likewise summed in file order
//! (records are remapped chunk by chunk, in order) so the resulting `f64`
//! weights are bit-identical too, and edges are canonicalized by sorting
//! on `(user, merchant)` exactly like
//! [`DuplicatePolicy::MergeCounting`](crate::builder::DuplicatePolicy).
//! The same invariance is enforced end-to-end by the bench suite's
//! equivalence gate before any timing runs.

use crate::arena::ArenaTransactionInterner;
use crate::error::GraphError;
use crate::graph::BipartiteGraph;
use std::collections::HashMap;
use std::path::Path;

/// Options for [`load_transactions`].
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Field delimiter (`,` for CSV, `\t` for TSV logs).
    pub delimiter: char,
    /// Parse workers. `1` parses serially on the calling thread; higher
    /// values split the input into that many line-aligned chunks. Ids,
    /// weights, and the final graph are identical for every value.
    pub workers: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            delimiter: ',',
            workers: 1,
        }
    }
}

/// A loaded transaction log: the weighted purchase graph and the id maps
/// to translate detection results back to log keys.
#[derive(Clone, Debug)]
pub struct LoadedLog {
    /// Amount-summed weighted bipartite graph (weight 1.0 per record when
    /// the log has no amount column).
    pub graph: BipartiteGraph,
    /// Key ↔ dense-id maps for both sides.
    pub interner: ArenaTransactionInterner,
    /// Number of transaction records parsed (excluding blanks/comments).
    pub records: usize,
    /// Total input lines scanned, including blanks and comments.
    pub lines: usize,
}

/// One record parsed within a chunk, ids local to the chunk's dictionary.
struct LocalRecord {
    user: u32,
    merchant: u32,
    amount: f64,
}

/// Everything a parse worker produces for its chunk.
struct ParsedChunk {
    interner: ArenaTransactionInterner,
    records: Vec<LocalRecord>,
    /// Lines scanned in this chunk (full count unless `error` is set, in
    /// which case counting stopped at the failing line).
    lines: usize,
    /// First malformed line: (line offset *within the chunk*, message).
    error: Option<(usize, String)>,
}

/// Parses one `user<delim>merchant[<delim>amount]` line.
///
/// Returns `Ok(None)` for blank lines and `#` comments, `Ok(Some(...))`
/// for a record (amount defaults to `1.0`), and a message for malformed
/// input: fewer than two non-empty fields, or an unparseable amount.
/// Fields beyond the third are ignored (real logs carry timestamps).
///
/// This is the single validation authority for the format — the parallel
/// loader and the service's `text/csv` ingest route both call it, so both
/// agree on what a malformed record is.
pub fn parse_csv_record(
    line: &str,
    delimiter: char,
) -> Result<Option<(&str, &str, f64)>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split(delimiter);
    let user = fields.next().map(str::trim).filter(|s| !s.is_empty());
    let merchant = fields.next().map(str::trim).filter(|s| !s.is_empty());
    let (Some(user), Some(merchant)) = (user, merchant) else {
        return Err(format!("expected `user{delimiter}merchant[{delimiter}amount]`"));
    };
    let amount = match fields.next().map(str::trim) {
        None | Some("") => 1.0,
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|e| format!("bad amount `{raw}`: {e}"))?,
    };
    if !amount.is_finite() {
        return Err(format!("bad amount `{amount}`: not finite"));
    }
    Ok(Some((user, merchant, amount)))
}

/// Splits `data` into at most `n` chunks on `\n` boundaries. Every byte is
/// covered exactly once; chunks are non-empty. Public because the
/// service's `text/csv` ingest route chunks request bodies the same way.
pub fn split_line_chunks(data: &[u8], n: usize) -> Vec<&[u8]> {
    let mut chunks = Vec::with_capacity(n);
    if data.is_empty() {
        return chunks;
    }
    let target = data.len().div_ceil(n.max(1));
    let mut start = 0usize;
    while start < data.len() {
        let mut end = (start + target).min(data.len());
        // Advance to just past the next newline so no line is split.
        while end < data.len() && data[end - 1] != b'\n' {
            end += 1;
        }
        chunks.push(&data[start..end]);
        start = end;
    }
    chunks
}

/// Parses one chunk into local-id records. Never touches shared state.
fn parse_chunk(chunk: &[u8], delimiter: char) -> ParsedChunk {
    let mut interner = ArenaTransactionInterner::new();
    let mut records = Vec::new();
    let mut lines = 0usize;
    let mut error = None;
    for raw in chunk.split(|&b| b == b'\n') {
        lines += 1;
        let text = match std::str::from_utf8(raw) {
            Ok(t) => t,
            Err(_) => {
                error = Some((lines, "line is not valid UTF-8".to_string()));
                break;
            }
        };
        match parse_csv_record(text, delimiter) {
            Ok(None) => {}
            Ok(Some((user, merchant, amount))) => {
                let u = interner.user(user);
                let v = interner.merchant(merchant);
                records.push(LocalRecord {
                    user: u.0,
                    merchant: v.0,
                    amount,
                });
            }
            Err(message) => {
                error = Some((lines, message));
                break;
            }
        }
    }
    // `split` on a `\n`-terminated chunk yields one trailing empty piece
    // that is not a real line; drop it from the count.
    if error.is_none() && chunk.last() == Some(&b'\n') {
        lines -= 1;
    }
    ParsedChunk {
        interner,
        records,
        lines,
        error,
    }
}

/// Loads a delimited transaction log from memory into an amount-summed
/// weighted bipartite graph. See the module docs for the determinism
/// argument; ids and weights are identical for every `options.workers`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] with the 1-based global line number of
/// the first malformed record (fewer than two fields, bad amount, or
/// invalid UTF-8), or a graph-construction error.
pub fn load_transactions(data: &[u8], options: &LoadOptions) -> Result<LoadedLog, GraphError> {
    let workers = options.workers.max(1);
    let chunks = split_line_chunks(data, workers);

    let parsed: Vec<ParsedChunk> = if workers <= 1 || chunks.len() <= 1 {
        chunks.iter().map(|c| parse_chunk(c, options.delimiter)).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&chunk| {
                    let delimiter = options.delimiter;
                    scope.spawn(move || parse_chunk(chunk, delimiter))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("parse worker panicked")).collect()
        })
    };

    // Surface the first (lowest-line) malformed record. Chunks before the
    // first erring one completed cleanly, so their line counts are exact
    // and prefix-summing them yields the global line number.
    let mut line_base = 0usize;
    for chunk in &parsed {
        if let Some((local_line, message)) = &chunk.error {
            return Err(GraphError::Parse {
                line: line_base + local_line,
                message: message.clone(),
            });
        }
        line_base += chunk.lines;
    }
    let lines = line_base;

    // Sequential merge: intern each chunk's dictionary in first-appearance
    // order (chunk order = file order), building local→global remaps.
    let mut interner = ArenaTransactionInterner::new();
    let mut user_maps: Vec<Vec<u32>> = Vec::with_capacity(parsed.len());
    let mut merchant_maps: Vec<Vec<u32>> = Vec::with_capacity(parsed.len());
    for chunk in &parsed {
        let user_map: Vec<u32> =
            chunk.interner.users().keys().map(|k| interner.user(k).0).collect();
        let merchant_map: Vec<u32> =
            chunk.interner.merchants().keys().map(|k| interner.merchant(k).0).collect();
        user_maps.push(user_map);
        merchant_maps.push(merchant_map);
    }

    // Amount aggregation in strict file order: first-appearance edge slots,
    // sums accumulated record by record, chunk by chunk — so the f64 sums
    // are bit-identical no matter how the input was chunked.
    let mut slot_of: HashMap<(u32, u32), usize> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut records = 0usize;
    for (c, chunk) in parsed.iter().enumerate() {
        records += chunk.records.len();
        for r in &chunk.records {
            let pair = (user_maps[c][r.user as usize], merchant_maps[c][r.merchant as usize]);
            match slot_of.entry(pair) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    weights[*e.get()] += r.amount;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(edges.len());
                    edges.push(pair);
                    weights.push(r.amount);
                }
            }
        }
    }

    // Canonical edge order, matching the builder's merge policies: sort by
    // (user, merchant). Pairs are unique, so the order is total.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_unstable_by_key(|&i| edges[i]);
    let edges_sorted: Vec<(u32, u32)> = order.iter().map(|&i| edges[i]).collect();
    let weights_sorted: Vec<f64> = order.iter().map(|&i| weights[i]).collect();

    let graph = BipartiteGraph::from_weighted_edges(
        interner.num_users(),
        interner.num_merchants(),
        edges_sorted,
        weights_sorted,
    )?;
    Ok(LoadedLog {
        graph,
        interner,
        records,
        lines,
    })
}

/// Convenience: load a transaction log from a filesystem path.
///
/// # Errors
///
/// Propagates I/O failures and [`load_transactions`] errors.
pub fn load_transactions_path(
    path: impl AsRef<Path>,
    options: &LoadOptions,
) -> Result<LoadedLog, GraphError> {
    let data = std::fs::read(path)?;
    load_transactions(&data, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(data: &str, workers: usize) -> LoadedLog {
        load_transactions(
            data.as_bytes(),
            &LoadOptions {
                delimiter: ',',
                workers,
            },
        )
        .unwrap()
    }

    #[test]
    fn amounts_sum_per_edge() {
        let log = "alice,storeA,10.5\nbob,storeA,2\nalice,storeA,4.5\n";
        let loaded = load(log, 1);
        assert_eq!(loaded.records, 3);
        assert_eq!(loaded.graph.num_edges(), 2);
        assert!(loaded.graph.is_weighted());
        let alice = loaded.interner.find_user("alice").unwrap();
        let store = loaded.interner.find_merchant("storeA").unwrap();
        let (eid, _, _, w) = loaded
            .graph
            .edges()
            .find(|&(_, u, v, _)| u == alice && v == store)
            .unwrap();
        assert_eq!(w, 15.0);
        assert_eq!(loaded.graph.edge_weight(eid), 15.0);
    }

    #[test]
    fn missing_amount_defaults_to_one() {
        let log = "a,m\na,m\na,m,\n";
        let loaded = load(log, 1);
        assert_eq!(loaded.graph.num_edges(), 1);
        assert_eq!(loaded.graph.edge_weight(0), 3.0);
    }

    #[test]
    fn extra_fields_are_ignored() {
        let log = "a,m,2.0,2021-01-01T00:00:00Z,extra\n";
        let loaded = load(log, 1);
        assert_eq!(loaded.graph.edge_weight(0), 2.0);
    }

    #[test]
    fn malformed_line_reports_global_line_number() {
        let log = "a,m\n# comment\n\nb,m\nonly-one-field\nc,m\n";
        for workers in [1, 2, 4] {
            let err = load_transactions(
                log.as_bytes(),
                &LoadOptions {
                    delimiter: ',',
                    workers,
                },
            )
            .unwrap_err();
            match err {
                GraphError::Parse { line, message } => {
                    assert_eq!(line, 5, "workers={workers}");
                    assert!(message.contains("expected"), "workers={workers}: {message}");
                }
                other => panic!("unexpected: {other}"),
            }
        }
    }

    #[test]
    fn bad_amount_is_a_typed_error() {
        let log = "a,m,12.5\nb,m,not-a-number\n";
        let err = load_transactions(log.as_bytes(), &LoadOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bad amount"), "{message}");
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn non_finite_amount_rejected() {
        let err = load_transactions(b"a,m,inf\n", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn worker_counts_are_bit_identical() {
        // Adversarial log: shared keys across what will become chunk
        // boundaries, duplicate edges, comments, no trailing newline.
        let mut log = String::from("# transaction log\n");
        for i in 0..200 {
            log.push_str(&format!("u{},m{},{}.25\n", i % 17, (i * 3) % 11, i));
        }
        log.push_str("u0,m0,0.125"); // unterminated final line
        let base = load(&log, 1);
        for workers in [2, 3, 4, 8] {
            let other = load(&log, workers);
            assert_eq!(base.records, other.records, "workers={workers}");
            assert_eq!(base.lines, other.lines, "workers={workers}");
            assert_eq!(
                base.interner.users().keys().collect::<Vec<_>>(),
                other.interner.users().keys().collect::<Vec<_>>(),
                "user ids diverged at workers={workers}"
            );
            assert_eq!(
                base.interner.merchants().keys().collect::<Vec<_>>(),
                other.interner.merchants().keys().collect::<Vec<_>>(),
                "merchant ids diverged at workers={workers}"
            );
            assert_eq!(
                base.graph.edge_slice(),
                other.graph.edge_slice(),
                "edges diverged at workers={workers}"
            );
            let base_w: Vec<u64> = (0..base.graph.num_edges())
                .map(|e| base.graph.edge_weight(e).to_bits())
                .collect();
            let other_w: Vec<u64> = (0..other.graph.num_edges())
                .map(|e| other.graph.edge_weight(e).to_bits())
                .collect();
            assert_eq!(base_w, other_w, "weights diverged at workers={workers}");
        }
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let loaded = load("", 4);
        assert_eq!(loaded.records, 0);
        assert_eq!(loaded.lines, 0);
        assert_eq!(loaded.graph.num_edges(), 0);
        assert_eq!(loaded.interner.num_users(), 0);
    }

    #[test]
    fn ids_match_legacy_serial_interner() {
        let log = "carol,s9\nalice,s1\ncarol,s1\nbob,s9\n";
        let loaded = load(log, 3);
        let (_, legacy) = crate::interner::read_transactions_csv(log.as_bytes(), ',').unwrap();
        for key in ["carol", "alice", "bob"] {
            assert_eq!(
                loaded.interner.find_user(key).unwrap(),
                legacy.find_user(key).unwrap(),
                "{key}"
            );
        }
        for key in ["s9", "s1"] {
            assert_eq!(
                loaded.interner.find_merchant(key).unwrap(),
                legacy.find_merchant(key).unwrap(),
                "{key}"
            );
        }
    }

    #[test]
    fn chunk_split_covers_every_byte() {
        let data = b"aa\nbb\ncc\ndd\nee";
        for n in 1..8 {
            let chunks = split_line_chunks(data, n);
            let total: usize = chunks.iter().map(|c| c.len()).sum();
            assert_eq!(total, data.len(), "n={n}");
            let joined: Vec<u8> = chunks.concat();
            assert_eq!(joined, data, "n={n}");
            for c in &chunks {
                assert!(!c.is_empty());
            }
        }
    }
}
