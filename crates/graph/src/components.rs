//! Connected components of a bipartite graph.
//!
//! Fraud groups in the paper form (near-)disjoint dense subgraphs; component
//! analysis is useful for diagnostics (how fragmented is a detection?) and
//! for tests that plant disjoint blocks.

use crate::graph::BipartiteGraph;
use crate::ids::{MerchantId, UserId};

/// Component labelling of both sides of a bipartite graph.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component id per user; `usize::MAX` never appears.
    pub user_comp: Vec<usize>,
    /// Component id per merchant.
    pub merchant_comp: Vec<usize>,
    /// Number of components (isolated nodes each count as their own).
    pub count: usize,
}

impl Components {
    /// Component id of user `u`.
    #[inline]
    pub fn of_user(&self, u: UserId) -> usize {
        self.user_comp[u.index()]
    }

    /// Component id of merchant `v`.
    #[inline]
    pub fn of_merchant(&self, v: MerchantId) -> usize {
        self.merchant_comp[v.index()]
    }

    /// Sizes (user count, merchant count, edge-endpoint-free) per component.
    pub fn sizes(&self) -> Vec<(usize, usize)> {
        let mut sizes = vec![(0usize, 0usize); self.count];
        for &c in &self.user_comp {
            sizes[c].0 += 1;
        }
        for &c in &self.merchant_comp {
            sizes[c].1 += 1;
        }
        sizes
    }
}

/// Labels connected components with an iterative BFS (no recursion: degree
/// and component sizes are unbounded in transaction graphs).
pub fn connected_components(g: &BipartiteGraph) -> Components {
    const UNSEEN: usize = usize::MAX;
    let mut user_comp = vec![UNSEEN; g.num_users()];
    let mut merchant_comp = vec![UNSEEN; g.num_merchants()];
    let mut count = 0usize;
    let mut queue: Vec<(bool, u32)> = Vec::new();

    let assign_from_user = |start: u32,
                                user_comp: &mut Vec<usize>,
                                merchant_comp: &mut Vec<usize>,
                                queue: &mut Vec<(bool, u32)>,
                                comp: usize| {
        queue.clear();
        queue.push((true, start));
        user_comp[start as usize] = comp;
        while let Some((is_user, n)) = queue.pop() {
            if is_user {
                for (v, _, _) in g.merchants_of(UserId(n)) {
                    if merchant_comp[v.index()] == UNSEEN {
                        merchant_comp[v.index()] = comp;
                        queue.push((false, v.0));
                    }
                }
            } else {
                for (u, _, _) in g.users_of(MerchantId(n)) {
                    if user_comp[u.index()] == UNSEEN {
                        user_comp[u.index()] = comp;
                        queue.push((true, u.0));
                    }
                }
            }
        }
    };

    for u in 0..g.num_users() as u32 {
        if user_comp[u as usize] == UNSEEN {
            assign_from_user(u, &mut user_comp, &mut merchant_comp, &mut queue, count);
            count += 1;
        }
    }
    // Merchants unreachable from any user are isolated merchant components.
    for comp in merchant_comp.iter_mut() {
        if *comp == UNSEEN {
            *comp = count;
            count += 1;
        }
    }

    Components {
        user_comp,
        merchant_comp,
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_blocks_are_two_components() {
        // Block A: u0,u1 × m0; Block B: u2 × m1,m2.
        let g =
            BipartiteGraph::from_edges(3, 3, vec![(0, 0), (1, 0), (2, 1), (2, 2)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.of_user(UserId(0)), c.of_user(UserId(1)));
        assert_ne!(c.of_user(UserId(0)), c.of_user(UserId(2)));
        assert_eq!(c.of_merchant(MerchantId(1)), c.of_merchant(MerchantId(2)));
        let sizes = c.sizes();
        let mut totals: Vec<(usize, usize)> = sizes.clone();
        totals.sort();
        assert_eq!(totals, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn isolated_nodes_form_singleton_components() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0)]).unwrap();
        let c = connected_components(&g);
        // {u0, m0}, {u1}, {m1}
        assert_eq!(c.count, 3);
        assert_ne!(c.of_user(UserId(1)), c.of_user(UserId(0)));
        assert_ne!(c.of_merchant(MerchantId(1)), c.of_merchant(MerchantId(0)));
    }

    #[test]
    fn fully_connected_is_one_component() {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..3u32 {
                edges.push((u, v));
            }
        }
        let g = BipartiteGraph::from_edges(4, 3, edges).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.sizes(), vec![(4, 3)]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = BipartiteGraph::from_edges(0, 0, vec![]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
    }

    #[test]
    fn chain_is_single_component() {
        // u0-m0-u1-m1-u2: a path alternating sides.
        let g = BipartiteGraph::from_edges(3, 2, vec![(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
    }
}
