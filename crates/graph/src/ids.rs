//! Strongly-typed node identifiers.
//!
//! Users (PINs) and merchants live in disjoint index spaces; mixing them up
//! is the classic bipartite-graph bug. Newtypes make the compiler catch it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a user (PIN) node, `0..num_users`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Index of a merchant node, `0..num_merchants`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MerchantId(pub u32);

/// Either side of the bipartite graph, for APIs that operate on any node
/// (e.g. the greedy peeling order, which interleaves both sides).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum NodeRef {
    /// A user-side node.
    User(UserId),
    /// A merchant-side node.
    Merchant(MerchantId),
}

impl UserId {
    /// The raw index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MerchantId {
    /// The raw index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeRef {
    /// `true` when this refers to a user-side node.
    #[inline]
    pub fn is_user(self) -> bool {
        matches!(self, NodeRef::User(_))
    }

    /// The user id, if this is a user node.
    #[inline]
    pub fn as_user(self) -> Option<UserId> {
        match self {
            NodeRef::User(u) => Some(u),
            NodeRef::Merchant(_) => None,
        }
    }

    /// The merchant id, if this is a merchant node.
    #[inline]
    pub fn as_merchant(self) -> Option<MerchantId> {
        match self {
            NodeRef::User(_) => None,
            NodeRef::Merchant(v) => Some(v),
        }
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for MerchantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MerchantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<UserId> for NodeRef {
    fn from(u: UserId) -> Self {
        NodeRef::User(u)
    }
}

impl From<MerchantId> for NodeRef {
    fn from(v: MerchantId) -> Self {
        NodeRef::Merchant(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_index_and_display() {
        assert_eq!(UserId(7).index(), 7);
        assert_eq!(MerchantId(3).index(), 3);
        assert_eq!(format!("{:?}", UserId(7)), "u7");
        assert_eq!(format!("{:?}", MerchantId(3)), "m3");
        assert_eq!(format!("{}", UserId(7)), "7");
    }

    #[test]
    fn node_ref_accessors() {
        let u: NodeRef = UserId(1).into();
        let v: NodeRef = MerchantId(2).into();
        assert!(u.is_user());
        assert!(!v.is_user());
        assert_eq!(u.as_user(), Some(UserId(1)));
        assert_eq!(u.as_merchant(), None);
        assert_eq!(v.as_merchant(), Some(MerchantId(2)));
        assert_eq!(v.as_user(), None);
    }

    #[test]
    fn node_ref_ordering_is_total() {
        // Users sort before merchants; within a side, by index. This gives a
        // deterministic iteration order for detected-set reporting.
        let mut nodes = vec![
            NodeRef::Merchant(MerchantId(0)),
            NodeRef::User(UserId(5)),
            NodeRef::User(UserId(1)),
        ];
        nodes.sort();
        assert_eq!(
            nodes,
            vec![
                NodeRef::User(UserId(1)),
                NodeRef::User(UserId(5)),
                NodeRef::Merchant(MerchantId(0)),
            ]
        );
    }
}
