#![warn(missing_docs)]

//! Bipartite graph substrate for the EnsemFDet fraud-detection system.
//!
//! The paper operates on a *"who buy-from where"* graph `G = (U ∪ V, E)`:
//! user (PIN) nodes on one side, merchant nodes on the other, and an edge for
//! every purchase relationship. This crate provides the storage and
//! manipulation layer every other crate builds on:
//!
//! - [`BipartiteGraph`]: immutable CSR storage indexed from *both* sides, so
//!   peeling algorithms can walk `u → {v}` and `v → {u}` in O(degree).
//! - [`CsrView`]: a flat, immutable CSR snapshot of the alive subgraph with
//!   O(1) neighbor *slices* (neighbor ids, edge ids, and weights as parallel
//!   contiguous arrays) — the memory layout of the high-performance peeling
//!   engine in `ensemfdet::engine`.
//! - [`GraphBuilder`]: incremental, duplicate-merging construction.
//! - [`SampledGraph`]: a compacted subgraph plus index maps back to the
//!   parent graph, the unit of work for the ensemble.
//! - [`SampleSpec`] / [`SpecResolver`]: the zero-copy alternative — a
//!   sampler's raw selection resolved straight into a [`CsrView`] via
//!   [`CsrView::rebuild_from_spec`], with [`SampleMaps`] carrying the
//!   local↔parent id maps and no intermediate graph copy.
//! - [`io`]: plain-text edge-list and label-file round-trips.
//! - [`arena`]: allocation-lean string interning — [`ArenaInterner`] (byte
//!   arena + spans) and the sharded, lock-striped [`ShardedInterner`] for
//!   concurrent ingest with dense arrival-order ids.
//! - [`loader`]: chunked parallel `user,merchant[,amount]` log loading with
//!   worker-count-invariant ids and amount-summed edge weights.
//! - [`stats`]: the dataset statistics reported in Table I of the paper.
//! - [`components`]: connected components, used by tests and diagnostics.
//!
//! # Example
//!
//! ```
//! use ensemfdet_graph::{GraphBuilder, UserId, MerchantId};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(UserId(0), MerchantId(0));
//! b.add_edge(UserId(0), MerchantId(1));
//! b.add_edge(UserId(1), MerchantId(1));
//! let g = b.build();
//! assert_eq!(g.num_users(), 2);
//! assert_eq!(g.num_merchants(), 2);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.user_degree(UserId(0)), 2);
//! ```

pub mod arena;
pub mod builder;
pub mod components;
pub mod csr;
pub mod delta;
pub mod error;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod kcore;
pub mod loader;
pub mod sampled;
pub mod spec;
pub mod stats;

pub use arena::{
    ArenaInterner, ArenaTransactionInterner, ConcurrentTransactionInterner, ShardedInterner,
};
pub use builder::GraphBuilder;
pub use csr::{CsrView, NeighborSlices};
pub use delta::{GraphDelta, GraphDims};
pub use error::GraphError;
pub use graph::{BipartiteGraph, EdgeId, NeighborIter};
pub use ids::{MerchantId, NodeRef, UserId};
pub use interner::{read_transactions_csv, TransactionInterner};
pub use kcore::{core_decomposition, CoreDecomposition};
pub use loader::{load_transactions, load_transactions_path, LoadOptions, LoadedLog};
pub use sampled::SampledGraph;
pub use spec::{SampleMaps, SampleSpec, SpecKind, SpecResolver};
pub use stats::GraphStats;
