//! Property-based tests for the detection core: the Charikar approximation
//! guarantee, peel/FDET invariants, and vote-aggregation laws.

use ensemfdet::peel::{density_of_subset, peel_densest_full};
use ensemfdet::{
    fdet, AverageDegreeMetric, Block, EnsemFdet, EnsemFdetConfig, LogWeightedMetric, Truncation,
    VoteTally,
};
use ensemfdet_graph::{BipartiteGraph, MerchantId, UserId};
use proptest::prelude::*;

fn arb_graph(max_side: u32, max_edges: usize) -> impl Strategy<Value = BipartiteGraph> {
    (1..=max_side, 1..=max_side).prop_flat_map(move |(nu, nv)| {
        prop::collection::vec((0..nu, 0..nv), 1..=max_edges).prop_map(move |mut edges| {
            edges.sort_unstable();
            edges.dedup();
            BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap()
        })
    })
}

/// Brute-force densest subgraph under the average-degree metric, over all
/// node subsets of a tiny graph.
fn brute_force_densest(g: &BipartiteGraph) -> f64 {
    let nu = g.num_users();
    let nv = g.num_merchants();
    assert!(nu + nv <= 12, "brute force only for tiny graphs");
    let mut best = 0.0f64;
    for umask in 0u32..(1 << nu) {
        for vmask in 0u32..(1 << nv) {
            if umask == 0 && vmask == 0 {
                continue;
            }
            let size = (umask.count_ones() + vmask.count_ones()) as f64;
            let mut edges = 0usize;
            for (_, u, v, _) in g.edges() {
                if umask >> u.0 & 1 == 1 && vmask >> v.0 & 1 == 1 {
                    edges += 1;
                }
            }
            best = best.max(edges as f64 / size);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Charikar's 2-approximation: greedy peel density ≥ optimum / 2.
    #[test]
    fn peel_is_half_approximation(g in arb_graph(6, 18)) {
        let Some(block) = peel_densest_full(&g, &AverageDegreeMetric) else { return Ok(()); };
        let opt = brute_force_densest(&g);
        prop_assert!(
            block.score >= opt / 2.0 - 1e-9,
            "greedy {} < opt/2 = {}", block.score, opt / 2.0
        );
        // And it can never exceed the optimum.
        prop_assert!(block.score <= opt + 1e-9);
    }

    /// The block's reported score equals the density of its reported nodes.
    #[test]
    fn peel_score_is_consistent(g in arb_graph(8, 30)) {
        for metric_log in [false, true] {
            let (score, users, merchants) = if metric_log {
                let m = LogWeightedMetric::paper_default();
                let Some(b) = peel_densest_full(&g, &m) else { continue };
                (b.score, b.users, b.merchants)
            } else {
                let Some(b) = peel_densest_full(&g, &AverageDegreeMetric) else { continue };
                (b.score, b.users, b.merchants)
            };
            let oracle = if metric_log {
                density_of_subset(&g, &LogWeightedMetric::paper_default(), &users, &merchants)
            } else {
                density_of_subset(&g, &AverageDegreeMetric, &users, &merchants)
            };
            prop_assert!((score - oracle).abs() < 1e-9, "score {score} vs oracle {oracle}");
        }
    }

    /// FDET blocks partition (a subset of) the edges: disjoint and within cap.
    #[test]
    fn fdet_blocks_are_edge_disjoint(g in arb_graph(8, 40)) {
        let r = fdet(&g, &AverageDegreeMetric, Truncation::KeepAll { k_max: 30 });
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for b in &r.blocks {
            for &e in &b.edges {
                prop_assert!(seen.insert(e));
                total += 1;
            }
        }
        prop_assert!(total <= g.num_edges());
        prop_assert!(r.k_hat <= r.blocks.len());
        // Nodes never repeat across blocks either.
        let mut seen_u = std::collections::HashSet::new();
        for b in &r.blocks {
            for u in &b.users {
                prop_assert!(seen_u.insert(u.0));
            }
        }
    }

    /// Vote curve: counts are non-increasing in T and match direct queries.
    #[test]
    fn vote_curve_is_monotone(
        votes in prop::collection::vec(0u32..20, 1..60)
    ) {
        let mut tally = VoteTally::new(votes.len(), 0);
        tally.user_votes = votes;
        tally.num_samples = 20;
        let curve = tally.user_detection_curve();
        for w in curve.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for (i, &c) in curve.iter().enumerate() {
            prop_assert_eq!(c, tally.detected_users(i as u32 + 1).len());
        }
    }

    /// Weighted graphs: the peel's reported score always matches the
    /// density oracle, and uniformly up-weighting every edge can only
    /// raise (never lower) the detected block's score under the
    /// average-degree metric (where weights enter f(S) linearly).
    #[test]
    fn peel_on_weighted_graphs_is_consistent(
        g in arb_graph(8, 30),
        scale in 1.5f64..4.0
    ) {
        let edges = g.edge_slice().to_vec();
        let weights = vec![scale; edges.len()];
        let gw = BipartiteGraph::from_weighted_edges(
            g.num_users(), g.num_merchants(), edges, weights
        ).unwrap();
        let Some(base) = peel_densest_full(&g, &AverageDegreeMetric) else { return Ok(()); };
        let weighted = peel_densest_full(&gw, &AverageDegreeMetric).expect("same edges");
        // Uniform scaling scales f(S) for every FIXED S exactly. The greedy
        // *score* need not scale exactly: scaled priorities can round into
        // or out of ties, steering the peel onto a different (equally valid)
        // trajectory. So assert per-subset scaling on each run's own block,
        // plus the Charikar cross-bound: each run's optimum is witnessed by
        // the other's block, so neither score can fall below half the
        // other's (after rescaling).
        let base_on_gw = density_of_subset(&gw, &AverageDegreeMetric, &base.users, &base.merchants);
        prop_assert!((base_on_gw - scale * base.score).abs() < 1e-9 * (1.0 + base_on_gw),
            "subset scaling broken: {} vs {} × {}", base_on_gw, scale, base.score);
        prop_assert!(weighted.score >= scale * base.score / 2.0 - 1e-9,
            "weighted {} < half of {} × base {}", weighted.score, scale, base.score);
        prop_assert!(scale * base.score >= weighted.score / 2.0 - 1e-9,
            "base {} × {} < half of weighted {}", base.score, scale, weighted.score);
        let oracle = density_of_subset(&gw, &AverageDegreeMetric, &weighted.users, &weighted.merchants);
        prop_assert!((weighted.score - oracle).abs() < 1e-9);
    }

    /// FDET truncation bounds: k̂ never exceeds block count and the kept
    /// scores are a prefix of the full curve.
    #[test]
    fn fdet_truncation_is_a_prefix(g in arb_graph(8, 40), k_max in 1usize..12) {
        let r = fdet(&g, &AverageDegreeMetric, Truncation::Auto { k_max, patience: 3 });
        prop_assert!(r.k_hat <= r.blocks.len());
        prop_assert!(r.blocks.len() <= k_max);
        prop_assert_eq!(r.scores.len(), r.blocks.len());
        for (b, s) in r.blocks.iter().zip(&r.scores) {
            prop_assert!((b.score - s).abs() < 1e-12);
        }
    }

    /// Ensemble determinism for arbitrary graphs and configs.
    #[test]
    fn ensemble_is_deterministic(g in arb_graph(10, 60), n in 1usize..6, seed in 0u64..100) {
        let cfg = EnsemFdetConfig {
            num_samples: n,
            sample_ratio: 0.5,
            seed,
            ..Default::default()
        };
        let a = EnsemFdet::new(cfg).detect(&g);
        let b = EnsemFdet::new(cfg).detect(&g);
        prop_assert_eq!(a.votes, b.votes);
    }

    /// Votes never exceed N, and detected sets shrink as T grows.
    #[test]
    fn votes_bounded_by_n(g in arb_graph(10, 60), n in 1usize..8) {
        let cfg = EnsemFdetConfig {
            num_samples: n,
            sample_ratio: 0.4,
            seed: 11,
            ..Default::default()
        };
        let out = EnsemFdet::new(cfg).detect(&g);
        prop_assert!(out.votes.user_votes.iter().all(|&v| v as usize <= n));
        prop_assert!(out.votes.merchant_votes.iter().all(|&v| v as usize <= n));
        let mut prev = usize::MAX;
        for t in 1..=(n as u32) {
            let c = out.votes.detected_users(t).len();
            prop_assert!(c <= prev);
            prev = c;
        }
    }
}

/// Deterministic regression: the peel exactly recovers a planted
/// quasi-clique against brute force on a handmade instance.
#[test]
fn peel_matches_brute_force_on_known_graph() {
    let edges = vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1), (3, 2)];
    let g = BipartiteGraph::from_edges(4, 3, edges).unwrap();
    let block = peel_densest_full(&g, &AverageDegreeMetric).unwrap();
    let opt = brute_force_densest(&g);
    assert!((block.score - opt).abs() < 1e-12, "greedy is optimal here");
    assert_eq!(block.users, vec![UserId(0), UserId(1), UserId(2)]);
    assert_eq!(block.merchants, vec![MerchantId(0), MerchantId(1)]);
    let _ = Block {
        users: vec![],
        merchants: vec![],
        score: 0.0,
        edges: vec![],
    };
}

// ---------------------------------------------------------------------------
// Hybrid-scoring laws (PR 9)
// ---------------------------------------------------------------------------

mod scoring_laws {
    use super::*;
    use ensemfdet::{
        hybrid_scan_scores, normalize_scores, DetectContext, HybridScorer, ScoreNormalization,
        ScoringConfig,
    };

    fn arb_components(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
        (1..=max_len).prop_flat_map(|len| {
            let comp = || prop::collection::vec(0.0f64..=1.0, len..=len);
            (comp(), comp(), comp())
        })
    }

    fn arb_norm() -> impl Strategy<Value = ScoreNormalization> {
        (0usize..2).prop_map(|i| {
            if i == 0 {
                ScoreNormalization::MinMax
            } else {
                ScoreNormalization::Rank
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Fused scores stay finite in `[0, 1]` for any valid weights,
        /// floors, and normalization.
        #[test]
        fn fusion_stays_in_unit_interval(
            (vote, spectral, kcore) in arb_components(40),
            mut weights in (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
            floors in (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
            norm in arb_norm(),
        ) {
            if weights.0 + weights.1 + weights.2 <= 0.0 {
                weights.0 = 1.0; // all-zero weights are rejected by validate()
            }
            let cfg = ScoringConfig {
                enabled: true,
                vote_weight: weights.0,
                spectral_weight: weights.1,
                kcore_weight: weights.2,
                vote_floor: floors.0,
                spectral_floor: floors.1,
                kcore_floor: floors.2,
                normalization: norm,
                ..ScoringConfig::enabled()
            };
            let fused = HybridScorer::new(cfg).fuse(&vote, &spectral, &kcore);
            prop_assert_eq!(fused.len(), vote.len());
            for s in fused {
                prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s), "fused {s}");
            }
        }

        /// A degenerate weight vector reproduces exactly its component's
        /// ranking (compared via rank normalization, which is
        /// tie-preserving and monotone).
        #[test]
        fn degenerate_weights_reproduce_component_ranking(
            (vote, spectral, kcore) in arb_components(40),
            norm in arb_norm(),
        ) {
            let corners: [([f64; 3], &[f64]); 3] = [
                ([1.0, 0.0, 0.0], &vote),
                ([0.0, 1.0, 0.0], &spectral),
                ([0.0, 0.0, 1.0], &kcore),
            ];
            for (w, component) in corners {
                let cfg = ScoringConfig {
                    enabled: true,
                    vote_weight: w[0],
                    spectral_weight: w[1],
                    kcore_weight: w[2],
                    normalization: norm,
                    ..ScoringConfig::enabled()
                };
                let fused = HybridScorer::new(cfg).fuse(&vote, &spectral, &kcore);
                prop_assert_eq!(
                    normalize_scores(&fused, ScoreNormalization::Rank),
                    normalize_scores(component, ScoreNormalization::Rank),
                );
            }
        }

        /// The full hybrid pass never panics and keeps every component and
        /// the fused vector in `[0, 1]`, whatever the graph.
        #[test]
        fn hybrid_scan_is_total_and_bounded(g in arb_graph(10, 40)) {
            let out = EnsemFdet::new(EnsemFdetConfig {
                num_samples: 4,
                sample_ratio: 0.5,
                seed: 7,
                ..Default::default()
            })
            .detect(&g);
            let ctx = DetectContext::new(&g);
            let scores = hybrid_scan_scores(&ctx, &out.votes, &ScoringConfig::enabled());
            for comp in [&scores.vote, &scores.spectral, &scores.kcore, &scores.hybrid] {
                prop_assert_eq!(comp.len(), g.num_users());
                for &s in comp.iter() {
                    prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s), "{s}");
                }
            }
            for u in &scores.hybrid_flagged {
                prop_assert!(scores.hybrid[u.index()] >= scores.config.hybrid_threshold);
            }
        }
    }

    /// Degenerate graphs go through the whole pass without panicking.
    #[test]
    fn hybrid_scan_survives_empty_and_single_edge_graphs() {
        for g in [
            BipartiteGraph::from_edges(0, 0, vec![]).unwrap(),
            BipartiteGraph::from_edges(3, 2, vec![]).unwrap(),
            BipartiteGraph::from_edges(1, 1, vec![(0, 0)]).unwrap(),
        ] {
            let out = EnsemFdet::new(EnsemFdetConfig {
                num_samples: 3,
                sample_ratio: 0.5,
                seed: 5,
                ..Default::default()
            })
            .detect(&g);
            let ctx = DetectContext::new(&g);
            let scores = hybrid_scan_scores(&ctx, &out.votes, &ScoringConfig::enabled());
            assert_eq!(scores.hybrid.len(), g.num_users());
            assert!(scores.hybrid.iter().all(|s| (0.0..=1.0).contains(s)));
        }
    }
}
