//! The non-blocking ingest/scan pipeline.
//!
//! A production deployment of the ensemble faces two workloads with
//! opposite latency profiles: **ingest** (millions of tiny appends that
//! must never stall) and **scan** (a full `N`-sample ensemble pass that
//! takes seconds). Guarding both behind one mutex — the original
//! [`CampaignMonitor`](crate::CampaignMonitor) shape — lets any scan
//! freeze the ingest path for its whole duration.
//!
//! This module splits the monitor into three independently lockable
//! pieces, mirroring the paper's own separation of graph accumulation
//! from the embarrassingly parallel detection pass:
//!
//! * [`IngestBuffer`] — a sharded, append-only transaction log. An append
//!   takes one shard mutex for a single `Vec::push`; it is never held
//!   across graph construction or detection.
//! * [`SnapshotStore`] — epoch-versioned, immutable
//!   [`BipartiteGraph`] snapshots built by compacting the buffer at a
//!   configurable cadence. Publication is an `Arc` swap, so readers never
//!   wait on a build in progress and a snapshot, once obtained, can be
//!   scanned for minutes without blocking anyone.
//! * [`ScanRunner`] — runs [`EnsemFdet::detect`] against one snapshot and
//!   tags the outcome with that snapshot's epoch. Detection is
//!   deterministic in `(epoch, seed)`: the same snapshot and seed always
//!   produce the same flagged set, regardless of what ingest is doing
//!   concurrently.
//!
//! [`CampaignMonitor`](crate::CampaignMonitor) is now a thin synchronous
//! composition of the three; the HTTP service composes them with a
//! background executor instead, so `POST /v1/transactions` and a running
//! scan never contend.

use crate::aggregate::VoteTally;
use crate::ensemble::{EnsemFdet, EnsemFdetConfig, StageTimings};
use ensemfdet_graph::builder::DuplicatePolicy;
use ensemfdet_graph::{BipartiteGraph, GraphBuilder, MerchantId, UserId};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

/// Number of append shards an [`IngestBuffer`] uses by default. Appends
/// pick shards round-robin, so concurrent writers rarely collide on the
/// same mutex.
pub const DEFAULT_INGEST_SHARDS: usize = 8;

/// Locks a mutex, recovering from poisoning instead of propagating the
/// panic. The protected data here (append logs, alert sets, snapshot
/// pointers) stays structurally valid even if a panic interrupted an
/// update, so serving slightly-stale state beats wedging every caller.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A sharded, append-only log of `(user, merchant)` purchase records.
///
/// The write path takes exactly one shard mutex for one push; the read
/// path ([`collect_edges`](Self::collect_edges)) locks each shard just
/// long enough to clone it. Nothing ever holds a shard lock across graph
/// construction or detection, so ingest throughput is independent of
/// scan activity.
#[derive(Debug)]
pub struct IngestBuffer {
    shards: Vec<Mutex<Vec<(u32, u32)>>>,
    next_shard: AtomicUsize,
    total: AtomicUsize,
}

impl IngestBuffer {
    /// An empty buffer with [`DEFAULT_INGEST_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_INGEST_SHARDS)
    }

    /// An empty buffer with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        IngestBuffer {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            next_shard: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
        }
    }

    /// Appends one purchase record.
    pub fn append(&self, u: UserId, v: MerchantId) {
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        lock_recover(&self.shards[shard]).push((u.0, v.0));
        self.total.fetch_add(1, Ordering::Release);
    }

    /// Appends a batch of records through a single shard lock.
    pub fn append_batch(&self, it: impl IntoIterator<Item = (UserId, MerchantId)>) {
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut n = 0usize;
        {
            let mut guard = lock_recover(&self.shards[shard]);
            for (u, v) in it {
                guard.push((u.0, v.0));
                n += 1;
            }
        }
        self.total.fetch_add(n, Ordering::Release);
    }

    /// Records appended so far.
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Acquire)
    }

    /// `true` when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones out every shard's records, in shard order. The per-shard
    /// locks are each held only for a `Vec` clone; concurrent appends
    /// landing mid-collection simply make it into the next compaction.
    pub fn collect_edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend_from_slice(&lock_recover(shard));
        }
        out
    }
}

impl Default for IngestBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for IngestBuffer {
    fn clone(&self) -> Self {
        IngestBuffer {
            shards: self
                .shards
                .iter()
                .map(|s| Mutex::new(lock_recover(s).clone()))
                .collect(),
            next_shard: AtomicUsize::new(self.next_shard.load(Ordering::Relaxed)),
            total: AtomicUsize::new(self.total.load(Ordering::Acquire)),
        }
    }
}

/// One immutable, epoch-tagged view of the purchase graph.
///
/// Snapshots are shared as `Arc<Snapshot>`: a scan keeps its snapshot
/// alive for as long as it runs while newer epochs are published
/// underneath it.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Monotonically increasing snapshot version; epoch 0 is the empty
    /// graph that exists before any compaction.
    pub epoch: u64,
    /// Transactions compacted into this snapshot.
    pub transactions: usize,
    /// The deduplicated purchase graph.
    pub graph: Arc<BipartiteGraph>,
}

impl Snapshot {
    fn empty() -> Self {
        Snapshot {
            epoch: 0,
            transactions: 0,
            graph: Arc::new(
                BipartiteGraph::from_edges(0, 0, vec![]).expect("empty graph is valid"),
            ),
        }
    }
}

/// Epoch-versioned snapshot publication.
///
/// `latest()` is a brief read-lock + `Arc` clone — readers never wait on
/// a compaction in progress, because graphs are built *outside* the lock
/// and swapped in atomically. Compactions themselves serialize on an
/// internal mutex so epochs stay strictly increasing.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes compactions (graph builds happen outside `current`'s
    /// lock, so two racing compactions could otherwise publish out of
    /// epoch order).
    compacting: Mutex<()>,
    compaction_interval: usize,
}

impl SnapshotStore {
    /// A store holding the empty epoch-0 snapshot.
    ///
    /// `compaction_interval` is the cadence in transactions at which
    /// [`refresh`](Self::refresh) considers the current snapshot stale.
    ///
    /// # Panics
    ///
    /// Panics if `compaction_interval == 0`.
    pub fn new(compaction_interval: usize) -> Self {
        assert!(compaction_interval > 0, "compaction_interval must be positive");
        SnapshotStore {
            current: RwLock::new(Arc::new(Snapshot::empty())),
            compacting: Mutex::new(()),
            compaction_interval,
        }
    }

    /// The configured compaction cadence, in transactions.
    pub fn compaction_interval(&self) -> usize {
        self.compaction_interval
    }

    /// The latest published snapshot (wait-free with respect to
    /// compaction: the lock is held only for an `Arc` clone).
    pub fn latest(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Transactions appended to `buffer` since the latest snapshot.
    pub fn lag(&self, buffer: &IngestBuffer) -> usize {
        buffer.len().saturating_sub(self.latest().transactions)
    }

    /// Whether the cadence says a new compaction is due.
    pub fn is_stale(&self, buffer: &IngestBuffer) -> bool {
        self.lag(buffer) >= self.compaction_interval
    }

    /// Returns a current snapshot, compacting first if needed.
    ///
    /// With `force`, any buffered transaction not yet in the snapshot
    /// triggers a compaction; without it, only the configured cadence
    /// does. Either way the returned snapshot is the latest published
    /// one.
    pub fn refresh(&self, buffer: &IngestBuffer, force: bool) -> Arc<Snapshot> {
        let due = if force {
            self.lag(buffer) > 0
        } else {
            self.is_stale(buffer)
        };
        if due {
            self.compact(buffer)
        } else {
            self.latest()
        }
    }

    /// Builds and publishes a new snapshot from the buffer's current
    /// contents, bumping the epoch. If another thread compacted
    /// concurrently and already covered at least as many transactions,
    /// its (newer or equal) snapshot is returned instead.
    pub fn compact(&self, buffer: &IngestBuffer) -> Arc<Snapshot> {
        let _serial = lock_recover(&self.compacting);
        let edges = buffer.collect_edges();
        let transactions = edges.len();
        let previous = self.latest();
        if transactions <= previous.transactions && previous.epoch > 0 {
            // Nothing new since the snapshot published under the
            // compaction lock we now hold.
            return previous;
        }
        let mut builder = GraphBuilder::new();
        builder.extend_edges(
            edges
                .into_iter()
                .map(|(u, v)| (UserId(u), MerchantId(v))),
        );
        let graph = builder.build_with(DuplicatePolicy::MergeBinary);
        let snapshot = Arc::new(Snapshot {
            epoch: previous.epoch + 1,
            transactions,
            graph: Arc::new(graph),
        });
        *self
            .current
            .write()
            .unwrap_or_else(PoisonError::into_inner) = snapshot.clone();
        snapshot
    }
}

impl Clone for SnapshotStore {
    fn clone(&self) -> Self {
        SnapshotStore {
            current: RwLock::new(self.latest()),
            compacting: Mutex::new(()),
            compaction_interval: self.compaction_interval,
        }
    }
}

/// What one scan of a snapshot produced, tagged with the snapshot's
/// epoch.
#[derive(Clone, Debug)]
pub struct ScanOutcome {
    /// Epoch of the snapshot this scan ran on.
    pub epoch: u64,
    /// Transactions in that snapshot.
    pub transactions: usize,
    /// Every account at or above the vote threshold used for this scan.
    pub flagged: Vec<UserId>,
    /// Accounts crossing the threshold for the first time ever.
    pub new_alerts: Vec<UserId>,
    /// The full vote tally, for custom thresholds downstream.
    pub votes: VoteTally,
    /// Wall-clock of the ensemble pass.
    pub elapsed: Duration,
    /// Per-sample wall-clock, in sample order.
    pub sample_times: Vec<Duration>,
    /// Per-stage split of the ensemble pass.
    pub stages: StageTimings,
    /// Bytes of sample state materialized across the ensemble pass
    /// (selection vectors on the mask path, full subgraph buffers on the
    /// materializing path).
    pub sample_bytes: u64,
}

/// Runs ensemble scans against snapshots and tracks which accounts have
/// already alerted, so downstream systems act once per account.
///
/// The *flagged set* of a scan is a pure function of
/// `(snapshot epoch, detector config)` — per-sample seeds derive from the
/// config seed, so re-running the same epoch with the same seed
/// reproduces it bit-for-bit. Only `new_alerts` is stateful.
#[derive(Clone, Debug, Default)]
pub struct ScanRunner {
    alerted: HashSet<u32>,
}

impl ScanRunner {
    /// A runner with no alert history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one ensemble pass over `snapshot`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid ([`EnsemFdet::new`] asserts) or
    /// `threshold == 0`.
    pub fn run(
        &mut self,
        snapshot: &Snapshot,
        config: &EnsemFdetConfig,
        threshold: u32,
    ) -> ScanOutcome {
        assert!(threshold > 0, "alert threshold must be positive");
        let outcome = EnsemFdet::new(*config).detect(&snapshot.graph);
        let flagged = outcome.votes.detected_users(threshold);
        let new_alerts: Vec<UserId> = flagged
            .iter()
            .copied()
            .filter(|u| self.alerted.insert(u.0))
            .collect();
        ScanOutcome {
            epoch: snapshot.epoch,
            transactions: snapshot.transactions,
            flagged,
            new_alerts,
            sample_times: outcome.samples.iter().map(|s| s.elapsed).collect(),
            sample_bytes: outcome.sample_bytes(),
            elapsed: outcome.elapsed,
            stages: outcome.stages,
            votes: outcome.votes,
        }
    }

    /// Accounts alerted at any point so far, sorted.
    pub fn alerted(&self) -> Vec<UserId> {
        let mut out: Vec<UserId> = self.alerted.iter().map(|&u| UserId(u)).collect();
        out.sort_unstable();
        out
    }

    /// Number of accounts alerted so far.
    pub fn alerted_count(&self) -> usize {
        self.alerted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_and_background(buffer: &IngestBuffer) {
        for u in 0..8u32 {
            for v in 0..5u32 {
                buffer.append(UserId(u), MerchantId(v));
            }
        }
        for i in 0..200u32 {
            buffer.append(UserId(20 + i % 90), MerchantId(10 + i % 40));
        }
    }

    fn quick_config() -> EnsemFdetConfig {
        EnsemFdetConfig {
            num_samples: 10,
            sample_ratio: 0.7,
            seed: 9,
            ..Default::default()
        }
    }

    #[test]
    fn buffer_appends_are_counted_and_collected() {
        let b = IngestBuffer::with_shards(3);
        assert!(b.is_empty());
        b.append(UserId(0), MerchantId(1));
        b.append_batch([(UserId(1), MerchantId(2)), (UserId(2), MerchantId(0))]);
        assert_eq!(b.len(), 3);
        let mut edges = b.collect_edges();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn buffer_shard_order_does_not_change_the_graph() {
        // Same records through different shard counts build the same
        // deduplicated graph (MergeBinary sorts edges).
        let graphs: Vec<_> = [1usize, 4, 7]
            .into_iter()
            .map(|shards| {
                let b = IngestBuffer::with_shards(shards);
                ring_and_background(&b);
                let store = SnapshotStore::new(1);
                store.compact(&b).graph.edge_slice().to_vec()
            })
            .collect();
        assert_eq!(graphs[0], graphs[1]);
        assert_eq!(graphs[1], graphs[2]);
    }

    #[test]
    fn concurrent_appends_all_land() {
        let b = Arc::new(IngestBuffer::new());
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        b.append(UserId(t * 1000 + i), MerchantId(i % 17));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.len(), 2000);
        assert_eq!(b.collect_edges().len(), 2000);
    }

    #[test]
    fn store_starts_at_epoch_zero_and_bumps_on_compact() {
        let b = IngestBuffer::new();
        let store = SnapshotStore::new(10);
        let s0 = store.latest();
        assert_eq!(s0.epoch, 0);
        assert_eq!(s0.graph.num_edges(), 0);

        b.append(UserId(0), MerchantId(0));
        let s1 = store.compact(&b);
        assert_eq!(s1.epoch, 1);
        assert_eq!(s1.transactions, 1);
        assert_eq!(store.latest().epoch, 1);
    }

    #[test]
    fn refresh_honors_cadence_and_force() {
        let b = IngestBuffer::new();
        let store = SnapshotStore::new(100);
        for i in 0..5u32 {
            b.append(UserId(i), MerchantId(0));
        }
        // 5 < 100: cadence says not stale.
        assert_eq!(store.refresh(&b, false).epoch, 0);
        // Force compacts anything pending.
        assert_eq!(store.refresh(&b, true).epoch, 1);
        // Nothing new: force is a no-op, same snapshot comes back.
        assert_eq!(store.refresh(&b, true).epoch, 1);
        for i in 0..100u32 {
            b.append(UserId(i), MerchantId(1));
        }
        assert!(store.is_stale(&b));
        assert_eq!(store.refresh(&b, false).epoch, 2);
        assert_eq!(store.lag(&b), 0);
    }

    #[test]
    fn snapshots_are_immutable_under_later_ingest() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap = store.compact(&b);
        let (edges_before, txn_before) = (snap.graph.num_edges(), snap.transactions);
        for i in 0..500u32 {
            b.append(UserId(500 + i), MerchantId(300 + i));
        }
        store.compact(&b);
        // The old snapshot still reads exactly as published.
        assert_eq!(snap.graph.num_edges(), edges_before);
        assert_eq!(snap.transactions, txn_before);
        assert!(store.latest().transactions > txn_before);
    }

    #[test]
    fn runner_is_deterministic_per_epoch_and_seed() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap = store.compact(&b);
        let cfg = quick_config();
        let a = ScanRunner::new().run(&snap, &cfg, 6);
        let c = ScanRunner::new().run(&snap, &cfg, 6);
        assert_eq!(a.flagged, c.flagged);
        assert_eq!(a.votes, c.votes);
        assert_eq!(a.epoch, c.epoch);
    }

    #[test]
    fn runner_alerts_once_per_account() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap = store.compact(&b);
        let cfg = quick_config();
        let mut runner = ScanRunner::new();
        let first = runner.run(&snap, &cfg, 6);
        assert!(!first.flagged.is_empty());
        assert_eq!(first.flagged, first.new_alerts);
        let second = runner.run(&snap, &cfg, 6);
        assert_eq!(second.flagged, first.flagged);
        assert!(second.new_alerts.is_empty());
        assert_eq!(runner.alerted_count(), first.flagged.len());
    }

    #[test]
    fn outcome_carries_epoch_and_timings() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        store.compact(&b);
        b.append(UserId(900), MerchantId(900));
        let snap = store.compact(&b);
        let out = ScanRunner::new().run(&snap, &quick_config(), 6);
        assert_eq!(out.epoch, 2);
        assert_eq!(out.transactions, snap.transactions);
        assert_eq!(out.sample_times.len(), 10);
    }

    #[test]
    fn poisoned_shard_recovers() {
        let b = Arc::new(IngestBuffer::with_shards(1));
        let poisoner = Arc::clone(&b);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].lock().unwrap();
            panic!("poison the shard");
        })
        .join();
        // Appends and reads still work.
        b.append(UserId(1), MerchantId(1));
        assert_eq!(b.collect_edges().len(), 1);
    }
}
