//! The non-blocking ingest/scan pipeline.
//!
//! A production deployment of the ensemble faces two workloads with
//! opposite latency profiles: **ingest** (millions of tiny appends that
//! must never stall) and **scan** (a full `N`-sample ensemble pass that
//! takes seconds). Guarding both behind one mutex — the original
//! [`CampaignMonitor`](crate::CampaignMonitor) shape — lets any scan
//! freeze the ingest path for its whole duration.
//!
//! This module splits the monitor into three independently lockable
//! pieces, mirroring the paper's own separation of graph accumulation
//! from the embarrassingly parallel detection pass:
//!
//! * [`IngestBuffer`] — a sharded, append-only transaction log. An append
//!   takes one shard mutex for a single `Vec::push`; it is never held
//!   across graph construction or detection.
//! * [`SnapshotStore`] — epoch-versioned, immutable
//!   [`BipartiteGraph`] snapshots built by compacting the buffer at a
//!   configurable cadence. Publication is an `Arc` swap, so readers never
//!   wait on a build in progress and a snapshot, once obtained, can be
//!   scanned for minutes without blocking anyone.
//! * [`ScanRunner`] — runs [`EnsemFdet::detect`] against one snapshot and
//!   tags the outcome with that snapshot's epoch. Detection is
//!   deterministic in `(epoch, seed)`: the same snapshot and seed always
//!   produce the same flagged set, regardless of what ingest is doing
//!   concurrently.
//!
//! [`CampaignMonitor`](crate::CampaignMonitor) is now a thin synchronous
//! composition of the three; the HTTP service composes them with a
//! background executor instead, so `POST /v1/transactions` and a running
//! scan never contend.

use crate::aggregate::VoteTally;
use crate::detector::DetectContext;
use crate::ensemble::{EnsemFdet, EnsemFdetConfig, EnsembleOutcome, StageTimings};
use crate::incremental::{FallbackReason, IncrementalPolicy, ReuseStats, ScanCache};
use crate::scoring::{hybrid_scan_scores, HybridScanScores};
use ensemfdet_graph::builder::DuplicatePolicy;
use ensemfdet_graph::{BipartiteGraph, GraphBuilder, GraphDelta, GraphDims, MerchantId, UserId};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

/// How many per-epoch deltas a [`SnapshotStore`] retains for
/// [`delta_since`](SnapshotStore::delta_since) composition. A follow-mode
/// scanner is normally at most one epoch behind; 64 gives slow scanners
/// (or paused ones) a deep window before they fall back to a full
/// re-peel.
pub const DELTA_HISTORY: usize = 64;

/// Number of append shards an [`IngestBuffer`] uses by default. Appends
/// pick shards round-robin, so concurrent writers rarely collide on the
/// same mutex.
pub const DEFAULT_INGEST_SHARDS: usize = 8;

/// Locks a mutex, recovering from poisoning instead of propagating the
/// panic. The protected data here (append logs, alert sets, snapshot
/// pointers) stays structurally valid even if a panic interrupted an
/// update, so serving slightly-stale state beats wedging every caller.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A sharded, append-only log of `(user, merchant)` purchase records.
///
/// The write path takes exactly one shard mutex for one push; the read
/// path ([`collect_edges`](Self::collect_edges)) locks each shard just
/// long enough to clone it. Nothing ever holds a shard lock across graph
/// construction or detection, so ingest throughput is independent of
/// scan activity.
#[derive(Debug)]
pub struct IngestBuffer {
    shards: Vec<Mutex<Vec<(u32, u32)>>>,
    next_shard: AtomicUsize,
    total: AtomicUsize,
}

impl IngestBuffer {
    /// An empty buffer with [`DEFAULT_INGEST_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_INGEST_SHARDS)
    }

    /// An empty buffer with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        IngestBuffer {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            next_shard: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
        }
    }

    /// Appends one purchase record.
    pub fn append(&self, u: UserId, v: MerchantId) {
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        lock_recover(&self.shards[shard]).push((u.0, v.0));
        self.total.fetch_add(1, Ordering::Release);
    }

    /// Appends a batch of records through a single shard lock.
    pub fn append_batch(&self, it: impl IntoIterator<Item = (UserId, MerchantId)>) {
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut n = 0usize;
        {
            let mut guard = lock_recover(&self.shards[shard]);
            for (u, v) in it {
                guard.push((u.0, v.0));
                n += 1;
            }
        }
        self.total.fetch_add(n, Ordering::Release);
    }

    /// Records appended so far.
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Acquire)
    }

    /// `true` when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones out every shard's records, in shard order. The per-shard
    /// locks are each held only for a `Vec` clone; concurrent appends
    /// landing mid-collection simply make it into the next compaction.
    pub fn collect_edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend_from_slice(&lock_recover(shard));
        }
        out
    }
}

impl Default for IngestBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for IngestBuffer {
    fn clone(&self) -> Self {
        IngestBuffer {
            shards: self
                .shards
                .iter()
                .map(|s| Mutex::new(lock_recover(s).clone()))
                .collect(),
            next_shard: AtomicUsize::new(self.next_shard.load(Ordering::Relaxed)),
            total: AtomicUsize::new(self.total.load(Ordering::Acquire)),
        }
    }
}

/// One immutable, epoch-tagged view of the purchase graph.
///
/// Snapshots are shared as `Arc<Snapshot>`: a scan keeps its snapshot
/// alive for as long as it runs while newer epochs are published
/// underneath it.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Monotonically increasing snapshot version; epoch 0 is the empty
    /// graph that exists before any compaction.
    pub epoch: u64,
    /// Transactions compacted into this snapshot.
    pub transactions: usize,
    /// The deduplicated purchase graph, always in canonical sorted-unique
    /// edge order — the property the whole incremental machinery rests
    /// on (see [`GraphDelta`]).
    pub graph: Arc<BipartiteGraph>,
    /// The delta-CSR leading here from the *previous* epoch: which
    /// adjacency runs changed, in O(touched) space. `None` only for the
    /// primordial epoch-0 snapshot.
    pub delta: Option<GraphDelta>,
}

impl Snapshot {
    fn empty() -> Self {
        Snapshot {
            epoch: 0,
            transactions: 0,
            graph: Arc::new(
                BipartiteGraph::from_edges(0, 0, vec![]).expect("empty graph is valid"),
            ),
            delta: None,
        }
    }

    /// `(users, merchants, edges)` of this snapshot's graph.
    pub fn dims(&self) -> GraphDims {
        (
            self.graph.num_users(),
            self.graph.num_merchants(),
            self.graph.num_edges(),
        )
    }
}

/// Per-buffer progress of incremental compaction, held under the
/// compaction mutex.
///
/// `consumed[i]` is how many records of shard `i` previous compactions
/// already folded into the published snapshot; a compaction drains only
/// the suffix beyond it. `buffer_id` is the address of the buffer the
/// offsets describe — a different (or cloned) buffer resets the state and
/// the next compaction takes the full-rebuild recovery path, which is
/// always correct: it recollects everything and rebuilds from scratch.
#[derive(Debug, Default)]
struct CompactState {
    buffer_id: usize,
    consumed: Vec<usize>,
}

/// Epoch-versioned snapshot publication.
///
/// `latest()` is a brief read-lock + `Arc` clone — readers never wait on
/// a compaction in progress, because graphs are built *outside* the lock
/// and swapped in atomically. Compactions themselves serialize on an
/// internal mutex so epochs stay strictly increasing.
///
/// Compaction is **incremental**: per-shard consumed offsets mean each
/// epoch drains only the records appended since the last one, duplicate
/// purchases dedup against the previous snapshot's sorted edge list by
/// binary search, and genuinely new edges sorted-merge into it — cost
/// scales with the delta, not the graph, and the result is bit-identical
/// to a from-scratch rebuild (gated by a unit test below). Each publish
/// also records a [`GraphDelta`] so scanners can ask
/// [`delta_since`](Self::delta_since) what changed across any recent
/// epoch span.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes compactions (graph builds happen outside `current`'s
    /// lock, so two racing compactions could otherwise publish out of
    /// epoch order) and carries the incremental drain offsets.
    compacting: Mutex<CompactState>,
    /// The last [`DELTA_HISTORY`] published deltas, oldest first, with
    /// consecutive epoch spans.
    deltas: Mutex<VecDeque<GraphDelta>>,
    compaction_interval: usize,
}

impl SnapshotStore {
    /// A store holding the empty epoch-0 snapshot.
    ///
    /// `compaction_interval` is the cadence in transactions at which
    /// [`refresh`](Self::refresh) considers the current snapshot stale.
    ///
    /// # Panics
    ///
    /// Panics if `compaction_interval == 0`.
    pub fn new(compaction_interval: usize) -> Self {
        assert!(compaction_interval > 0, "compaction_interval must be positive");
        SnapshotStore {
            current: RwLock::new(Arc::new(Snapshot::empty())),
            compacting: Mutex::new(CompactState::default()),
            deltas: Mutex::new(VecDeque::new()),
            compaction_interval,
        }
    }

    /// The configured compaction cadence, in transactions.
    pub fn compaction_interval(&self) -> usize {
        self.compaction_interval
    }

    /// The latest published snapshot (wait-free with respect to
    /// compaction: the lock is held only for an `Arc` clone).
    pub fn latest(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Transactions appended to `buffer` since the latest snapshot.
    pub fn lag(&self, buffer: &IngestBuffer) -> usize {
        buffer.len().saturating_sub(self.latest().transactions)
    }

    /// Whether the cadence says a new compaction is due.
    pub fn is_stale(&self, buffer: &IngestBuffer) -> bool {
        self.lag(buffer) >= self.compaction_interval
    }

    /// Returns a current snapshot, compacting first if needed.
    ///
    /// With `force`, any buffered transaction not yet in the snapshot
    /// triggers a compaction; without it, only the configured cadence
    /// does. Either way the returned snapshot is the latest published
    /// one.
    pub fn refresh(&self, buffer: &IngestBuffer, force: bool) -> Arc<Snapshot> {
        let due = if force {
            self.lag(buffer) > 0
        } else {
            self.is_stale(buffer)
        };
        if due {
            self.compact(buffer)
        } else {
            self.latest()
        }
    }

    /// Builds and publishes a new snapshot from the buffer's current
    /// contents, bumping the epoch. If nothing was appended since the
    /// previous compaction, that snapshot is returned unchanged (no epoch
    /// bump).
    ///
    /// When this store has been compacting this same buffer all along,
    /// the work is incremental: drain each shard's new suffix, dedup the
    /// batch against the previous snapshot's sorted edge list, and merge
    /// the genuinely new edges — O(delta + log-factor lookups) instead of
    /// O(graph). A buffer the store has not seen before (first
    /// compaction, or after either side was cloned) takes the
    /// full-rebuild recovery path. Both paths publish the same snapshot
    /// bit for bit and record the epoch's [`GraphDelta`].
    pub fn compact(&self, buffer: &IngestBuffer) -> Arc<Snapshot> {
        let mut state = lock_recover(&self.compacting);
        let previous = self.latest();
        let buffer_id = buffer as *const IngestBuffer as usize;
        let tracked = state.buffer_id == buffer_id
            && state.consumed.len() == buffer.shards.len()
            // Shards only grow; a shorter shard means this is not the
            // buffer (or not the state) we thought it was.
            && state
                .consumed
                .iter()
                .zip(&buffer.shards)
                .all(|(&c, s)| c <= lock_recover(s).len());

        if !tracked {
            // Recovery / first-contact path: recollect everything and
            // rebuild from scratch, then adopt the buffer for future
            // incremental compactions.
            let mut consumed = vec![0usize; buffer.shards.len()];
            let mut edges = Vec::with_capacity(buffer.len());
            for (c, shard) in consumed.iter_mut().zip(&buffer.shards) {
                let guard = lock_recover(shard);
                edges.extend_from_slice(&guard);
                *c = guard.len();
            }
            let transactions = edges.len();
            if transactions <= previous.transactions && previous.epoch > 0 {
                // Nothing beyond what the snapshot already covers; adopt
                // the buffer without publishing.
                *state = CompactState { buffer_id, consumed };
                return previous;
            }
            let mut builder = GraphBuilder::new();
            builder.extend_edges(edges.into_iter().map(|(u, v)| (UserId(u), MerchantId(v))));
            let graph = Arc::new(builder.build_with(DuplicatePolicy::MergeBinary));
            // The delta vs the previous snapshot: both edge lists are
            // sorted unique, and edges are append-only, so the new list's
            // extras are exactly the set difference.
            let fresh: Vec<(u32, u32)> = diff_sorted(graph.edge_pairs(), previous.graph.edge_pairs());
            let snapshot = self.publish(&previous, transactions, graph, &fresh);
            *state = CompactState { buffer_id, consumed };
            return snapshot;
        }

        // Incremental path: drain only the per-shard suffixes appended
        // since the last compaction.
        let mut batch = Vec::new();
        let mut consumed = std::mem::take(&mut state.consumed);
        for (c, shard) in consumed.iter_mut().zip(&buffer.shards) {
            let guard = lock_recover(shard);
            batch.extend_from_slice(&guard[*c..]);
            *c = guard.len();
        }
        state.consumed = consumed;
        if batch.is_empty() {
            return previous;
        }
        let transactions = previous.transactions + batch.len();
        batch.sort_unstable();
        batch.dedup();
        let prev_edges = previous.graph.edge_pairs();
        batch.retain(|e| prev_edges.binary_search(e).is_err());

        let (graph, fresh) = if batch.is_empty() {
            // Every drained record was a repeat purchase: the graph is
            // unchanged, share it. (The epoch still bumps — transaction
            // counts are part of the snapshot.)
            (previous.graph.clone(), Vec::new())
        } else {
            let mut merged = Vec::with_capacity(prev_edges.len() + batch.len());
            let (mut i, mut j) = (0, 0);
            while i < prev_edges.len() && j < batch.len() {
                if prev_edges[i] < batch[j] {
                    merged.push(prev_edges[i]);
                    i += 1;
                } else {
                    // Strictly less: `batch` was filtered against
                    // `prev_edges`, so the lists are disjoint.
                    merged.push(batch[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&prev_edges[i..]);
            merged.extend_from_slice(&batch[j..]);
            let (pu, pv, _) = previous.dims();
            let nu = pu.max(batch.iter().map(|&(u, _)| u as usize + 1).max().unwrap_or(0));
            let nv = pv.max(batch.iter().map(|&(_, v)| v as usize + 1).max().unwrap_or(0));
            let graph = Arc::new(
                BipartiteGraph::from_edges(nu, nv, merged)
                    .expect("merged sorted-unique edge list is valid"),
            );
            (graph, batch)
        };
        self.publish(&previous, transactions, graph, &fresh)
    }

    /// Publishes `graph` as the next epoch and records its delta.
    /// `fresh` is the sorted-unique list of edges present in `graph` but
    /// not in `previous`. Caller holds the compaction lock.
    fn publish(
        &self,
        previous: &Snapshot,
        transactions: usize,
        graph: Arc<BipartiteGraph>,
        fresh: &[(u32, u32)],
    ) -> Arc<Snapshot> {
        let epoch = previous.epoch + 1;
        let new_dims = (graph.num_users(), graph.num_merchants(), graph.num_edges());
        let delta = if fresh.is_empty() {
            GraphDelta::unchanged(previous.epoch, epoch, new_dims)
        } else {
            GraphDelta::from_new_edges(previous.epoch, epoch, previous.dims(), new_dims, fresh)
        };
        {
            let mut deltas = lock_recover(&self.deltas);
            deltas.push_back(delta.clone());
            while deltas.len() > DELTA_HISTORY {
                deltas.pop_front();
            }
        }
        let snapshot = Arc::new(Snapshot {
            epoch,
            transactions,
            graph,
            delta: Some(delta),
        });
        *self
            .current
            .write()
            .unwrap_or_else(PoisonError::into_inner) = snapshot.clone();
        snapshot
    }

    /// The composed [`GraphDelta`] spanning `base_epoch → target_epoch`,
    /// or `None` when the retained history (the last [`DELTA_HISTORY`]
    /// publishes) no longer covers that span. `None` is a signal to fall
    /// back to a full scan, never an error.
    pub fn delta_since(&self, base_epoch: u64, target_epoch: u64) -> Option<GraphDelta> {
        if base_epoch >= target_epoch {
            return None;
        }
        let deltas = lock_recover(&self.deltas);
        let mut acc: Option<GraphDelta> = None;
        for d in deltas.iter() {
            acc = match acc {
                None if d.from_epoch == base_epoch => Some(d.clone()),
                None => continue,
                Some(a) => a.compose(d),
            };
            match &acc {
                Some(a) if a.to_epoch == target_epoch => return acc,
                Some(_) => {}
                // History is consecutive, so a failed compose means
                // corruption rather than a gap; treat as not covered.
                None => return None,
            }
        }
        None
    }
}

/// Elements of sorted-unique `a` not present in sorted-unique `b`.
fn diff_sorted(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut j = 0;
    for &e in a {
        while j < b.len() && b[j] < e {
            j += 1;
        }
        if j >= b.len() || b[j] != e {
            out.push(e);
        }
    }
    out
}

impl Clone for SnapshotStore {
    fn clone(&self) -> Self {
        SnapshotStore {
            current: RwLock::new(self.latest()),
            // Drain offsets describe a (store, buffer) pairing; a clone
            // starts untracked and recovers via the full-rebuild path on
            // its first compaction.
            compacting: Mutex::new(CompactState::default()),
            deltas: Mutex::new(lock_recover(&self.deltas).clone()),
            compaction_interval: self.compaction_interval,
        }
    }
}

/// What one scan of a snapshot produced, tagged with the snapshot's
/// epoch.
#[derive(Clone, Debug)]
pub struct ScanOutcome {
    /// Epoch of the snapshot this scan ran on.
    pub epoch: u64,
    /// Transactions in that snapshot.
    pub transactions: usize,
    /// Every account at or above the vote threshold used for this scan.
    pub flagged: Vec<UserId>,
    /// Accounts crossing the threshold for the first time ever.
    pub new_alerts: Vec<UserId>,
    /// The full vote tally, for custom thresholds downstream.
    pub votes: VoteTally,
    /// Wall-clock of the ensemble pass.
    pub elapsed: Duration,
    /// Per-sample wall-clock, in sample order.
    pub sample_times: Vec<Duration>,
    /// Per-stage split of the ensemble pass.
    pub stages: StageTimings,
    /// Bytes of sample state materialized across the ensemble pass
    /// (selection vectors on the mask path, full subgraph buffers on the
    /// materializing path).
    pub sample_bytes: u64,
    /// Worker threads the ensemble's sample pool ran with.
    pub workers: usize,
    /// Per-worker busy time, one entry per pool worker.
    pub worker_times: Vec<Duration>,
    /// How this outcome was produced: full scan, incremental with
    /// per-sample reuse accounting, or a fallback (and why). The flagged
    /// set is identical either way — this is performance telemetry.
    pub reuse: ReuseStats,
    /// Hybrid component and fused scores, when the config enables
    /// scoring. Computed once on the parent snapshot after the ensemble
    /// pass (never per sample), so it is identical on the full and
    /// incremental paths. `flagged` above stays the plain vote-threshold
    /// set either way; the hybrid's own flag set is
    /// [`HybridScanScores::hybrid_flagged`].
    pub scoring: Option<HybridScanScores>,
}

/// Runs ensemble scans against snapshots and tracks which accounts have
/// already alerted, so downstream systems act once per account.
///
/// The *flagged set* of a scan is a pure function of
/// `(snapshot epoch, detector config)` — per-sample seeds derive from the
/// config seed, so re-running the same epoch with the same seed
/// reproduces it bit-for-bit. Besides `new_alerts`, the runner's only
/// other state is the sample cache behind
/// [`run_incremental`](Self::run_incremental), which never changes
/// results — only how much work producing them takes.
#[derive(Clone, Debug, Default)]
pub struct ScanRunner {
    alerted: HashSet<u32>,
    cache: Option<ScanCache>,
    /// Sample-pool worker threads for every pass this runner drives;
    /// `0` = one per available core. A wall-clock knob only — any value
    /// produces the same flagged set (see [`EnsemFdet::with_workers`]),
    /// which is why it lives outside [`EnsemFdetConfig`] and never
    /// invalidates the incremental cache.
    workers: usize,
}

impl ScanRunner {
    /// A runner with no alert history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the sample-pool worker count for subsequent passes (`0` =
    /// auto). Safe to change between scans — results are worker-count
    /// invariant, so the cache stays valid.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers;
    }

    /// The configured sample-pool worker count (`0` = auto).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one full ensemble pass over `snapshot`.
    ///
    /// Always peels every sample from scratch, and deliberately does
    /// *not* read or write the incremental cache — this is the reference
    /// path the incremental one is benchmarked (and equivalence-gated)
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid ([`EnsemFdet::new`] asserts) or
    /// `threshold == 0`.
    pub fn run(
        &mut self,
        snapshot: &Snapshot,
        config: &EnsemFdetConfig,
        threshold: u32,
    ) -> ScanOutcome {
        assert!(threshold > 0, "alert threshold must be positive");
        let outcome = EnsemFdet::with_workers(*config, self.workers).detect(&snapshot.graph);
        let reuse = ReuseStats::full(config.num_samples);
        self.finish(snapshot, outcome, reuse, threshold, config)
    }

    /// Runs one ensemble pass over `snapshot`, reusing cached per-sample
    /// results where the epoch delta provably cannot have changed them.
    ///
    /// The flagged set is **bit-identical** to [`run`](Self::run) on the
    /// same `(snapshot, config)` — reuse is a pure performance
    /// optimization (gated by `tests/tests/incremental_scan.rs`). When
    /// reuse is impossible or not worth it, the scan degrades to a full
    /// pass and says so in [`ScanOutcome::reuse`]:
    ///
    /// * [`FallbackReason::ColdCache`] — first scan through this runner.
    /// * [`FallbackReason::ConfigChanged`] — any config difference.
    /// * [`FallbackReason::MissingDelta`] — `store` no longer retains the
    ///   delta chain from the cached epoch to `snapshot.epoch`.
    /// * [`FallbackReason::OversizedDelta`] — the delta touched more than
    ///   [`IncrementalPolicy::max_touched_fraction`] of the nodes.
    ///
    /// Either way the cache is (re)primed for the next epoch.
    ///
    /// # Panics
    ///
    /// Same as [`run`](Self::run).
    pub fn run_incremental(
        &mut self,
        snapshot: &Snapshot,
        store: &SnapshotStore,
        config: &EnsemFdetConfig,
        threshold: u32,
        policy: &IncrementalPolicy,
    ) -> ScanOutcome {
        assert!(threshold > 0, "alert threshold must be positive");
        let detector = EnsemFdet::with_workers(*config, self.workers);
        let attempt: Result<GraphDelta, FallbackReason> = match &self.cache {
            None => Err(FallbackReason::ColdCache),
            Some(cache) if cache.config != *config => Err(FallbackReason::ConfigChanged),
            Some(cache) => {
                let delta = if cache.base_epoch == snapshot.epoch {
                    // Re-scan of the very epoch the cache was built on.
                    if cache.base_dims == snapshot.dims() {
                        Ok(GraphDelta::unchanged(
                            snapshot.epoch,
                            snapshot.epoch,
                            snapshot.dims(),
                        ))
                    } else {
                        Err(FallbackReason::MissingDelta)
                    }
                } else {
                    store
                        .delta_since(cache.base_epoch, snapshot.epoch)
                        // The cache must describe the same epoch the delta
                        // starts from; a dims mismatch means it came from
                        // some other store's epoch numbering.
                        .filter(|d| d.base_dims == cache.base_dims)
                        .ok_or(FallbackReason::MissingDelta)
                };
                delta.and_then(|d| {
                    if d.touched_fraction() > policy.max_touched_fraction {
                        Err(FallbackReason::OversizedDelta)
                    } else {
                        Ok(d)
                    }
                })
            }
        };
        match attempt {
            Ok(delta) => {
                let cache = self.cache.as_ref().expect("checked above");
                let (outcome, stats, next) =
                    detector.detect_incremental(&snapshot.graph, &delta, cache);
                self.cache = Some(next);
                self.finish(snapshot, outcome, stats, threshold, config)
            }
            Err(reason) => {
                let (outcome, cache) =
                    detector.detect_with_cache(&snapshot.graph, snapshot.epoch);
                self.cache = Some(cache);
                let reuse = ReuseStats::fallback(config.num_samples, reason);
                self.finish(snapshot, outcome, reuse, threshold, config)
            }
        }
    }

    /// Epoch of the snapshot the incremental cache currently describes.
    pub fn cached_epoch(&self) -> Option<u64> {
        self.cache.as_ref().map(|c| c.base_epoch)
    }

    /// Drops the incremental cache; the next
    /// [`run_incremental`](Self::run_incremental) takes the
    /// [`FallbackReason::ColdCache`] full-scan path.
    pub fn invalidate_cache(&mut self) {
        self.cache = None;
    }

    /// Converts an ensemble outcome into a [`ScanOutcome`], updating the
    /// alert-once set. When the config enables hybrid scoring, the
    /// component passes run here, on the parent snapshot — the one place
    /// both the full and incremental paths flow through, so the scores
    /// are identical regardless of how much the ensemble pass reused.
    fn finish(
        &mut self,
        snapshot: &Snapshot,
        outcome: EnsembleOutcome,
        reuse: ReuseStats,
        threshold: u32,
        config: &EnsemFdetConfig,
    ) -> ScanOutcome {
        let scoring = config.scoring.enabled.then(|| {
            let ctx = DetectContext::new(&snapshot.graph);
            hybrid_scan_scores(&ctx, &outcome.votes, &config.scoring)
        });
        let flagged = outcome.votes.detected_users(threshold);
        let new_alerts: Vec<UserId> = flagged
            .iter()
            .copied()
            .filter(|u| self.alerted.insert(u.0))
            .collect();
        ScanOutcome {
            epoch: snapshot.epoch,
            transactions: snapshot.transactions,
            flagged,
            new_alerts,
            sample_times: outcome.samples.iter().map(|s| s.elapsed).collect(),
            sample_bytes: outcome.sample_bytes(),
            elapsed: outcome.elapsed,
            stages: outcome.stages,
            workers: outcome.workers,
            worker_times: outcome.worker_times,
            votes: outcome.votes,
            reuse,
            scoring,
        }
    }

    /// Accounts alerted at any point so far, sorted.
    pub fn alerted(&self) -> Vec<UserId> {
        let mut out: Vec<UserId> = self.alerted.iter().map(|&u| UserId(u)).collect();
        out.sort_unstable();
        out
    }

    /// Number of accounts alerted so far.
    pub fn alerted_count(&self) -> usize {
        self.alerted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_and_background(buffer: &IngestBuffer) {
        for u in 0..8u32 {
            for v in 0..5u32 {
                buffer.append(UserId(u), MerchantId(v));
            }
        }
        for i in 0..200u32 {
            buffer.append(UserId(20 + i % 90), MerchantId(10 + i % 40));
        }
    }

    fn quick_config() -> EnsemFdetConfig {
        EnsemFdetConfig {
            num_samples: 10,
            sample_ratio: 0.7,
            seed: 9,
            ..Default::default()
        }
    }

    #[test]
    fn buffer_appends_are_counted_and_collected() {
        let b = IngestBuffer::with_shards(3);
        assert!(b.is_empty());
        b.append(UserId(0), MerchantId(1));
        b.append_batch([(UserId(1), MerchantId(2)), (UserId(2), MerchantId(0))]);
        assert_eq!(b.len(), 3);
        let mut edges = b.collect_edges();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn buffer_shard_order_does_not_change_the_graph() {
        // Same records through different shard counts build the same
        // deduplicated graph (MergeBinary sorts edges).
        let graphs: Vec<_> = [1usize, 4, 7]
            .into_iter()
            .map(|shards| {
                let b = IngestBuffer::with_shards(shards);
                ring_and_background(&b);
                let store = SnapshotStore::new(1);
                store.compact(&b).graph.edge_slice().to_vec()
            })
            .collect();
        assert_eq!(graphs[0], graphs[1]);
        assert_eq!(graphs[1], graphs[2]);
    }

    #[test]
    fn concurrent_appends_all_land() {
        let b = Arc::new(IngestBuffer::new());
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        b.append(UserId(t * 1000 + i), MerchantId(i % 17));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.len(), 2000);
        assert_eq!(b.collect_edges().len(), 2000);
    }

    #[test]
    fn store_starts_at_epoch_zero_and_bumps_on_compact() {
        let b = IngestBuffer::new();
        let store = SnapshotStore::new(10);
        let s0 = store.latest();
        assert_eq!(s0.epoch, 0);
        assert_eq!(s0.graph.num_edges(), 0);

        b.append(UserId(0), MerchantId(0));
        let s1 = store.compact(&b);
        assert_eq!(s1.epoch, 1);
        assert_eq!(s1.transactions, 1);
        assert_eq!(store.latest().epoch, 1);
    }

    #[test]
    fn refresh_honors_cadence_and_force() {
        let b = IngestBuffer::new();
        let store = SnapshotStore::new(100);
        for i in 0..5u32 {
            b.append(UserId(i), MerchantId(0));
        }
        // 5 < 100: cadence says not stale.
        assert_eq!(store.refresh(&b, false).epoch, 0);
        // Force compacts anything pending.
        assert_eq!(store.refresh(&b, true).epoch, 1);
        // Nothing new: force is a no-op, same snapshot comes back.
        assert_eq!(store.refresh(&b, true).epoch, 1);
        for i in 0..100u32 {
            b.append(UserId(i), MerchantId(1));
        }
        assert!(store.is_stale(&b));
        assert_eq!(store.refresh(&b, false).epoch, 2);
        assert_eq!(store.lag(&b), 0);
    }

    #[test]
    fn snapshots_are_immutable_under_later_ingest() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap = store.compact(&b);
        let (edges_before, txn_before) = (snap.graph.num_edges(), snap.transactions);
        for i in 0..500u32 {
            b.append(UserId(500 + i), MerchantId(300 + i));
        }
        store.compact(&b);
        // The old snapshot still reads exactly as published.
        assert_eq!(snap.graph.num_edges(), edges_before);
        assert_eq!(snap.transactions, txn_before);
        assert!(store.latest().transactions > txn_before);
    }

    #[test]
    fn runner_is_deterministic_per_epoch_and_seed() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap = store.compact(&b);
        let cfg = quick_config();
        let a = ScanRunner::new().run(&snap, &cfg, 6);
        let c = ScanRunner::new().run(&snap, &cfg, 6);
        assert_eq!(a.flagged, c.flagged);
        assert_eq!(a.votes, c.votes);
        assert_eq!(a.epoch, c.epoch);
    }

    #[test]
    fn runner_alerts_once_per_account() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap = store.compact(&b);
        let cfg = quick_config();
        let mut runner = ScanRunner::new();
        let first = runner.run(&snap, &cfg, 6);
        assert!(!first.flagged.is_empty());
        assert_eq!(first.flagged, first.new_alerts);
        let second = runner.run(&snap, &cfg, 6);
        assert_eq!(second.flagged, first.flagged);
        assert!(second.new_alerts.is_empty());
        assert_eq!(runner.alerted_count(), first.flagged.len());
    }

    #[test]
    fn outcome_carries_epoch_and_timings() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        store.compact(&b);
        b.append(UserId(900), MerchantId(900));
        let snap = store.compact(&b);
        let out = ScanRunner::new().run(&snap, &quick_config(), 6);
        assert_eq!(out.epoch, 2);
        assert_eq!(out.transactions, snap.transactions);
        assert_eq!(out.sample_times.len(), 10);
    }

    /// The incremental compaction path (per-shard drains, binary-search
    /// dedup, sorted merge) must publish the exact graph a from-scratch
    /// rebuild of the same buffer would.
    #[test]
    fn incremental_compaction_matches_full_rebuild() {
        let b = IngestBuffer::with_shards(4);
        let store = SnapshotStore::new(1);
        ring_and_background(&b);
        store.compact(&b);
        // Several epochs of mixed traffic: new edges, repeat purchases,
        // and a batch that is duplicates only.
        for round in 0..4u32 {
            match round {
                0 => {
                    for i in 0..50u32 {
                        b.append(UserId(200 + i), MerchantId(i % 9));
                    }
                }
                1 => {
                    // Repeat purchases only — dedup to nothing.
                    for _ in 0..30 {
                        b.append(UserId(0), MerchantId(0));
                    }
                }
                _ => {
                    for i in 0..20u32 {
                        b.append(UserId(i), MerchantId(100 + round + i % 3));
                    }
                }
            }
            let inc = store.compact(&b);
            // An untracked store takes the full-rebuild path over the
            // same buffer.
            let full = SnapshotStore::new(1).compact(&b);
            assert_eq!(
                inc.graph.edge_pairs(),
                full.graph.edge_pairs(),
                "round {round}"
            );
            assert_eq!(inc.graph.num_users(), full.graph.num_users());
            assert_eq!(inc.graph.num_merchants(), full.graph.num_merchants());
            assert_eq!(inc.transactions, full.transactions);
        }
    }

    #[test]
    fn compaction_publishes_deltas() {
        let b = IngestBuffer::new();
        let store = SnapshotStore::new(1);
        b.append(UserId(3), MerchantId(1));
        let s1 = store.compact(&b);
        let d1 = s1.delta.as_ref().expect("epoch 1 has a delta");
        assert_eq!((d1.from_epoch, d1.to_epoch), (0, 1));
        assert_eq!(d1.touched_users, vec![3]);

        // Duplicate-only batch: epoch bumps, graph is shared untouched.
        b.append(UserId(3), MerchantId(1));
        let s2 = store.compact(&b);
        assert_eq!(s2.epoch, 2);
        assert!(Arc::ptr_eq(&s2.graph, &s1.graph));
        assert!(s2.delta.as_ref().unwrap().graph_unchanged());
        assert_eq!(s2.transactions, 2);

        b.append(UserId(5), MerchantId(2));
        let s3 = store.compact(&b);
        let d3 = s3.delta.as_ref().unwrap();
        assert_eq!(d3.touched_users, vec![5]);
        assert_eq!(d3.touched_merchants, vec![2]);

        // Composition across the whole span.
        let span = store.delta_since(1, 3).expect("history retained");
        assert_eq!(span.touched_users, vec![5]);
        assert_eq!(span.base_dims, s1.dims());
        assert_eq!(span.new_dims, s3.dims());
        // Uncovered or inverted spans refuse.
        assert!(store.delta_since(3, 1).is_none());
        assert!(store.delta_since(7, 9).is_none());
    }

    #[test]
    fn incremental_run_reuses_and_matches_full() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap1 = store.compact(&b);
        let cfg = quick_config();
        let policy = IncrementalPolicy::default();

        let mut inc_runner = ScanRunner::new();
        let cold = inc_runner.run_incremental(&snap1, &store, &cfg, 6, &policy);
        assert_eq!(cold.reuse.fallback, Some(FallbackReason::ColdCache));
        assert_eq!(cold.reuse.mode(), "full");
        assert_eq!(inc_runner.cached_epoch(), Some(1));

        // Re-scan of the same epoch: everything replays.
        let again = inc_runner.run_incremental(&snap1, &store, &cfg, 6, &policy);
        assert!(again.reuse.incremental);
        assert_eq!(again.reuse.samples_reused, cfg.num_samples);
        assert_eq!(again.flagged, cold.flagged);
        assert_eq!(again.votes, cold.votes);

        // Grow by a few edges on existing nodes and scan incrementally;
        // a fresh runner's full scan is the oracle.
        for i in 0..6u32 {
            b.append(UserId(20 + i), MerchantId(2));
        }
        let snap2 = store.compact(&b);
        let inc = inc_runner.run_incremental(&snap2, &store, &cfg, 6, &policy);
        let full = ScanRunner::new().run(&snap2, &cfg, 6);
        assert!(inc.reuse.incremental);
        assert_eq!(inc.flagged, full.flagged);
        assert_eq!(inc.votes, full.votes);
        assert_eq!(
            inc.reuse.samples_reused + inc.reuse.samples_repeeled,
            cfg.num_samples
        );
        assert_eq!(inc.reuse.delta_touched_nodes, 7); // 6 users + 1 merchant
        assert_eq!(inc_runner.cached_epoch(), Some(2));
    }

    #[test]
    fn incremental_run_fallbacks() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap = store.compact(&b);
        let cfg = quick_config();
        let mut runner = ScanRunner::new();
        runner.run_incremental(&snap, &store, &cfg, 6, &IncrementalPolicy::default());

        // Config change invalidates wholesale.
        let mut other = cfg;
        other.seed = 1234;
        let out = runner.run_incremental(&snap, &store, &other, 6, &IncrementalPolicy::default());
        assert_eq!(out.reuse.fallback, Some(FallbackReason::ConfigChanged));
        let oracle = ScanRunner::new().run(&snap, &other, 6);
        assert_eq!(out.flagged, oracle.flagged);

        // A zero-tolerance policy rejects any real delta as oversized.
        b.append(UserId(300), MerchantId(300));
        let snap2 = store.compact(&b);
        let strict = IncrementalPolicy {
            max_touched_fraction: 0.0,
        };
        let out = runner.run_incremental(&snap2, &store, &other, 6, &strict);
        assert_eq!(out.reuse.fallback, Some(FallbackReason::OversizedDelta));
        assert_eq!(
            out.flagged,
            ScanRunner::new().run(&snap2, &other, 6).flagged
        );

        // Explicit invalidation goes back to the cold path.
        runner.invalidate_cache();
        assert_eq!(runner.cached_epoch(), None);
        let out = runner.run_incremental(&snap2, &store, &other, 6, &IncrementalPolicy::default());
        assert_eq!(out.reuse.fallback, Some(FallbackReason::ColdCache));
    }

    /// Hybrid scoring is computed on the parent snapshot after the
    /// ensemble pass, so (a) an unchanged scoring config keeps the
    /// incremental cache valid and the hybrid output bit-identical to a
    /// full scan's, and (b) any scoring change is a config change and
    /// takes the documented full-scan fallback.
    #[test]
    fn hybrid_scoring_reuses_cache_and_falls_back_on_change() {
        let b = IngestBuffer::new();
        ring_and_background(&b);
        let store = SnapshotStore::new(1);
        let snap1 = store.compact(&b);
        let mut cfg = quick_config();
        cfg.scoring = crate::scoring::ScoringConfig::enabled();
        let policy = IncrementalPolicy::default();

        let mut runner = ScanRunner::new();
        let cold = runner.run_incremental(&snap1, &store, &cfg, 6, &policy);
        assert_eq!(cold.reuse.fallback, Some(FallbackReason::ColdCache));
        assert!(cold.scoring.is_some());

        // Re-scan of the same epoch with the same scoring config: every
        // sample replays, and the hybrid output is still produced.
        let again = runner.run_incremental(&snap1, &store, &cfg, 6, &policy);
        assert_eq!(again.reuse.samples_reused, cfg.num_samples);
        let (a, b_scores) = (
            again.scoring.as_ref().unwrap(),
            cold.scoring.as_ref().unwrap(),
        );
        assert_eq!(a.hybrid, b_scores.hybrid);

        // Grow and rescan with the *same* scoring config: the cache is
        // still trusted and the hybrid output matches a from-scratch scan.
        for i in 0..6u32 {
            b.append(UserId(20 + i), MerchantId(2));
        }
        let snap2 = store.compact(&b);
        let inc = runner.run_incremental(&snap2, &store, &cfg, 6, &policy);
        assert!(inc.reuse.incremental, "unchanged scoring must keep reuse");
        let full = ScanRunner::new().run(&snap2, &cfg, 6);
        let (a, b_scores) = (inc.scoring.unwrap(), full.scoring.unwrap());
        assert_eq!(a.hybrid, b_scores.hybrid);
        assert_eq!(a.hybrid_flagged, b_scores.hybrid_flagged);
        assert_eq!(a.vote, b_scores.vote);
        assert_eq!(a.spectral, b_scores.spectral);
        assert_eq!(a.kcore, b_scores.kcore);

        // Any scoring knob change invalidates the cache wholesale.
        let mut retuned = cfg;
        retuned.scoring.vote_weight = 0.5;
        let out = runner.run_incremental(&snap2, &store, &retuned, 6, &policy);
        assert_eq!(out.reuse.fallback, Some(FallbackReason::ConfigChanged));
        assert!(out.scoring.is_some());

        // Disabling scoring is also a config change, and drops the field.
        let mut plain = cfg;
        plain.scoring = crate::scoring::ScoringConfig::default();
        let out = runner.run_incremental(&snap2, &store, &plain, 6, &policy);
        assert_eq!(out.reuse.fallback, Some(FallbackReason::ConfigChanged));
        assert!(out.scoring.is_none());
    }

    #[test]
    fn poisoned_shard_recovers() {
        let b = Arc::new(IngestBuffer::with_shards(1));
        let poisoner = Arc::clone(&b);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].lock().unwrap();
            panic!("poison the shard");
        })
        .join();
        // Appends and reads still work.
        b.append(UserId(1), MerchantId(1));
        assert_eq!(b.collect_edges().len(), 1);
    }
}
