//! Dirty-sample reuse: the cache and bookkeeping behind incremental
//! scans.
//!
//! A full ensemble pass is `N` independent sampled peels; epoch to epoch,
//! most of them are provably unchanged. The sampling layer can prove a
//! cached draw identical across a [`GraphDelta`](ensemfdet_graph::GraphDelta)
//! ([`ensemfdet_sampling::spec_unaffected`]), and a sample whose draw and
//! subgraph are both unchanged peels to the exact same blocks, scores,
//! and votes. So an incremental scan stores each sample's *parent-space
//! contribution* — everything the aggregation stage consumes — and at the
//! next epoch re-peels only the samples the delta dirtied, replaying the
//! rest from the cache. The result is bit-identical to a from-scratch
//! scan of the same `(epoch, seed)` (gated by
//! `tests/tests/incremental_scan.rs`); only wall-clock changes.
//!
//! Reuse is *conservative*: every fallback in [`FallbackReason`] degrades
//! to a correct full scan that also re-primes the cache. There is no path
//! that serves stale detection results.

use crate::ensemble::{EnsemFdetConfig, SampleSummary};
use ensemfdet_graph::{GraphDims, MerchantId, UserId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One sample's complete effect on a scan, recorded in parent id space.
///
/// This is exactly what the aggregation stage consumes: the detected node
/// sets for the vote tally, the `(node, block score)` pairs for the
/// evidence tally, and the per-sample diagnostics. Parent ids are stable
/// across epochs (the snapshot graph is append-only), so a contribution
/// recorded at epoch *e* replays unchanged into the dimension-sized
/// tallies of any later epoch.
#[derive(Clone, Debug)]
pub struct SampleContribution {
    /// Users this sample detected (parent ids, one vote each).
    pub users: Vec<UserId>,
    /// Merchants this sample detected (parent ids, one vote each).
    pub merchants: Vec<MerchantId>,
    /// `(user, block score)` evidence pairs. FDET blocks are
    /// node-disjoint, so each node appears at most once per sample.
    pub user_evidence: Vec<(UserId, f64)>,
    /// `(merchant, block score)` evidence pairs.
    pub merchant_evidence: Vec<(MerchantId, f64)>,
    /// Per-sample diagnostics. For a replayed contribution the timing
    /// fields still describe the run that *produced* it — the incremental
    /// pass's own cost shows up in the outcome-level timings instead.
    pub summary: SampleSummary,
}

/// The per-sample cache one scan leaves behind for the next.
///
/// Entries are `Arc`-shared so replaying a clean sample is a pointer
/// clone. The cache is valid only for the exact `(base_epoch, config)` it
/// was recorded under; [`ScanRunner::run_incremental`] checks both before
/// trusting it and otherwise falls back to a full scan.
///
/// [`ScanRunner::run_incremental`]: crate::pipeline::ScanRunner::run_incremental
#[derive(Clone, Debug)]
pub struct ScanCache {
    /// Epoch of the snapshot these contributions were computed against.
    pub base_epoch: u64,
    /// Dimensions of that snapshot's graph.
    pub base_dims: GraphDims,
    /// The exact detector configuration that produced the entries. Any
    /// difference — seed, ratio, method, engine, anything — invalidates
    /// the cache wholesale ([`FallbackReason::ConfigChanged`]).
    pub config: EnsemFdetConfig,
    /// One contribution per sample index, `config.num_samples` long.
    pub entries: Vec<Arc<SampleContribution>>,
}

/// Why an incremental scan degraded to a full re-peel.
///
/// Every variant is a *performance* event, not a correctness one: the
/// fallback runs the ordinary full scan and re-primes the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackReason {
    /// No cache yet — the first scan a runner performs, or the first
    /// after an explicit invalidation.
    ColdCache,
    /// The detector configuration differs from the one the cache was
    /// recorded under.
    ConfigChanged,
    /// The snapshot store could not produce a delta chaining the cache's
    /// base epoch to the scanned epoch (history evicted, or the epochs
    /// never chained).
    MissingDelta,
    /// The delta touched more than
    /// [`IncrementalPolicy::max_touched_fraction`] of the nodes — nearly
    /// every sample would re-peel anyway, so skip the per-sample checks
    /// and take the straight-line full scan.
    OversizedDelta,
}

impl FallbackReason {
    /// Stable lowercase label for telemetry and API payloads.
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::ColdCache => "cold_cache",
            FallbackReason::ConfigChanged => "config_changed",
            FallbackReason::MissingDelta => "missing_delta",
            FallbackReason::OversizedDelta => "oversized_delta",
        }
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// When to give up on reuse and re-peel everything.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IncrementalPolicy {
    /// Deltas touching more than this fraction of the new snapshot's
    /// nodes trigger [`FallbackReason::OversizedDelta`]. The default 0.1
    /// tracks the benchmark's regime split: below 10% touched, reuse
    /// wins; far above it, the cleanliness checks are pure overhead.
    pub max_touched_fraction: f64,
}

impl Default for IncrementalPolicy {
    fn default() -> Self {
        IncrementalPolicy {
            max_touched_fraction: 0.1,
        }
    }
}

/// How a scan outcome was produced — the reuse telemetry attached to
/// every [`ScanOutcome`](crate::pipeline::ScanOutcome).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ReuseStats {
    /// `true` when the per-sample reuse path actually ran; `false` for
    /// plain full scans, including incremental requests that fell back.
    pub incremental: bool,
    /// Why an incremental request degraded to a full scan, if it did.
    pub fallback: Option<FallbackReason>,
    /// Samples replayed from the cache.
    pub samples_reused: usize,
    /// Samples re-drawn and re-peeled (the "dirty" samples; equals `N`
    /// for a full scan).
    pub samples_repeeled: usize,
    /// Nodes the delta touched (0 when no delta was involved).
    pub delta_touched_nodes: usize,
    /// Those nodes as a fraction of the scanned snapshot's population.
    pub delta_touched_fraction: f64,
}

impl ReuseStats {
    /// Stats for a plain full scan of `n` samples.
    pub fn full(n: usize) -> Self {
        ReuseStats {
            samples_repeeled: n,
            ..Default::default()
        }
    }

    /// Stats for an incremental request that fell back to a full scan.
    pub fn fallback(n: usize, reason: FallbackReason) -> Self {
        ReuseStats {
            fallback: Some(reason),
            ..ReuseStats::full(n)
        }
    }

    /// Fraction of samples that had to re-peel (`1.0` for a full scan, by
    /// definition). This is the *dirty-sample fraction* exposed through
    /// telemetry: under sustained ingest with a localized delta it stays
    /// near the fraction of samples whose subgraph intersects the delta.
    pub fn dirty_fraction(&self) -> f64 {
        let total = self.samples_reused + self.samples_repeeled;
        if total == 0 {
            return 0.0;
        }
        self.samples_repeeled as f64 / total as f64
    }

    /// Stable mode label (`"incremental"` / `"full"`) for telemetry and
    /// API payloads.
    pub fn mode(&self) -> &'static str {
        if self.incremental {
            "incremental"
        } else {
            "full"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_fallback_stats() {
        let f = ReuseStats::full(8);
        assert!(!f.incremental);
        assert_eq!(f.samples_repeeled, 8);
        assert_eq!(f.dirty_fraction(), 1.0);
        assert_eq!(f.mode(), "full");

        let fb = ReuseStats::fallback(8, FallbackReason::OversizedDelta);
        assert_eq!(fb.fallback, Some(FallbackReason::OversizedDelta));
        assert_eq!(fb.mode(), "full");
    }

    #[test]
    fn dirty_fraction_of_mixed_scan() {
        let s = ReuseStats {
            incremental: true,
            samples_reused: 6,
            samples_repeeled: 2,
            ..Default::default()
        };
        assert!((s.dirty_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(s.mode(), "incremental");
        // Degenerate zero-sample stats don't divide by zero.
        assert_eq!(ReuseStats::default().dirty_fraction(), 0.0);
    }

    #[test]
    fn fallback_names_are_stable() {
        assert_eq!(FallbackReason::ColdCache.name(), "cold_cache");
        assert_eq!(FallbackReason::ConfigChanged.name(), "config_changed");
        assert_eq!(FallbackReason::MissingDelta.name(), "missing_delta");
        assert_eq!(FallbackReason::OversizedDelta.name(), "oversized_delta");
        assert_eq!(FallbackReason::ColdCache.to_string(), "cold_cache");
    }

    #[test]
    fn default_policy_is_ten_percent() {
        assert!((IncrementalPolicy::default().max_touched_fraction - 0.1).abs() < 1e-12);
    }
}
