//! Monotone bucket queue for the linear-time peel engine.
//!
//! The greedy peel is a *monotone* priority workload: the key of every pop
//! is ≥ the key of the previous pop (keys only decrease down to the current
//! minimum, never below it — a decrease below the minimum clamps the popped
//! sequence, not the queue invariant; see Ban & Duan, arXiv:1810.06809, for
//! why monotone decrease-key workloads admit bucket queues). That lets the
//! global `O(log n)` sift of [`LazyMinHeap`] be
//! replaced by constant-time routing for the bulk of the traffic:
//!
//! - Entries are the same lazy `(key, id)` pairs the heap uses, packed into
//!   `u128` words (IEEE-754 key bits high, id low) so comparisons stay one
//!   integer op with the id tie-break built in.
//! - The *bucket index* of a key is its high 16 bits of `f64::to_bits` —
//!   sign + exponent + 4 mantissa bits. For non-negative finite keys this
//!   index is monotone in the key and spans fewer than 2¹⁵ values, giving
//!   logarithmically-spaced buckets ≈6% relative width each: exactly the
//!   resolution profile a power-law suspiciousness distribution wants, with
//!   no per-peel `Δ` calibration step. (Coarser routing — e.g. one bucket
//!   per exponent octave — was measured slower overall: it bloats the
//!   per-bucket working sets and makes the batch engine's tie scan visit
//!   far more non-ties.)
//! - The structure is split at a *frontier* bucket that only ever advances.
//!   Buckets above the frontier are plain **unordered append logs** — a
//!   push there is one `Vec` append, no comparison, no sift — and
//!   [`fill`](BucketQueue::fill) is a pure distribution pass with no sorting at
//!   all. When the minimum reaches a bucket, the bucket is *absorbed*: its
//!   entries move (one sort) into a single small [`LazyMinHeap`] holding
//!   everything at or below the frontier. Pushes that land at or below the
//!   frontier — the decreases near the current minimum — go straight into
//!   that heap, whose working set is one bucket's worth of entries:
//!   shallow, cache-resident sifts instead of the global heap's deep ones.
//!   (The obvious alternative, keeping the minimum bucket sorted in place
//!   and splicing pushes in by binary search, was measured to shift ~100M
//!   slots per run on the JD3 workload — the memmove traffic dwarfed every
//!   other cost.)
//! - A two-level occupancy bitmap (one bit per bucket, one summary bit per
//!   64 buckets) finds the lowest non-empty log bucket in a handful of
//!   word scans, so an empty-bucket sweep never costs O(#buckets).
//!
//! Exactness needs no appeal to monotonicity: every log entry's bucket is
//! strictly above the frontier, every heap entry's is at or below it, and
//! the bucket index is monotone in the key — so whenever the heap is
//! non-empty its minimum is the global minimum, and the heap itself pops
//! in exact `(key, id)` lexicographic order. The pop sequence is therefore
//! identical to a single global heap's — not an approximation — which is
//! what lets the bucket engine keep the bit-identical equivalence gate
//! against the CSR engine. Monotonicity is what keeps the *frontier* heap
//! small and the append logs dominant, i.e. it is a performance property,
//! not a correctness assumption.
//!
//! Cost: a push is O(1) (append) or one shallow sift (frontier heap); a
//! pop is a heap pop plus, when the heap drains, a bitmap scan and one
//! bucket absorption. Absorbed entries never leave the heap, so each entry
//! is sorted at most once: a full peel over `E` edges costs O(E) plus
//! Σ bᵢ log bᵢ over the small per-bucket working sets — the engine's
//! linear-peel claim.

use crate::heap::LazyMinHeap;

/// Bucket index = top 16 bits of the key's IEEE-754 representation.
const BUCKET_SHIFT: u32 = 48;
/// Finite non-negative doubles have `to_bits() >> 48 <= 0x7FEF < 2^15`.
const NUM_BUCKETS: usize = 1 << 15;
/// One occupancy bit per bucket.
const OCC_WORDS: usize = NUM_BUCKETS / 64;
/// One summary bit per occupancy word.
const SUP_WORDS: usize = OCC_WORDS / 64;

#[inline]
fn bucket_of(key: f64) -> usize {
    debug_assert!(
        key >= 0.0 && key.is_sign_positive() && key.is_finite(),
        "BucketQueue requires finite non-negative keys (got {key})"
    );
    (key.to_bits() >> BUCKET_SHIFT) as usize
}

#[inline]
fn pack(element: u32, key: f64) -> u128 {
    debug_assert!(
        key >= 0.0 && key.is_sign_positive(),
        "BucketQueue requires non-negative keys (got {key} for element {element})"
    );
    ((key.to_bits() as u128) << 32) | element as u128
}

#[inline]
fn unpack(entry: u128) -> (f64, u32) {
    (f64::from_bits((entry >> 32) as u64), entry as u32)
}

/// A monotone bucket queue with the same lazy-entry semantics — and the
/// same total `(key, id)` pop order — as [`LazyMinHeap`].
///
/// Like the heap, it does not know which entries are current: callers push
/// a fresh entry on every key decrease and filter stale pops themselves.
/// Both structures pop *all* entries in ascending packed order, so a peel
/// driven by either sees byte-for-byte the same sequence.
#[derive(Clone, Debug, Default)]
pub struct BucketQueue {
    /// Append logs for buckets above the frontier. Lazily sized to
    /// [`NUM_BUCKETS`] on first use; untouched buckets never allocate.
    buckets: Vec<Vec<u128>>,
    /// Every pending entry whose bucket is at or below [`Self::frontier`]:
    /// the former minimum buckets (absorbed when the minimum reached them)
    /// plus the near-minimum decreases pushed since. Non-empty whenever
    /// the queue is (the invariant every mutating method restores), so
    /// peek and pop are direct heap operations.
    low: LazyMinHeap,
    /// Bit `b` set ⇔ log bucket `b` has pending entries (absorbed buckets
    /// are cleared; their entries are accounted to `low`).
    occ: Vec<u64>,
    /// Bit `w` set ⇔ occupancy word `w` is non-zero.
    sup: Vec<u64>,
    /// Buckets receiving log entries since the last [`clear`](Self::clear)
    /// (may contain duplicates); bounds the cost of clearing to the
    /// buckets actually used.
    touched: Vec<u32>,
    /// Total pending entries, stale included, across `low` and the logs.
    len: usize,
    /// Highest absorbed bucket. Entries with `bucket_of(key) <= frontier`
    /// route to `low`; all log entries sit strictly above. Only ever
    /// advances (to the next occupied bucket when `low` drains), so the
    /// occupancy scans sum to O(bitmap words) per drain.
    frontier: usize,
}

impl BucketQueue {
    /// An empty queue. Bucket storage is allocated on first use.
    pub fn new() -> Self {
        BucketQueue::default()
    }

    fn ensure_init(&mut self) {
        if self.buckets.is_empty() {
            self.buckets.resize_with(NUM_BUCKETS, Vec::new);
            self.occ.resize(OCC_WORDS, 0);
            self.sup.resize(SUP_WORDS, 0);
        }
    }

    #[inline]
    fn set_bit(&mut self, b: usize) {
        self.occ[b >> 6] |= 1u64 << (b & 63);
        self.sup[b >> 12] |= 1u64 << ((b >> 6) & 63);
    }

    #[inline]
    fn clear_bit(&mut self, b: usize) {
        let w = b >> 6;
        self.occ[w] &= !(1u64 << (b & 63));
        if self.occ[w] == 0 {
            self.sup[b >> 12] &= !(1u64 << (w & 63));
        }
    }

    /// Index of the lowest non-empty log bucket at or above `from`, or
    /// `None` when nothing is occupied there. One masked occupancy word,
    /// then a summary scan — at most `SUP_WORDS + 2` words touched.
    #[inline]
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        if from >= NUM_BUCKETS {
            return None;
        }
        let w0 = from >> 6;
        let bits = self.occ[w0] & (!0u64 << (from & 63));
        if bits != 0 {
            return Some((w0 << 6) + bits.trailing_zeros() as usize);
        }
        let next = w0 + 1;
        let mut mask = if next & 63 == 0 { !0u64 } else { !0u64 << (next & 63) };
        for sw in (next >> 6)..SUP_WORDS {
            let s = self.sup[sw] & mask;
            mask = !0;
            if s != 0 {
                let w = (sw << 6) + s.trailing_zeros() as usize;
                let bits = self.occ[w];
                debug_assert!(bits != 0, "summary bit set for empty occupancy word");
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Moves log bucket `b`'s entries into the frontier heap (one sort,
    /// inside [`LazyMinHeap::fill`]) and advances the frontier to `b`.
    /// Only called with the heap empty — absorbed entries never go back,
    /// so each entry is sorted at most once.
    fn absorb(&mut self, b: usize) {
        debug_assert!(self.low.is_empty(), "absorbing into a non-empty heap");
        debug_assert!(self.frontier <= b, "frontier only advances");
        let mut v = std::mem::take(&mut self.buckets[b]);
        self.low.fill(v.drain(..).map(|e| {
            let (k, id) = unpack(e);
            (id, k)
        }));
        self.buckets[b] = v; // keep the allocation for future appends
        self.clear_bit(b);
        self.frontier = b;
    }

    /// Restores the "heap non-empty unless the queue is" invariant by
    /// absorbing the lowest occupied log bucket, if any.
    #[inline]
    fn refill_low(&mut self) {
        if self.low.is_empty() && self.len > 0 {
            let b = self
                .first_occupied_from(self.frontier)
                .expect("pending entries but no occupied bucket");
            self.absorb(b);
        }
    }

    /// Drops every entry, keeping the allocations of touched buckets.
    pub fn clear(&mut self) {
        for &b in &self.touched {
            self.buckets[b as usize].clear();
        }
        self.touched.clear();
        self.low.clear();
        for w in &mut self.occ {
            *w = 0;
        }
        for w in &mut self.sup {
            *w = 0;
        }
        self.len = 0;
        self.frontier = 0;
    }

    /// Number of pending entries (including stale ones).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Replaces the contents with `entries`: one O(n) distribution pass
    /// routing each entry to its bucket log — no sorting; each bucket is
    /// sorted once, when the advancing minimum absorbs it.
    pub fn fill(&mut self, entries: impl IntoIterator<Item = (u32, f64)>) {
        self.clear();
        self.ensure_init();
        for (e, k) in entries {
            let b = bucket_of(k);
            let bucket = &mut self.buckets[b];
            if bucket.is_empty() {
                self.touched.push(b as u32);
                self.occ[b >> 6] |= 1u64 << (b & 63);
                self.sup[b >> 12] |= 1u64 << ((b >> 6) & 63);
            }
            bucket.push(pack(e, k));
            self.len += 1;
        }
        self.refill_low();
    }

    /// Pushes an entry for `element` with `key`: one append for a bucket
    /// above the frontier, one shallow sift into the frontier heap below.
    #[inline]
    pub fn push(&mut self, element: u32, key: f64) {
        self.ensure_init();
        let b = bucket_of(key);
        if b <= self.frontier {
            self.low.push(element, key);
            self.len += 1;
            return;
        }
        let bucket = &mut self.buckets[b];
        let was_empty = bucket.is_empty();
        bucket.push(pack(element, key));
        if was_empty {
            self.touched.push(b as u32);
            self.set_bit(b);
        }
        self.len += 1;
        // Only reachable when the queue was empty (any pending entry
        // keeps the heap non-empty): restore the invariant immediately.
        if self.low.is_empty() {
            self.absorb(b);
        }
    }

    /// Pushes a run of entries in order. Log routing is a random access
    /// into the bucket headers, so the batch first issues a prefetch sweep
    /// over every target header, then pushes; the entry sequence is
    /// exactly the equivalent [`push`](Self::push) loop's, only the misses
    /// overlap.
    pub fn push_all(&mut self, entries: &[(u32, f64)]) {
        self.ensure_init();
        for &(_, k) in entries {
            let b = bucket_of(k);
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `b < NUM_BUCKETS = self.buckets.len()` after
            // `ensure_init`, and prefetching has no side effects beyond
            // the cache.
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    self.buckets.as_ptr().add(b).cast::<i8>(),
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
            #[cfg(not(target_arch = "x86_64"))]
            let _ = b;
        }
        for &(e, k) in entries {
            self.push(e, k);
        }
    }

    /// The element the next [`pop`](Self::pop) will return (possibly
    /// stale), or `None` if empty. O(1): the frontier heap is non-empty
    /// whenever the queue is, and its front is the global minimum. Lets
    /// callers warm per-element state before committing to the pop,
    /// mirroring the heap's API.
    #[inline]
    pub fn peek_element(&self) -> Option<u32> {
        self.low.peek_element()
    }

    /// Removes and returns the smallest `(key, element)` entry, stale or
    /// not. Every log entry's bucket — hence key — is above the frontier
    /// heap's entire range, so the heap front is the exact `(key, id)`
    /// lexicographic minimum.
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, u32)> {
        let out = self.low.pop()?;
        self.len -= 1;
        // Absorb eagerly when the heap drains so the next peek stays O(1).
        self.refill_low();
        Some(out)
    }

    /// Visits every pending entry whose key falls in the same bucket as
    /// `key` — stale entries included, unspecified order. The batched peel
    /// uses this to collect exact-key ties without disturbing the queue.
    pub fn for_each_in_bucket_of(&self, key: f64, mut f: impl FnMut(f64, u32)) {
        let b = bucket_of(key);
        if b <= self.frontier {
            // Absorbed region: the bucket's entries live in the frontier
            // heap, mixed with its neighbors' — filter by bucket index.
            self.low.for_each_entry(|k, id| {
                if bucket_of(k) == b {
                    f(k, id);
                }
            });
        } else if let Some(bucket) = self.buckets.get(b) {
            for &e in bucket {
                let (k, id) = unpack(e);
                f(k, id);
            }
        }
    }

    /// Drops every entry that no longer carries its element's current key
    /// (an entry is stale when `current[element]`'s bits differ from its
    /// key; negative sentinels never match); pure pruning, the sequence of
    /// current pops is unchanged.
    pub fn retain_current(&mut self, current: &[f64]) {
        self.low.retain_current(current);
        self.touched.sort_unstable();
        self.touched.dedup();
        let mut len = self.low.len();
        for &b in &self.touched {
            let b = b as usize;
            let bucket = &mut self.buckets[b];
            if !bucket.is_empty() {
                bucket.retain(|&e| current[e as u32 as usize].to_bits() == (e >> 32) as u64);
            }
            if bucket.is_empty() {
                let w = b >> 6;
                self.occ[w] &= !(1u64 << (b & 63));
                if self.occ[w] == 0 {
                    self.sup[b >> 12] &= !(1u64 << (w & 63));
                }
            } else {
                len += bucket.len();
            }
        }
        self.len = len;
        // Pruning may have emptied the frontier heap while log entries
        // remain; restore the invariant.
        self.refill_low();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_in_key() {
        let keys = [0.0, 1e-300, 0.03125, 0.5, 0.99, 1.0, 1.5, 2.0, 1e18];
        for w in keys.windows(2) {
            assert!(bucket_of(w[0]) <= bucket_of(w[1]), "{:?}", w);
        }
        assert!(bucket_of(f64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn pops_in_key_then_id_order() {
        let mut q = BucketQueue::new();
        q.fill([(3, 2.5), (1, 0.5), (2, 0.5), (0, 7.0), (4, 0.0)]);
        q.push(9, 0.5); // same bucket and key as ids 1 and 2
        q.push(5, 1e-9); // far-below bucket, behind the frontier
        let mut out = Vec::new();
        while let Some((k, e)) = q.pop() {
            out.push((k, e));
        }
        assert_eq!(
            out,
            vec![
                (0.0, 4),
                (1e-9, 5),
                (0.5, 1),
                (0.5, 2),
                (0.5, 9),
                (2.5, 3),
                (7.0, 0)
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn clear_and_refill_reuses_buckets() {
        let mut q = BucketQueue::new();
        q.fill([(0, 1.0), (1, 2.0)]);
        assert_eq!(q.pop(), Some((1.0, 0)));
        q.fill([(7, 3.0)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((3.0, 7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = BucketQueue::new();
        q.fill([(2, 4.0), (8, 0.25), (5, 0.25)]);
        while let Some(e) = q.peek_element() {
            let (_, popped) = q.pop().expect("peek implies non-empty");
            assert_eq!(e, popped);
        }
    }

    #[test]
    fn retain_current_drops_stale_entries_only() {
        let mut q = BucketQueue::new();
        let mut key = vec![5.0, 4.0, 3.0];
        q.fill([(0, 5.0), (1, 4.0), (2, 3.0)]);
        // Decrease id 1 twice: two stale entries accumulate.
        key[1] = 2.0;
        q.push(1, 2.0);
        key[1] = 1.0;
        q.push(1, 1.0);
        assert_eq!(q.len(), 5);
        q.retain_current(&key);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((3.0, 2)));
        assert_eq!(q.pop(), Some((5.0, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pushes_below_and_at_the_frontier_keep_order() {
        // Exercise the frontier-heap routing: pops absorb buckets, then
        // pushes land inside and below the absorbed region.
        let mut q = BucketQueue::new();
        q.fill([(0, 1.0), (1, 1.25), (2, 1.5), (3, 64.0)]);
        assert_eq!(q.pop(), Some((1.0, 0)));
        q.push(4, 1.25); // tie with id 1, same absorbed bucket
        q.push(5, 1.125); // below the frontier bucket's range
        assert_eq!(q.pop(), Some((1.125, 5)));
        assert_eq!(q.pop(), Some((1.25, 1)));
        assert_eq!(q.pop(), Some((1.25, 4)));
        assert_eq!(q.pop(), Some((1.5, 2)));
        assert_eq!(q.pop(), Some((64.0, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_onto_drained_queue_restores_invariants() {
        let mut q = BucketQueue::new();
        q.fill([(0, 2.0)]);
        assert_eq!(q.pop(), Some((2.0, 0)));
        assert_eq!(q.pop(), None);
        // Above the frontier: the log absorption must re-arm peek/pop.
        q.push(1, 8.0);
        assert_eq!(q.peek_element(), Some(1));
        assert_eq!(q.pop(), Some((8.0, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_lazy_heap_pop_sequence() {
        // Same deterministic workload shape as the heap's own cross-check:
        // interleaved fills, pushes with ties, and full drains.
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..20 {
            let n = 1 + (next() % 64) as u32;
            let init: Vec<(u32, f64)> = (0..n)
                .map(|i| (i, ((next() % 32) as f64) * 0.125))
                .collect();
            let mut q = BucketQueue::new();
            let mut h = LazyMinHeap::new();
            q.fill(init.iter().copied());
            h.fill(init.iter().copied());
            for _ in 0..(next() % 96) {
                let e = (next() % n as u64) as u32;
                let k = ((next() % 32) as f64) * 0.125;
                q.push(e, k);
                h.push(e, k);
            }
            loop {
                let a = q.pop();
                let b = h.pop();
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
