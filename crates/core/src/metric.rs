//! Density metrics (Definition 2).
//!
//! The peel maximizes `φ(S) = f(S) / |S|` where
//! `f(S) = Σ_{(i,j) ∈ E(S)} w_ij · cw(d_j)` sums per-edge suspiciousness:
//! the edge's own weight `w_ij` times a **column weight** `cw(d_j)` derived
//! from the merchant endpoint's total degree `d_j` in the graph being peeled
//! (fixed before peeling starts, per Fraudar \[13\]).
//!
//! The paper's Definition 2 uses the Fraudar logarithmic column weight
//! `cw(d) = 1 / log(d + c)`: edges into popular merchants are cheap, so
//! fraudsters cannot hide a dense block behind camouflage edges to busy
//! legitimate merchants. [`AverageDegreeMetric`] (`cw ≡ 1`, Charikar's
//! greedy objective) is provided as the un-penalized ablation.

use serde::{Deserialize, Serialize};

/// A column-weighted density metric.
///
/// Implementations map a merchant's (weighted) degree to the suspiciousness
/// weight of each edge incident to it. They must be cheap: the peel calls
/// this once per merchant at setup.
pub trait DensityMetric: Send + Sync {
    /// Suspiciousness multiplier for edges into a merchant of total degree
    /// `degree` (weighted degree on weighted graphs).
    fn column_weight(&self, degree: f64) -> f64;

    /// Display name for experiment output.
    fn name(&self) -> &'static str;
}

/// Definition 2: `cw(d) = 1 / log(d + c)` with a small constant `c`
/// preventing a zero/negative denominator. Fraudar's choice is `c = 5`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogWeightedMetric {
    /// The smoothing constant `c` in `1/log(d + c)`. Must exceed 1 so the
    /// logarithm is positive for every degree ≥ 0.
    pub c: f64,
}

impl LogWeightedMetric {
    /// The paper's (and Fraudar's) default, `c = 5`.
    pub fn paper_default() -> Self {
        LogWeightedMetric { c: 5.0 }
    }
}

impl Default for LogWeightedMetric {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl DensityMetric for LogWeightedMetric {
    #[inline]
    fn column_weight(&self, degree: f64) -> f64 {
        debug_assert!(self.c > 1.0, "c must exceed 1 for a positive log");
        1.0 / (degree.max(0.0) + self.c).ln()
    }

    fn name(&self) -> &'static str {
        "log_weighted"
    }
}

/// Charikar's plain average-degree objective: every edge counts 1, so
/// `φ(S) = |E(S)| / |S|`. No camouflage resistance — the ablation baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AverageDegreeMetric;

impl DensityMetric for AverageDegreeMetric {
    #[inline]
    fn column_weight(&self, _degree: f64) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "average_degree"
    }
}

/// Serializable metric selector for configs; dispatches to the trait impls.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MetricKind {
    /// [`LogWeightedMetric`] with the given `c`.
    LogWeighted {
        /// Smoothing constant.
        c: f64,
    },
    /// [`AverageDegreeMetric`].
    AverageDegree,
}

impl Default for MetricKind {
    fn default() -> Self {
        MetricKind::LogWeighted { c: 5.0 }
    }
}

impl DensityMetric for MetricKind {
    #[inline]
    fn column_weight(&self, degree: f64) -> f64 {
        match self {
            MetricKind::LogWeighted { c } => LogWeightedMetric { c: *c }.column_weight(degree),
            MetricKind::AverageDegree => AverageDegreeMetric.column_weight(degree),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            MetricKind::LogWeighted { .. } => "log_weighted",
            MetricKind::AverageDegree => "average_degree",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_weight_penalizes_high_degree() {
        let m = LogWeightedMetric::paper_default();
        let low = m.column_weight(1.0);
        let high = m.column_weight(10_000.0);
        assert!(low > high);
        assert!(high > 0.0);
    }

    #[test]
    fn log_weight_is_monotone_decreasing() {
        let m = LogWeightedMetric::paper_default();
        let mut prev = f64::INFINITY;
        for d in 0..100 {
            let w = m.column_weight(d as f64 * 3.0);
            assert!(w < prev || d == 0 && w <= prev);
            prev = w;
        }
    }

    #[test]
    fn log_weight_zero_degree_is_finite() {
        let m = LogWeightedMetric { c: 5.0 };
        let w = m.column_weight(0.0);
        assert!((w - 1.0 / 5.0f64.ln()).abs() < 1e-12);
        // Negative degrees (impossible, but defensive) are clamped.
        assert!(m.column_weight(-3.0).is_finite());
    }

    #[test]
    fn average_degree_is_constant_one() {
        assert_eq!(AverageDegreeMetric.column_weight(0.0), 1.0);
        assert_eq!(AverageDegreeMetric.column_weight(1e9), 1.0);
    }

    #[test]
    fn metric_kind_dispatch_matches_impls() {
        let k = MetricKind::LogWeighted { c: 5.0 };
        assert_eq!(
            k.column_weight(7.0),
            LogWeightedMetric { c: 5.0 }.column_weight(7.0)
        );
        assert_eq!(k.name(), "log_weighted");
        let k = MetricKind::AverageDegree;
        assert_eq!(k.column_weight(7.0), 1.0);
        assert_eq!(k.name(), "average_degree");
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(MetricKind::default(), MetricKind::LogWeighted { c: 5.0 });
        assert_eq!(LogWeightedMetric::default(), LogWeightedMetric { c: 5.0 });
    }
}
