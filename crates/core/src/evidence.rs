//! Score-weighted evidence aggregation — the paper's "aggregation methods
//! are flexible" hook (Section IV-C) made concrete.
//!
//! Instead of one flat vote per sample, a node accumulates the **density
//! score of the block that contained it** in each sample: being found in a
//! φ = 1.8 quasi-clique is stronger evidence than being swept into a
//! φ = 0.3 fringe block. Thresholding accumulated evidence gives an
//! alternative, fully continuous operating curve; [`VoteTally`] remains the
//! paper's Definition 4.
//!
//! [`VoteTally`]: crate::aggregate::VoteTally

use ensemfdet_graph::{MerchantId, UserId};
use serde::{Deserialize, Serialize};

/// Accumulated block-score evidence per node in the parent id space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvidenceTally {
    /// Summed block scores per user.
    pub user_evidence: Vec<f64>,
    /// Summed block scores per merchant.
    pub merchant_evidence: Vec<f64>,
    /// Number of contributing samples.
    pub num_samples: usize,
}

impl EvidenceTally {
    /// An empty tally for a graph of the given dimensions.
    pub fn new(num_users: usize, num_merchants: usize) -> Self {
        EvidenceTally {
            user_evidence: vec![0.0; num_users],
            merchant_evidence: vec![0.0; num_merchants],
            num_samples: 0,
        }
    }

    /// Registers one sample's detections with their block scores.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite block score.
    pub fn add_sample(
        &mut self,
        users: impl IntoIterator<Item = (UserId, f64)>,
        merchants: impl IntoIterator<Item = (MerchantId, f64)>,
    ) {
        for (u, score) in users {
            assert!(score.is_finite() && score >= 0.0, "bad block score {score}");
            self.user_evidence[u.index()] += score;
        }
        for (v, score) in merchants {
            assert!(score.is_finite() && score >= 0.0, "bad block score {score}");
            self.merchant_evidence[v.index()] += score;
        }
        self.num_samples += 1;
    }

    /// Merges another tally (parallel shard) into this one.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &EvidenceTally) {
        assert_eq!(self.user_evidence.len(), other.user_evidence.len());
        assert_eq!(self.merchant_evidence.len(), other.merchant_evidence.len());
        for (a, b) in self.user_evidence.iter_mut().zip(&other.user_evidence) {
            *a += b;
        }
        for (a, b) in self
            .merchant_evidence
            .iter_mut()
            .zip(&other.merchant_evidence)
        {
            *a += b;
        }
        self.num_samples += other.num_samples;
    }

    /// Users whose accumulated evidence strictly exceeds `min_evidence`.
    pub fn detected_users(&self, min_evidence: f64) -> Vec<UserId> {
        self.user_evidence
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e > min_evidence)
            .map(|(i, _)| UserId(i as u32))
            .collect()
    }

    /// Merchants whose accumulated evidence strictly exceeds `min_evidence`.
    pub fn detected_merchants(&self, min_evidence: f64) -> Vec<MerchantId> {
        self.merchant_evidence
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e > min_evidence)
            .map(|(i, _)| MerchantId(i as u32))
            .collect()
    }

    /// Evidence values as scores for `ensemfdet_eval`-style sweeps.
    pub fn user_scores(&self) -> &[f64] {
        &self.user_evidence
    }

    /// Largest accumulated user evidence.
    pub fn max_user_evidence(&self) -> f64 {
        self.user_evidence.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally() -> EvidenceTally {
        let mut t = EvidenceTally::new(3, 2);
        t.add_sample(
            [(UserId(0), 1.5), (UserId(1), 0.4)],
            [(MerchantId(0), 1.5)],
        );
        t.add_sample([(UserId(0), 0.9)], [(MerchantId(1), 0.9)]);
        t
    }

    #[test]
    fn evidence_accumulates() {
        let t = tally();
        assert!((t.user_evidence[0] - 2.4).abs() < 1e-12);
        assert!((t.user_evidence[1] - 0.4).abs() < 1e-12);
        assert_eq!(t.user_evidence[2], 0.0);
        assert_eq!(t.num_samples, 2);
    }

    #[test]
    fn detection_threshold_is_strict() {
        let t = tally();
        assert_eq!(t.detected_users(0.0).len(), 2);
        assert_eq!(t.detected_users(0.5), vec![UserId(0)]);
        assert!(t.detected_users(3.0).is_empty());
        assert_eq!(t.detected_merchants(1.0), vec![MerchantId(0)]);
    }

    #[test]
    fn detection_is_monotone_in_threshold() {
        let t = tally();
        let mut prev = usize::MAX;
        for cut in [0.0, 0.5, 1.0, 2.0, 3.0] {
            let n = t.detected_users(cut).len();
            assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = EvidenceTally::new(3, 2);
        a.add_sample(
            [(UserId(0), 1.5), (UserId(1), 0.4)],
            [(MerchantId(0), 1.5)],
        );
        let mut b = EvidenceTally::new(3, 2);
        b.add_sample([(UserId(0), 0.9)], [(MerchantId(1), 0.9)]);
        a.merge(&b);
        assert_eq!(a, tally());
    }

    #[test]
    #[should_panic(expected = "bad block score")]
    fn negative_score_rejected() {
        let mut t = EvidenceTally::new(1, 1);
        t.add_sample([(UserId(0), -1.0)], []);
    }

    #[test]
    fn max_evidence() {
        assert!((tally().max_user_evidence() - 2.4).abs() < 1e-12);
        assert_eq!(EvidenceTally::new(2, 2).max_user_evidence(), 0.0);
    }
}
