#![warn(missing_docs)]

//! **EnsemFDet** — ensemble fraud detection on bipartite graphs.
//!
//! Reproduction of *Ren, Zhu, Zhang, Dai, Bo: "EnsemFDet: An Ensemble
//! Approach to Fraud Detection based on Bipartite Graph", ICDE 2021*.
//!
//! The pipeline (Algorithm 2 of the paper):
//!
//! 1. **Sample** the *who-buys-from-where* graph `N` times at ratio `S`
//!    with a structural sampling method (RES / ONS / TNS, from
//!    [`ensemfdet_sampling`]).
//! 2. Run **FDET** ([`mod@fdet`]) on every sample — greedy densest-subgraph
//!    peeling ([`peel`]) under a camouflage-resistant density metric
//!    ([`metric`]), iterated to extract disjoint dense blocks and truncated
//!    automatically at the Δ²φ elbow ([`truncate`], Definition 3).
//! 3. **Vote**: a node is fraudulent iff it was detected in ≥ `T` of the `N`
//!    samples ([`aggregate`], Definition 4). Sweeping `T` gives the smooth
//!    precision–recall trade-off that is the paper's practicality claim.
//!
//! # Quickstart
//!
//! ```
//! use ensemfdet::{EnsemFdet, EnsemFdetConfig, Truncation};
//! use ensemfdet_graph::GraphBuilder;
//! use ensemfdet_graph::{UserId, MerchantId};
//!
//! // A small graph with an obvious dense block: users 0–4 all hit
//! // merchants 0–2; the rest of the graph is sparse.
//! let mut b = GraphBuilder::new();
//! for u in 0..5 {
//!     for v in 0..3 {
//!         b.add_edge(UserId(u), MerchantId(v));
//!     }
//! }
//! for u in 5..30 {
//!     b.add_edge(UserId(u), MerchantId(3 + (u % 10)));
//! }
//! let g = b.build();
//!
//! let detector = EnsemFdet::new(EnsemFdetConfig {
//!     num_samples: 8,
//!     sample_ratio: 0.7,
//!     // Keep only the densest block per sample — on this graph that is
//!     // always the planted block, so background users get zero votes.
//!     truncation: Truncation::FixedK(1),
//!     ..Default::default()
//! });
//! let outcome = detector.detect(&g);
//! // A majority vote (T = 5 of N = 8) flags the planted block's users.
//! let frauds = outcome.votes.detected_users(5);
//! assert!(!frauds.is_empty());
//! assert!(frauds.iter().all(|u| u.0 < 5), "only block users flagged");
//! ```

pub mod aggregate;
pub mod block;
pub mod bucket;
pub mod detector;
pub mod engine;
pub mod ensemble;
pub mod evidence;
pub mod fdet;
pub mod heap;
pub mod incremental;
pub mod metric;
pub mod monitor;
pub mod peel;
pub mod pipeline;
pub mod scoring;
pub mod truncate;

pub use aggregate::VoteTally;
pub use block::Block;
pub use bucket::BucketQueue;
pub use detector::{DetectContext, Detector, DetectorOutput};
pub use engine::{Engine, FdetEngine};
pub use ensemble::{
    EnsembleOutcome, EnsemFdet, EnsemFdetConfig, SamplePath, SampleSummary,
    SamplingMethodConfig, StageTimings,
};
pub use evidence::EvidenceTally;
pub use fdet::{fdet, fdet_with_engine, FdetResult, Truncation};
pub use incremental::{
    FallbackReason, IncrementalPolicy, ReuseStats, SampleContribution, ScanCache,
};
pub use metric::{AverageDegreeMetric, DensityMetric, LogWeightedMetric, MetricKind};
pub use monitor::{CampaignMonitor, MonitorConfig, ScanReport};
pub use peel::peel_densest;
pub use pipeline::{
    IngestBuffer, ScanOutcome, ScanRunner, Snapshot, SnapshotStore, DELTA_HISTORY,
};
pub use scoring::{
    best_f1, calibrate_weights, hybrid_scan_scores, kcore_scores, normalize_scores,
    spectral_scores, Calibration, HybridScanScores, HybridScorer, ScoreNormalization,
    ScoringConfig,
};
