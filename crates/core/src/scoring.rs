//! Hybrid scoring: weighted fusion of complementary detection signals.
//!
//! Single methods degrade differently under camouflage — density peeling
//! loses loosely-synchronized rings, spectral methods lose large diffuse
//! ones, and k-core structure survives both (FraudTrap, arXiv:1810.08885;
//! Ban et al., arXiv:1810.06809). The [`HybridScorer`] fuses three
//! components computed **once on the parent graph** (never per sample):
//!
//! * **vote** — the ensemble's vote fraction (`votes / N`), the paper's
//!   own detector;
//! * **spectral** — SpokEn-style anomaly: each user's largest magnitude
//!   across the top-k left singular vectors of the adjacency matrix;
//! * **kcore** — the user's core number, normalized by the graph's
//!   degeneracy.
//!
//! Components are normalized (rank or min-max), floored by per-component
//! thresholds, and combined as a weighted mean, so the fused score stays
//! in `[0, 1]`. Both normalizations are strictly monotone on distinct
//! values and preserve ties, which gives the degenerate-weight guarantee
//! the property tests pin down: weight `(1, 0, 0)` reproduces the vote
//! ranking exactly (and likewise for the other corners, floors at 0).
//!
//! [`ScoringConfig`] lives inside
//! [`EnsemFdetConfig`](crate::EnsemFdetConfig), so it participates in the
//! config equality the incremental scan cache keys on: changing any
//! scoring knob between epochs triggers the documented `config_changed`
//! full-scan fallback, and an unchanged one keeps dirty-sample reuse
//! bit-identical.

use crate::aggregate::VoteTally;
use crate::detector::DetectContext;
use ensemfdet_graph::{core_decomposition, UserId};
use ensemfdet_linalg::{randomized_svd, SvdOptions};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How raw component scores are mapped onto `[0, 1]` before fusion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreNormalization {
    /// `(x - min) / (max - min)`; a constant vector maps to all zeros
    /// (no evidence separates anyone).
    #[default]
    MinMax,
    /// Competition rank: a score's fraction of strictly-smaller entries,
    /// `|{y : y < x}| / (n - 1)`. Ties share a value; robust to heavy
    /// tails in the raw scores.
    Rank,
}

impl ScoreNormalization {
    /// Stable lowercase name (`minmax` / `rank`), as accepted by
    /// [`FromStr`](std::str::FromStr) and the CLI `--scoring` flag.
    pub fn name(self) -> &'static str {
        match self {
            ScoreNormalization::MinMax => "minmax",
            ScoreNormalization::Rank => "rank",
        }
    }
}

impl std::fmt::Display for ScoreNormalization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ScoreNormalization {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "minmax" => Ok(ScoreNormalization::MinMax),
            "rank" => Ok(ScoreNormalization::Rank),
            other => Err(format!("unknown normalization `{other}` (minmax|rank)")),
        }
    }
}

/// Configuration of the hybrid scorer.
///
/// Part of [`EnsemFdetConfig`](crate::EnsemFdetConfig) — and therefore of
/// the incremental cache's equality key — because it changes what a scan
/// reports. `enabled: false` (the default) keeps scans exactly as before
/// the hybrid existed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoringConfig {
    /// Whether hybrid scoring runs at all.
    #[serde(default)]
    pub enabled: bool,
    /// Weight of the ensemble vote fraction.
    pub vote_weight: f64,
    /// Weight of the spectral (SpokEn-style) anomaly component.
    pub spectral_weight: f64,
    /// Weight of the normalized k-core depth component.
    pub kcore_weight: f64,
    /// Normalization applied to each component before fusion.
    #[serde(default)]
    pub normalization: ScoreNormalization,
    /// Per-component floor: normalized vote scores below it contribute 0.
    #[serde(default)]
    pub vote_floor: f64,
    /// Per-component floor for the spectral component.
    #[serde(default)]
    pub spectral_floor: f64,
    /// Per-component floor for the k-core component.
    #[serde(default)]
    pub kcore_floor: f64,
    /// Users with fused score ≥ this are hybrid-flagged.
    pub hybrid_threshold: f64,
    /// SVD components for the spectral score (clamped to the graph's
    /// dimensions at scan time).
    pub spectral_components: usize,
    /// RNG seed of the spectral component's randomized-SVD sketch.
    pub spectral_seed: u64,
}

impl Default for ScoringConfig {
    /// Hybrid off; when enabled, vote-heavy weights in the shape of the
    /// reference `score_weights` config (vote 0.6 / spectral 0.25 /
    /// k-core 0.15), min-max normalization, flag at 0.35.
    fn default() -> Self {
        ScoringConfig {
            enabled: false,
            vote_weight: 0.6,
            spectral_weight: 0.25,
            kcore_weight: 0.15,
            normalization: ScoreNormalization::default(),
            vote_floor: 0.0,
            spectral_floor: 0.0,
            kcore_floor: 0.0,
            hybrid_threshold: 0.35,
            spectral_components: 25,
            spectral_seed: 0x5C0E,
        }
    }
}

impl ScoringConfig {
    /// A default configuration with hybrid scoring switched on.
    pub fn enabled() -> Self {
        ScoringConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// The weight vector `[vote, spectral, kcore]`.
    pub fn weights(&self) -> [f64; 3] {
        [self.vote_weight, self.spectral_weight, self.kcore_weight]
    }

    /// Checks every knob; the message names the offending field. This is
    /// what backs the service's 400 `invalid_config` responses.
    pub fn validate(&self) -> Result<(), String> {
        for (name, w) in [
            ("vote", self.vote_weight),
            ("spectral", self.spectral_weight),
            ("kcore", self.kcore_weight),
        ] {
            if !w.is_finite() || w < 0.0 {
                return Err(format!(
                    "scoring weight `{name}` must be finite and >= 0, got {w}"
                ));
            }
        }
        if self.weights().iter().sum::<f64>() <= 0.0 {
            return Err("scoring weights must not all be zero".into());
        }
        for (name, t) in [
            ("vote_floor", self.vote_floor),
            ("spectral_floor", self.spectral_floor),
            ("kcore_floor", self.kcore_floor),
            ("hybrid_threshold", self.hybrid_threshold),
        ] {
            if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                return Err(format!("scoring `{name}` must be in [0, 1], got {t}"));
            }
        }
        if self.spectral_components == 0 {
            return Err("scoring `spectral_components` must be at least 1".into());
        }
        Ok(())
    }
}

impl std::str::FromStr for ScoringConfig {
    type Err = String;

    /// Parses the CLI `--scoring` spec: `hybrid` (defaults, enabled) or
    /// comma-separated `key=value` pairs, e.g.
    /// `vote=0.5,spectral=0.3,kcore=0.2,norm=rank,threshold=0.4`.
    ///
    /// Keys: `vote` / `spectral` / `kcore` (weights), `norm`
    /// (`minmax|rank`), `threshold` (hybrid flag threshold),
    /// `vote-floor` / `spectral-floor` / `kcore-floor`, `components`,
    /// `seed`. Any spec enables scoring.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cfg = ScoringConfig::enabled();
        if s == "hybrid" || s.is_empty() {
            return Ok(cfg);
        }
        for part in s.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("scoring spec item `{part}` is not key=value"))?;
            let num = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("scoring `{key}` value `{value}` is not a number"))
            };
            match key {
                "vote" => cfg.vote_weight = num()?,
                "spectral" => cfg.spectral_weight = num()?,
                "kcore" => cfg.kcore_weight = num()?,
                "norm" => cfg.normalization = value.parse()?,
                "threshold" => cfg.hybrid_threshold = num()?,
                "vote-floor" => cfg.vote_floor = num()?,
                "spectral-floor" => cfg.spectral_floor = num()?,
                "kcore-floor" => cfg.kcore_floor = num()?,
                "components" => {
                    cfg.spectral_components = value
                        .parse()
                        .map_err(|_| format!("scoring `components` value `{value}` is not a count"))?
                }
                "seed" => {
                    cfg.spectral_seed = value
                        .parse()
                        .map_err(|_| format!("scoring `seed` value `{value}` is not a u64"))?
                }
                other => {
                    return Err(format!(
                        "unknown scoring key `{other}` (vote|spectral|kcore|norm|threshold|\
                         vote-floor|spectral-floor|kcore-floor|components|seed)"
                    ))
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Maps raw scores onto `[0, 1]` with the chosen normalization. Both
/// choices are strictly monotone on distinct values and preserve ties,
/// so normalization never reorders a ranking.
pub fn normalize_scores(scores: &[f64], normalization: ScoreNormalization) -> Vec<f64> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    match normalization {
        ScoreNormalization::MinMax => {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &s in scores {
                lo = lo.min(s);
                hi = hi.max(s);
            }
            if hi <= lo {
                return vec![0.0; n];
            }
            scores.iter().map(|&s| (s - lo) / (hi - lo)).collect()
        }
        ScoreNormalization::Rank => {
            if n == 1 {
                return vec![0.0];
            }
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| {
                scores[a]
                    .partial_cmp(&scores[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut out = vec![0.0; n];
            let denom = (n - 1) as f64;
            let mut i = 0;
            while i < n {
                // Tie group shares the count of strictly-smaller entries.
                let mut j = i;
                while j < n && scores[idx[j]] == scores[idx[i]] {
                    j += 1;
                }
                for &k in &idx[i..j] {
                    out[k] = i as f64 / denom;
                }
                i = j;
            }
            out
        }
    }
}

/// Fuses normalized component scores into one hybrid score per user.
#[derive(Clone, Copy, Debug)]
pub struct HybridScorer {
    config: ScoringConfig,
}

impl HybridScorer {
    /// Builds a scorer.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`ScoringConfig::validate`];
    /// fallible callers validate first).
    pub fn new(config: ScoringConfig) -> Self {
        config.validate().expect("invalid scoring config");
        HybridScorer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScoringConfig {
        &self.config
    }

    /// Normalizes each raw component, applies its floor, and returns the
    /// weighted mean — one fused score in `[0, 1]` per user.
    ///
    /// # Panics
    ///
    /// Panics on component length mismatch.
    pub fn fuse(&self, vote: &[f64], spectral: &[f64], kcore: &[f64]) -> Vec<f64> {
        assert_eq!(vote.len(), spectral.len(), "component length mismatch");
        assert_eq!(vote.len(), kcore.len(), "component length mismatch");
        let cfg = &self.config;
        let norm = cfg.normalization;
        let floored = |scores: &[f64], floor: f64| -> Vec<f64> {
            let mut v = normalize_scores(scores, norm);
            if floor > 0.0 {
                for s in &mut v {
                    if *s < floor {
                        *s = 0.0;
                    }
                }
            }
            v
        };
        let v = floored(vote, cfg.vote_floor);
        let s = floored(spectral, cfg.spectral_floor);
        let k = floored(kcore, cfg.kcore_floor);
        let total = cfg.vote_weight + cfg.spectral_weight + cfg.kcore_weight;
        (0..vote.len())
            .map(|i| {
                (cfg.vote_weight * v[i] + cfg.spectral_weight * s[i] + cfg.kcore_weight * k[i])
                    / total
            })
            .collect()
    }
}

/// The per-user component and fused scores of one hybrid scan, all in
/// `[0, 1]` and indexed by parent user id.
#[derive(Clone, Debug)]
pub struct HybridScanScores {
    /// The scoring configuration that produced this.
    pub config: ScoringConfig,
    /// Raw vote fraction (`votes / N`).
    pub vote: Vec<f64>,
    /// Raw spectral anomaly (max singular-vector magnitude, clamped).
    pub spectral: Vec<f64>,
    /// k-core depth normalized by the graph's degeneracy.
    pub kcore: Vec<f64>,
    /// The fused hybrid score.
    pub hybrid: Vec<f64>,
    /// Users with `hybrid >= config.hybrid_threshold`, ascending.
    pub hybrid_flagged: Vec<UserId>,
    /// Wall-clock of the `[vote, spectral, kcore]` component passes (the
    /// vote component's slot covers only the fraction conversion — the
    /// ensemble itself is timed by the scan's stage timings).
    pub component_times: [Duration; 3],
}

/// The spectral anomaly component: each user's largest magnitude across
/// the top-k left singular vectors of the context's adjacency matrix
/// (SpokEn's spoke statistic), clamped to `[0, 1]`. Deterministic in
/// `(graph, components, seed)`.
pub fn spectral_scores(ctx: &DetectContext<'_>, config: &ScoringConfig) -> Vec<f64> {
    let g = ctx.graph();
    let k = config
        .spectral_components
        .min(g.num_users())
        .min(g.num_merchants());
    if k == 0 || g.num_edges() == 0 {
        return vec![0.0; g.num_users()];
    }
    let svd = randomized_svd(
        ctx.adjacency(),
        k,
        SvdOptions {
            seed: config.spectral_seed,
            ..Default::default()
        },
    );
    (0..g.num_users())
        .map(|u| {
            (0..svd.rank())
                .map(|i| svd.u[(u, i)].abs())
                .fold(0.0f64, f64::max)
                .clamp(0.0, 1.0)
        })
        .collect()
}

/// The k-core depth component: core number / degeneracy, `[0, 1]`.
pub fn kcore_scores(ctx: &DetectContext<'_>) -> Vec<f64> {
    let cores = core_decomposition(ctx.graph());
    let max = cores.degeneracy.max(1) as f64;
    cores.user_core.iter().map(|&c| c as f64 / max).collect()
}

/// Runs the full hybrid pass for one scan: vote fraction from `votes`,
/// spectral and k-core components from the shared context (adjacency
/// assembled at most once), fused by [`HybridScorer`]. Everything is
/// computed on the parent graph, so the result is identical whether the
/// ensemble pass was full or incremental.
pub fn hybrid_scan_scores(
    ctx: &DetectContext<'_>,
    votes: &VoteTally,
    config: &ScoringConfig,
) -> HybridScanScores {
    let t0 = Instant::now();
    let vote = votes.user_scores();
    let t_vote = t0.elapsed();
    let t1 = Instant::now();
    let spectral = spectral_scores(ctx, config);
    let t_spectral = t1.elapsed();
    let t2 = Instant::now();
    let kcore = kcore_scores(ctx);
    let t_kcore = t2.elapsed();

    let hybrid = HybridScorer::new(*config).fuse(&vote, &spectral, &kcore);
    let hybrid_flagged = hybrid
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s >= config.hybrid_threshold)
        .map(|(i, _)| UserId(i as u32))
        .collect();
    HybridScanScores {
        config: *config,
        vote,
        spectral,
        kcore,
        hybrid,
        hybrid_flagged,
        component_times: [t_vote, t_spectral, t_kcore],
    }
}

/// What a calibration sweep settled on.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// The base config with the fitted weights substituted in.
    pub config: ScoringConfig,
    /// Best F1 the fitted weights reach on the labeled data (over a
    /// threshold sweep of the fused score).
    pub best_f1: f64,
    /// Weight vectors evaluated.
    pub grid_evaluated: usize,
}

/// Fits the fusion weights against labeled data: sweeps the weight
/// simplex in steps of `1/10` (66 combinations, including the three
/// degenerate single-method corners) and keeps the vector whose fused
/// score reaches the highest [`best_f1`]. Ties keep the first —
/// vote-heaviest — vector, so calibration never drifts off the ensemble
/// without a measured win. By construction the result is at least as
/// good (in fitted-set F1) as any single component alone.
pub fn calibrate_weights(
    vote: &[f64],
    spectral: &[f64],
    kcore: &[f64],
    labels: &[bool],
    base: &ScoringConfig,
) -> Calibration {
    const STEPS: u32 = 10;
    let mut best: Option<(f64, ScoringConfig)> = None;
    let mut evaluated = 0;
    for v in (0..=STEPS).rev() {
        for s in 0..=(STEPS - v) {
            let k = STEPS - v - s;
            let candidate = ScoringConfig {
                enabled: true,
                vote_weight: v as f64 / STEPS as f64,
                spectral_weight: s as f64 / STEPS as f64,
                kcore_weight: k as f64 / STEPS as f64,
                ..*base
            };
            let fused = HybridScorer::new(candidate).fuse(vote, spectral, kcore);
            let f1 = best_f1(&fused, labels);
            evaluated += 1;
            if best.as_ref().is_none_or(|(b, _)| f1 > *b) {
                best = Some((f1, candidate));
            }
        }
    }
    let (best_f1, config) = best.expect("grid is never empty");
    Calibration {
        config,
        best_f1,
        grid_evaluated: evaluated,
    }
}

/// Best F1 over a descending threshold sweep of `scores`, with the same
/// conventions as the eval crate's PR curve: tied scores enter together
/// and scores ≤ 0 never count as flagged. Returns 0 when no positive
/// labels exist.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn best_f1(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut best = 0.0f64;
    let (mut tp, mut taken) = (0usize, 0usize);
    let mut i = 0;
    while i < idx.len() {
        let s = scores[idx[i]];
        if s <= 0.0 {
            break;
        }
        while i < idx.len() && scores[idx[i]] == s {
            taken += 1;
            if labels[idx[i]] {
                tp += 1;
            }
            i += 1;
        }
        let p = tp as f64 / taken as f64;
        let r = tp as f64 / total_pos as f64;
        if p + r > 0.0 {
            best = best.max(2.0 * p * r / (p + r));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{BipartiteGraph, GraphBuilder, MerchantId};

    fn ranking(scores: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap()
                .then(a.cmp(&b))
        });
        idx
    }

    #[test]
    fn minmax_maps_onto_unit_interval() {
        let out = normalize_scores(&[2.0, 4.0, 8.0], ScoreNormalization::MinMax);
        assert_eq!(out, vec![0.0, 1.0 / 3.0, 1.0]);
        // Constant input: nobody separates, everyone zero.
        assert_eq!(
            normalize_scores(&[5.0, 5.0], ScoreNormalization::MinMax),
            vec![0.0, 0.0]
        );
        assert!(normalize_scores(&[], ScoreNormalization::MinMax).is_empty());
    }

    #[test]
    fn rank_shares_value_across_ties() {
        let out = normalize_scores(&[3.0, 1.0, 3.0, 7.0], ScoreNormalization::Rank);
        assert_eq!(out, vec![1.0 / 3.0, 0.0, 1.0 / 3.0, 1.0]);
        assert_eq!(normalize_scores(&[9.0], ScoreNormalization::Rank), vec![0.0]);
    }

    #[test]
    fn normalization_preserves_ranking() {
        let raw = vec![0.3, 9.1, 0.3, 2.2, -1.0, 4.4];
        for norm in [ScoreNormalization::MinMax, ScoreNormalization::Rank] {
            let out = normalize_scores(&raw, norm);
            assert_eq!(ranking(&raw), ranking(&out), "{norm}");
            assert!(out.iter().all(|s| (0.0..=1.0).contains(s)), "{norm}");
        }
    }

    #[test]
    fn degenerate_weights_reproduce_single_component_ranking() {
        let vote = vec![0.9, 0.1, 0.5, 0.0, 0.7];
        let spectral = vec![0.2, 0.8, 0.1, 0.9, 0.3];
        let kcore = vec![0.5, 0.5, 1.0, 0.2, 0.0];
        for (weights, component) in [
            ([1.0, 0.0, 0.0], &vote),
            ([0.0, 1.0, 0.0], &spectral),
            ([0.0, 0.0, 1.0], &kcore),
        ] {
            for norm in [ScoreNormalization::MinMax, ScoreNormalization::Rank] {
                let cfg = ScoringConfig {
                    enabled: true,
                    vote_weight: weights[0],
                    spectral_weight: weights[1],
                    kcore_weight: weights[2],
                    normalization: norm,
                    ..Default::default()
                };
                let fused = HybridScorer::new(cfg).fuse(&vote, &spectral, &kcore);
                assert_eq!(ranking(&fused), ranking(component), "{weights:?} {norm}");
            }
        }
    }

    #[test]
    fn fused_scores_stay_in_unit_interval() {
        let fused = HybridScorer::new(ScoringConfig::enabled()).fuse(
            &[0.0, 0.5, 1.0],
            &[0.9, 0.9, 0.9],
            &[1.0, 0.0, 0.5],
        );
        assert!(fused.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }

    #[test]
    fn floors_zero_weak_components() {
        let cfg = ScoringConfig {
            enabled: true,
            vote_weight: 1.0,
            spectral_weight: 0.0,
            kcore_weight: 0.0,
            vote_floor: 0.6,
            ..Default::default()
        };
        let fused = HybridScorer::new(cfg).fuse(&[0.1, 0.9, 1.0], &[0.0; 3], &[0.0; 3]);
        assert_eq!(fused[0], 0.0, "below floor after min-max");
        assert!(fused[1] > 0.0 && fused[2] > 0.0);
    }

    #[test]
    fn validation_names_the_bad_field() {
        let mut cfg = ScoringConfig::enabled();
        cfg.spectral_weight = -0.2;
        assert!(cfg.validate().unwrap_err().contains("spectral"));
        let mut cfg = ScoringConfig::enabled();
        cfg.vote_weight = 0.0;
        cfg.spectral_weight = 0.0;
        cfg.kcore_weight = 0.0;
        assert!(cfg.validate().unwrap_err().contains("all be zero"));
        let mut cfg = ScoringConfig::enabled();
        cfg.hybrid_threshold = 1.5;
        assert!(cfg.validate().unwrap_err().contains("hybrid_threshold"));
        let mut cfg = ScoringConfig::enabled();
        cfg.vote_weight = f64::NAN;
        assert!(cfg.validate().is_err());
        assert!(ScoringConfig::enabled().validate().is_ok());
    }

    #[test]
    fn spec_parsing_round_trips_the_knobs() {
        let cfg: ScoringConfig = "vote=0.5,spectral=0.3,kcore=0.2,norm=rank,threshold=0.4"
            .parse()
            .unwrap();
        assert!(cfg.enabled);
        assert_eq!(cfg.weights(), [0.5, 0.3, 0.2]);
        assert_eq!(cfg.normalization, ScoreNormalization::Rank);
        assert_eq!(cfg.hybrid_threshold, 0.4);

        let defaults: ScoringConfig = "hybrid".parse().unwrap();
        assert!(defaults.enabled);
        assert_eq!(defaults.weights(), ScoringConfig::default().weights());

        assert!("vote=oops".parse::<ScoringConfig>().is_err());
        assert!("banana=1".parse::<ScoringConfig>().is_err());
        assert!("vote=0,spectral=0,kcore=0".parse::<ScoringConfig>().is_err());
    }

    #[test]
    fn config_serde_defaults_keep_old_configs_valid() {
        // A config JSON written before scoring existed must deserialize
        // with scoring disabled (the incremental-cache compatibility
        // story): every field has a serde default or is present here.
        let json = r#"{"vote_weight":0.6,"spectral_weight":0.25,"kcore_weight":0.15,
                       "hybrid_threshold":0.35,"spectral_components":25,"spectral_seed":2}"#;
        let cfg: ScoringConfig = serde_json::from_str(json).unwrap();
        assert!(!cfg.enabled);
        assert_eq!(cfg.normalization, ScoreNormalization::MinMax);
    }

    fn planted() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 8..60u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 23));
        }
        b.build()
    }

    #[test]
    fn components_are_finite_unit_interval_and_deterministic() {
        let g = planted();
        let ctx = DetectContext::new(&g);
        let cfg = ScoringConfig::enabled();
        let spec1 = spectral_scores(&ctx, &cfg);
        let spec2 = spectral_scores(&ctx, &cfg);
        assert_eq!(spec1, spec2);
        let cores = kcore_scores(&ctx);
        for scores in [&spec1, &cores] {
            assert_eq!(scores.len(), g.num_users());
            assert!(scores
                .iter()
                .all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
        }
        // The planted block sits deeper in the core structure than the
        // degree-1 background.
        assert!(cores[0] > cores[20]);
    }

    #[test]
    fn empty_and_single_edge_graphs_do_not_panic() {
        let empty = BipartiteGraph::from_edges(3, 2, vec![]).unwrap();
        let single = BipartiteGraph::from_edges(2, 2, vec![(0, 1)]).unwrap();
        for g in [&empty, &single] {
            let ctx = DetectContext::new(g);
            let cfg = ScoringConfig::enabled();
            let mut votes = VoteTally::new(g.num_users(), g.num_merchants());
            votes.add_sample([], []);
            let out = hybrid_scan_scores(&ctx, &votes, &cfg);
            assert_eq!(out.hybrid.len(), g.num_users());
            assert!(out
                .hybrid
                .iter()
                .all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
        }
    }

    #[test]
    fn hybrid_scan_flags_at_threshold() {
        let g = planted();
        let ctx = DetectContext::new(&g);
        let mut votes = VoteTally::new(g.num_users(), g.num_merchants());
        votes.add_sample((0..8).map(UserId), (0..4).map(MerchantId));
        votes.add_sample((0..8).map(UserId), []);
        let cfg = ScoringConfig::enabled();
        let out = hybrid_scan_scores(&ctx, &votes, &cfg);
        for &u in &out.hybrid_flagged {
            assert!(out.hybrid[u.index()] >= cfg.hybrid_threshold);
        }
        // Block users got every vote and the spectral/core mass: all
        // flagged; zero-vote background users with degree 1 are not.
        assert!(out.hybrid_flagged.iter().any(|u| u.0 < 8));
        assert!(out.hybrid_flagged.iter().all(|u| u.0 < 8));
    }

    #[test]
    fn best_f1_matches_hand_computation() {
        // Cuts: top-1 F1=0.5, top-2 F1=0.8, top-3 F1=2/3, all-4 gives
        // P=3/4, R=1 → F1 = 6/7, the best.
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, true, false, true];
        let f1 = best_f1(&scores, &labels);
        assert!((f1 - 6.0 / 7.0).abs() < 1e-12, "{f1}");
        assert_eq!(best_f1(&scores, &[false; 4]), 0.0);
        // A zero score never counts as flagged.
        assert_eq!(best_f1(&[0.0, 0.0], &[true, true]), 0.0);
    }

    #[test]
    fn calibration_beats_or_matches_every_corner() {
        let vote = vec![0.9, 0.8, 0.1, 0.0, 0.2, 0.0];
        let spectral = vec![0.1, 0.7, 0.8, 0.1, 0.0, 0.05];
        let kcore = vec![0.5, 0.9, 0.6, 0.1, 0.1, 0.2];
        let labels = [true, true, true, false, false, false];
        let base = ScoringConfig::enabled();
        let cal = calibrate_weights(&vote, &spectral, &kcore, &labels, &base);
        assert_eq!(cal.grid_evaluated, 66);
        for weights in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] {
            let corner = ScoringConfig {
                vote_weight: weights[0],
                spectral_weight: weights[1],
                kcore_weight: weights[2],
                ..base
            };
            let fused = HybridScorer::new(corner).fuse(&vote, &spectral, &kcore);
            assert!(cal.best_f1 >= best_f1(&fused, &labels) - 1e-12, "{weights:?}");
        }
        let sum: f64 = cal.config.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
