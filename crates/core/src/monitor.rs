//! Micro-batch campaign monitoring.
//!
//! The paper's deployment context wants fraud caught *during* a promotion
//! ("detect and prevent fraud as early as possible"), not in a nightly
//! batch. [`CampaignMonitor`] wraps the ensemble in that loop: ingest
//! purchase events as they arrive, re-detect every `scan_interval`
//! transactions (or on demand), and surface **new** alerts — accounts that
//! crossed the vote threshold for the first time — so downstream systems
//! act once per account, not once per scan.
//!
//! Each scan runs the full ensemble on the graph accumulated so far; at the
//! micro-batch cadence this is exactly the deployment mode the paper's
//! timing table argues is affordable (per-scan cost ≈ `S ×` one Fraudar
//! pass, parallel over samples).

use crate::aggregate::VoteTally;
use crate::ensemble::{EnsemFdet, EnsemFdetConfig};
use crate::pipeline::{IngestBuffer, ScanRunner, SnapshotStore};
use ensemfdet_graph::{MerchantId, UserId};

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// The ensemble configuration used for every scan.
    pub detector: EnsemFdetConfig,
    /// Automatic scan every this many ingested transactions.
    pub scan_interval: usize,
    /// Vote threshold at which an account becomes an alert.
    pub alert_threshold: u32,
    /// No automatic scan fires before this many transactions have been
    /// ingested: a nearly-empty graph has no meaningful density structure,
    /// so early scans would alert on noise pockets.
    pub min_transactions: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            detector: EnsemFdetConfig {
                // Campaign graphs start small; sample at a coarser ratio
                // and fewer repetitions than the full-batch default.
                num_samples: 20,
                sample_ratio: 0.2,
                ..Default::default()
            },
            scan_interval: 10_000,
            alert_threshold: 10,
            min_transactions: 5_000,
        }
    }
}

/// What one scan produced.
#[derive(Clone, Debug)]
pub struct ScanReport {
    /// Epoch of the graph snapshot this scan ran on (see
    /// [`crate::pipeline::Snapshot`]).
    pub epoch: u64,
    /// Every account currently at or above the alert threshold.
    pub flagged: Vec<UserId>,
    /// Accounts crossing the threshold for the first time in this scan.
    pub new_alerts: Vec<UserId>,
    /// Transactions ingested so far (lifetime).
    pub transactions_seen: usize,
    /// The full vote tally, for custom thresholds downstream.
    pub votes: VoteTally,
    /// Wall-clock of the whole ensemble pass behind this scan.
    pub elapsed: std::time::Duration,
    /// Per-sample wall-clock, in sample order — raw material for latency
    /// histograms and parallel-speedup estimates.
    pub sample_times: Vec<std::time::Duration>,
    /// Per-stage CPU-time split of the ensemble pass (sampling /
    /// detection / aggregation), for stage-level telemetry.
    pub stages: crate::ensemble::StageTimings,
    /// Bytes of sample state materialized across the pass (selection
    /// vectors on the mask path, full subgraph buffers when
    /// materializing).
    pub sample_bytes: u64,
}

impl ScanReport {
    /// Sum of per-sample wall-clock (what a fully parallel machine
    /// overlaps).
    pub fn total_sample_time(&self) -> std::time::Duration {
        self.sample_times.iter().sum()
    }

    /// The slowest sample — the critical path under perfect parallelism.
    pub fn max_sample_time(&self) -> std::time::Duration {
        self.sample_times.iter().copied().max().unwrap_or_default()
    }
}

/// Accumulates a campaign's purchase stream and re-detects periodically.
///
/// Since the ingest/scan split this is a thin *synchronous* composition
/// of the pipeline pieces — an [`IngestBuffer`] append log, a
/// [`SnapshotStore`] of epoch-versioned graphs, and a [`ScanRunner`] —
/// kept for callers (CLI, batch tools) that want the simple
/// ingest-then-scan loop in one value. The HTTP service composes the
/// same pieces asynchronously so scans never block ingestion.
#[derive(Clone, Debug)]
pub struct CampaignMonitor {
    config: MonitorConfig,
    buffer: IngestBuffer,
    snapshots: SnapshotStore,
    runner: ScanRunner,
    since_scan: usize,
}

impl CampaignMonitor {
    /// Creates an empty monitor.
    ///
    /// # Panics
    ///
    /// Panics if `scan_interval == 0` or `alert_threshold == 0`, or if the
    /// detector configuration is invalid.
    pub fn new(config: MonitorConfig) -> Self {
        assert!(config.scan_interval > 0, "scan_interval must be positive");
        assert!(config.alert_threshold > 0, "alert_threshold must be positive");
        // Validate the detector config eagerly (EnsemFdet::new asserts).
        let _ = EnsemFdet::new(config.detector);
        CampaignMonitor {
            buffer: IngestBuffer::new(),
            // The synchronous monitor always scans fresh data, so the
            // store's cadence is irrelevant here; scans force-compact.
            snapshots: SnapshotStore::new(config.scan_interval),
            runner: ScanRunner::new(),
            config,
            since_scan: 0,
        }
    }

    /// Ingests one purchase. Returns a report iff this transaction
    /// triggered an automatic scan.
    pub fn ingest(&mut self, u: UserId, v: MerchantId) -> Option<ScanReport> {
        self.buffer.append(u, v);
        self.since_scan += 1;
        if self.since_scan >= self.config.scan_interval
            && self.buffer.len() >= self.config.min_transactions
        {
            Some(self.scan())
        } else {
            None
        }
    }

    /// Ingests a batch of purchases *without* triggering automatic scans
    /// (bulk backfill); call [`scan`](Self::scan) afterwards.
    pub fn ingest_batch(&mut self, it: impl IntoIterator<Item = (UserId, MerchantId)>) {
        self.buffer.append_batch(it);
        self.since_scan = 0;
    }

    /// Transactions ingested so far.
    pub fn transactions_seen(&self) -> usize {
        self.buffer.len()
    }

    /// Materializes the current (deduplicated) purchase graph — for
    /// statistics dashboards and ad-hoc analysis outside the scan cycle.
    pub fn graph_snapshot(&self) -> ensemfdet_graph::BipartiteGraph {
        self.snapshots
            .refresh(&self.buffer, true)
            .graph
            .as_ref()
            .clone()
    }

    /// Runs a detection pass over everything ingested so far.
    pub fn scan(&mut self) -> ScanReport {
        self.since_scan = 0;
        let snapshot = self.snapshots.refresh(&self.buffer, true);
        let outcome =
            self.runner
                .run(&snapshot, &self.config.detector, self.config.alert_threshold);
        ScanReport {
            epoch: outcome.epoch,
            flagged: outcome.flagged,
            new_alerts: outcome.new_alerts,
            transactions_seen: outcome.transactions,
            sample_times: outcome.sample_times,
            sample_bytes: outcome.sample_bytes,
            elapsed: outcome.elapsed,
            stages: outcome.stages,
            votes: outcome.votes,
        }
    }

    /// Accounts alerted at any point so far.
    pub fn alerted(&self) -> Vec<UserId> {
        self.runner.alerted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn quick_config(interval: usize, threshold: u32) -> MonitorConfig {
        MonitorConfig {
            detector: EnsemFdetConfig {
                num_samples: 10,
                // 0.7 keeps per-sample detection of the planted ring near
                // certain, so vote counts clear the threshold for any RNG
                // stream rather than for one lucky seed.
                sample_ratio: 0.7,
                seed: 9,
                ..Default::default()
            },
            scan_interval: interval,
            alert_threshold: threshold,
            min_transactions: 0,
        }
    }

    /// Feeds background purchases, then a burst of ring purchases.
    fn feed_campaign(monitor: &mut CampaignMonitor) -> Vec<ScanReport> {
        let mut reports = Vec::new();
        // Honest background: 300 purchases.
        for i in 0..300u32 {
            if let Some(r) = monitor.ingest(UserId(20 + i % 150), MerchantId(10 + i % 60)) {
                reports.push(r);
            }
        }
        // Fraud burst: 10 accounts × 5 ring merchants.
        for round in 0..5u32 {
            for u in 0..10u32 {
                if let Some(r) = monitor.ingest(UserId(u), MerchantId(round)) {
                    reports.push(r);
                }
            }
        }
        reports
    }

    #[test]
    fn min_transactions_suppresses_early_scans() {
        let mut m = CampaignMonitor::new(MonitorConfig {
            min_transactions: 250,
            ..quick_config(100, 6)
        });
        let reports = feed_campaign(&mut m);
        // The 100/200 marks are suppressed; the first scan fires as soon
        // as the warm-up is satisfied (transaction 250), the next a full
        // interval later (350).
        assert_eq!(reports.len(), 2, "{}", reports.len());
        assert_eq!(reports[0].transactions_seen, 250);
        assert_eq!(reports[1].transactions_seen, 350);
    }

    #[test]
    fn automatic_scans_fire_on_interval() {
        let mut m = CampaignMonitor::new(quick_config(100, 6));
        let reports = feed_campaign(&mut m);
        assert_eq!(reports.len(), 3, "350 transactions / interval 100");
        assert_eq!(m.transactions_seen(), 350);
    }

    #[test]
    fn fraud_burst_raises_alerts_exactly_once() {
        let mut m = CampaignMonitor::new(quick_config(100, 6));
        let reports = feed_campaign(&mut m);
        // The last automatic scan happens mid-burst; force a final scan.
        let last = m.scan();
        let all_new: Vec<u32> = reports
            .iter()
            .flat_map(|r| r.new_alerts.iter().map(|u| u.0))
            .chain(last.new_alerts.iter().map(|u| u.0))
            .collect();
        // Alerts are unique across scans.
        let set: HashSet<u32> = all_new.iter().copied().collect();
        assert_eq!(set.len(), all_new.len(), "duplicate alerts: {all_new:?}");
        // The ring accounts dominate the alert set.
        let ring_alerts = set.iter().filter(|&&u| u < 10).count();
        assert!(ring_alerts >= 8, "only {ring_alerts}/10 ring accounts alerted");
        assert_eq!(m.alerted().len(), set.len());
    }

    #[test]
    fn flagged_is_cumulative_new_alerts_are_not() {
        let mut m = CampaignMonitor::new(quick_config(1_000_000, 6));
        feed_campaign(&mut m);
        let first = m.scan();
        assert!(!first.flagged.is_empty());
        assert_eq!(first.flagged, first.new_alerts);
        let second = m.scan();
        assert_eq!(second.flagged, first.flagged, "no new data, same flags");
        assert!(second.new_alerts.is_empty(), "nothing new to alert");
    }

    #[test]
    fn ingest_batch_defers_scanning() {
        let mut m = CampaignMonitor::new(quick_config(10, 5));
        m.ingest_batch((0..100u32).map(|i| (UserId(i % 20), MerchantId(i % 7))));
        assert_eq!(m.transactions_seen(), 100);
        // No automatic scan fired; the next single ingest starts a fresh
        // interval.
        assert!(m.ingest(UserId(0), MerchantId(0)).is_none());
    }

    #[test]
    fn scan_reports_carry_sample_timings() {
        let mut m = CampaignMonitor::new(quick_config(1_000_000, 6));
        feed_campaign(&mut m);
        let r = m.scan();
        assert_eq!(r.sample_times.len(), 10, "one timing per sample");
        assert!(r.total_sample_time() >= r.max_sample_time());
        assert!(r.elapsed >= r.max_sample_time());
        // The stage split is populated and bounded by the sample totals.
        let staged = r.stages.sampling + r.stages.detection;
        assert!(staged > std::time::Duration::ZERO);
        assert!(staged <= r.total_sample_time());
    }

    #[test]
    fn empty_monitor_scan_is_clean() {
        let mut m = CampaignMonitor::new(quick_config(10, 2));
        let r = m.scan();
        assert!(r.flagged.is_empty());
        assert_eq!(r.transactions_seen, 0);
    }

    #[test]
    #[should_panic(expected = "scan_interval")]
    fn zero_interval_rejected() {
        CampaignMonitor::new(MonitorConfig {
            scan_interval: 0,
            ..quick_config(1, 1)
        });
    }
}
