//! FDET (Algorithm 1): disjoint dense-block extraction with automatic
//! truncation.
//!
//! Repeatedly peel the densest block of the current graph, remove its edges
//! (the blocks are edge-disjoint and, because a peeled block's nodes lose
//! all their internal edges, effectively node-disjoint in the detected
//! sets), and stop at the truncating point `k̂` (Definition 3) — or at a
//! caller-fixed `k`, which is the ENSEMFDET-FIX-K ablation of Figure 6.
//!
//! Interchangeable peeling engines back the loop (see [`crate::engine`]):
//! the CSR hot path (default), its bit-identical O(E) bucket-queue twin,
//! the tie-round-parallel bucket-batch variant, and the naive reference
//! path; [`fdet_with_engine`] selects one explicitly.

use crate::block::Block;
use crate::engine::{Engine, FdetEngine};
use crate::metric::DensityMetric;
use ensemfdet_graph::{BipartiteGraph, MerchantId, UserId};
use serde::{Deserialize, Serialize};

/// How FDET decides the number of blocks to report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Truncation {
    /// Definition 3: stop at the Δ² elbow of the score curve. `k_max` caps
    /// runaway extraction; `patience` is how many blocks past the current
    /// elbow to peel before concluding the elbow is final.
    Auto {
        /// Hard cap on extracted blocks.
        k_max: usize,
        /// Extra blocks peeled beyond the provisional elbow.
        patience: usize,
    },
    /// Always report exactly `k` blocks (fewer if the graph empties) — the
    /// ENSEMFDET-FIX-K baseline.
    FixedK(usize),
    /// Report every block up to `k_max` with no truncation — used to plot
    /// the raw score curves of Figure 1.
    KeepAll {
        /// Hard cap on extracted blocks.
        k_max: usize,
    },
}

impl Default for Truncation {
    fn default() -> Self {
        Truncation::Auto {
            k_max: 50,
            patience: 5,
        }
    }
}

/// The outcome of one FDET run.
#[derive(Clone, Debug)]
pub struct FdetResult {
    /// Every block peeled (including any past the truncating point).
    pub blocks: Vec<Block>,
    /// `φ` of each block, aligned with `blocks` — the Figure 1 curve.
    pub scores: Vec<f64>,
    /// Number of leading blocks considered meaningful (`k̂`).
    pub k_hat: usize,
}

impl FdetResult {
    /// The retained blocks `S_1 … S_k̂`.
    pub fn detected_blocks(&self) -> &[Block] {
        &self.blocks[..self.k_hat]
    }

    /// Union of user members over the retained blocks (`U_d`), sorted and
    /// deduplicated.
    pub fn detected_users(&self) -> Vec<UserId> {
        let mut out: Vec<UserId> = self
            .detected_blocks()
            .iter()
            .flat_map(|b| b.users.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Union of merchant members over the retained blocks (`V_d`).
    pub fn detected_merchants(&self) -> Vec<MerchantId> {
        let mut out: Vec<MerchantId> = self
            .detected_blocks()
            .iter()
            .flat_map(|b| b.merchants.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Runs FDET on `g` under the given metric and truncation strategy.
///
/// ```
/// use ensemfdet::fdet::{fdet, Truncation};
/// use ensemfdet::metric::MetricKind;
/// use ensemfdet_graph::{GraphBuilder, UserId, MerchantId};
///
/// // Two disjoint dense blocks (6×3 and 3×2) + sparse noise. (Blocks of
/// // comparable density would be peeled as one best suffix.)
/// let mut b = GraphBuilder::new();
/// for v in 0..3 {
///     for u in 0..6 {
///         b.add_edge(UserId(u), MerchantId(v));
///     }
/// }
/// for v in 10..12 {
///     for u in 10..13 {
///         b.add_edge(UserId(u), MerchantId(v));
///     }
/// }
/// for u in 20..40 {
///     b.add_edge(UserId(u), MerchantId(20 + u % 7));
/// }
/// let result = fdet(
///     &b.build(),
///     &MetricKind::default(),
///     Truncation::KeepAll { k_max: 10 },
/// );
/// // Blocks come out in density order, node-disjoint.
/// assert_eq!(result.blocks[0].users.len(), 6);
/// assert_eq!(result.blocks[1].users.len(), 3);
/// assert!(result.blocks[0].score > result.blocks[1].score);
/// ```
pub fn fdet(g: &BipartiteGraph, metric: &dyn DensityMetric, truncation: Truncation) -> FdetResult {
    fdet_with_engine(g, metric, truncation, Engine::default())
}

/// Runs FDET with an explicit peeling [`Engine`] — `Engine::Csr` (the
/// [`fdet`] default), `Engine::Bucket`, `Engine::BucketBatch`, or the
/// `Engine::Naive` reference path. All but `BucketBatch` produce
/// bit-identical results, so choosing among them is only an A/B
/// performance decision; `BucketBatch` matches up to tie-break order
/// (same blocks structurally, scores equal within float tolerance — see
/// [`crate::engine`] for the contract).
///
/// Callers running FDET many times (ensembles, sweeps) should hold a
/// [`FdetEngine`] instead and call [`FdetEngine::run`], which reuses the
/// CSR view and peel scratch across runs.
pub fn fdet_with_engine(
    g: &BipartiteGraph,
    metric: &dyn DensityMetric,
    truncation: Truncation,
    engine: Engine,
) -> FdetResult {
    FdetEngine::run_cached(g, metric, truncation, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{AverageDegreeMetric, LogWeightedMetric};
    use ensemfdet_graph::GraphBuilder;

    /// Three planted blocks of decreasing density plus sparse noise.
    fn three_block_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // Block 1: 8×4 complete (densest).
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        // Block 2: 6×3 complete.
        for u in 8..14u32 {
            for v in 4..7u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        // Block 3: 5×3, 80% filled.
        for u in 14..19u32 {
            for v in 7..10u32 {
                if (u + v) % 5 != 0 {
                    b.add_edge(UserId(u), MerchantId(v));
                }
            }
        }
        // Sparse noise.
        for u in 19..59u32 {
            b.add_edge(UserId(u), MerchantId(10 + u % 17));
        }
        b.build()
    }

    #[test]
    fn recovers_planted_blocks_in_density_order() {
        let g = three_block_graph();
        let r = fdet(&g, &AverageDegreeMetric, Truncation::KeepAll { k_max: 10 });
        assert!(r.blocks.len() >= 3);
        // Scores are (weakly) decreasing across the planted blocks.
        assert!(r.scores[0] >= r.scores[1] && r.scores[1] >= r.scores[2]);
        // First block is the 8×4.
        assert_eq!(r.blocks[0].users.len(), 8);
        assert_eq!(r.blocks[0].merchants.len(), 4);
        // Second block is the 6×3.
        assert_eq!(r.blocks[1].users.len(), 6);
        assert_eq!(r.blocks[1].merchants.len(), 3);
    }

    #[test]
    fn auto_truncation_keeps_only_planted_blocks() {
        let g = three_block_graph();
        let r = fdet(
            &g,
            &AverageDegreeMetric,
            Truncation::Auto {
                k_max: 20,
                patience: 4,
            },
        );
        assert!(
            (1..=4).contains(&r.k_hat),
            "k̂ = {} should bracket the 3 planted blocks",
            r.k_hat
        );
        // The noise star-blocks (φ ≈ 0.5) must not be retained.
        for b in r.detected_blocks() {
            assert!(b.score > 0.6, "retained noise block φ = {}", b.score);
        }
    }

    #[test]
    fn detected_blocks_are_node_disjoint() {
        let g = three_block_graph();
        let r = fdet(&g, &AverageDegreeMetric, Truncation::KeepAll { k_max: 10 });
        let mut seen_users = std::collections::HashSet::new();
        let mut seen_merchants = std::collections::HashSet::new();
        for b in &r.blocks {
            for u in &b.users {
                assert!(seen_users.insert(u.0), "user {u:?} in two blocks");
            }
            for v in &b.merchants {
                assert!(seen_merchants.insert(v.0), "merchant {v:?} in two blocks");
            }
        }
    }

    #[test]
    fn blocks_are_edge_disjoint() {
        let g = three_block_graph();
        let r = fdet(&g, &LogWeightedMetric::paper_default(), Truncation::KeepAll { k_max: 10 });
        let mut seen = std::collections::HashSet::new();
        for b in &r.blocks {
            for &e in &b.edges {
                assert!(seen.insert(e), "edge {e} claimed by two blocks");
            }
        }
    }

    #[test]
    fn fixed_k_reports_exactly_k() {
        let g = three_block_graph();
        let r = fdet(&g, &AverageDegreeMetric, Truncation::FixedK(2));
        assert_eq!(r.k_hat, 2);
        assert_eq!(r.blocks.len(), 2);
        let r = fdet(&g, &AverageDegreeMetric, Truncation::FixedK(1000));
        assert_eq!(r.k_hat, r.blocks.len());
    }

    #[test]
    fn detected_unions_are_sorted_dedup() {
        let g = three_block_graph();
        let r = fdet(&g, &AverageDegreeMetric, Truncation::FixedK(3));
        let us = r.detected_users();
        for w in us.windows(2) {
            assert!(w[0] < w[1]);
        }
        let vs = r.detected_merchants();
        for w in vs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn empty_graph_yields_no_blocks() {
        let g = BipartiteGraph::from_edges(4, 4, vec![]).unwrap();
        let r = fdet(&g, &AverageDegreeMetric, Truncation::default());
        assert!(r.blocks.is_empty());
        assert_eq!(r.k_hat, 0);
        assert!(r.detected_users().is_empty());
    }

    #[test]
    fn exhausts_small_graph() {
        // One block, then nothing: must terminate promptly.
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 1)]).unwrap();
        let r = fdet(&g, &AverageDegreeMetric, Truncation::KeepAll { k_max: 10 });
        assert!(!r.blocks.is_empty());
        let total_edges: usize = r.blocks.iter().map(|b| b.edges.len()).sum();
        assert_eq!(total_edges, 2);
    }

    #[test]
    fn keep_all_respects_cap() {
        let g = three_block_graph();
        let r = fdet(&g, &AverageDegreeMetric, Truncation::KeepAll { k_max: 2 });
        assert!(r.blocks.len() <= 2);
        assert_eq!(r.k_hat, r.blocks.len());
    }
}
