//! The pluggable detector abstraction.
//!
//! Every detection method in the workspace — the six baselines in
//! `ensemfdet-baselines` and the ensemble itself — answers the same
//! question: *given the purchase graph, how suspicious is each user?*
//! Before this module each method exposed its own bespoke entry point
//! (block lists, raw singular-vector magnitudes, core numbers, hub
//! scores, degrees), which made them impossible to compose. [`Detector`]
//! is the uniform contract: per-user scores in `[0, 1]`, plus the dense
//! block structure when the method produces one.
//!
//! [`DetectContext`] is the shared input. It wraps one parent snapshot
//! and lazily builds the user×merchant [`CsrMatrix`] **once**, so a
//! hybrid scan that consults several spectral components never
//! re-assembles the adjacency — previously Fraudar, SpokEn, and FBox each
//! rebuilt it from the `Graph` on every call.
//!
//! This trait is also the seam for the remaining heterogeneous-link
//! roadmap item: a multi-relation transformation layer only has to
//! produce a `DetectContext` over the collapsed graph and every detector
//! (and the hybrid fusion on top) works unchanged.

use crate::block::Block;
use crate::ensemble::EnsemFdet;
use ensemfdet_graph::BipartiteGraph;
use ensemfdet_linalg::CsrMatrix;
use std::sync::OnceLock;

/// Shared per-scan input: the parent graph plus lazily-built derived
/// structures every detector can reuse.
///
/// The adjacency matrix is built on first use and cached for the life of
/// the context, so running `k` matrix-consuming detectors over one
/// context assembles it once, not `k` times.
#[derive(Debug)]
pub struct DetectContext<'a> {
    graph: &'a BipartiteGraph,
    adjacency: OnceLock<CsrMatrix>,
}

impl<'a> DetectContext<'a> {
    /// Wraps a parent graph. No derived structure is built until asked
    /// for.
    pub fn new(graph: &'a BipartiteGraph) -> Self {
        DetectContext {
            graph,
            adjacency: OnceLock::new(),
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &'a BipartiteGraph {
        self.graph
    }

    /// The user×merchant adjacency matrix (binary or weighted, matching
    /// the graph), assembled on first call and shared by every
    /// subsequent one.
    pub fn adjacency(&self) -> &CsrMatrix {
        self.adjacency.get_or_init(|| {
            let triplets: Vec<(u32, u32, f64)> = self
                .graph
                .edges()
                .map(|(_, u, v, w)| (u.0, v.0, w))
                .collect();
            CsrMatrix::from_triplets(
                self.graph.num_users(),
                self.graph.num_merchants(),
                &triplets,
            )
        })
    }
}

/// What a detector reports for one graph.
#[derive(Clone, Debug)]
pub struct DetectorOutput {
    /// Per-user suspiciousness in `[0, 1]`, indexed by user id. Score
    /// ordering is the method's ranking; the absolute values are only
    /// comparable within one detector.
    pub scores: Vec<f64>,
    /// Dense blocks, for methods that produce explicit block structure
    /// (FDET-style peeling); `None` for pure scoring methods.
    pub blocks: Option<Vec<Block>>,
}

impl DetectorOutput {
    /// An output with scores only.
    pub fn scores_only(scores: Vec<f64>) -> Self {
        DetectorOutput {
            scores,
            blocks: None,
        }
    }

    /// An output with scores and block structure.
    pub fn with_blocks(scores: Vec<f64>, blocks: Vec<Block>) -> Self {
        DetectorOutput {
            scores,
            blocks: Some(blocks),
        }
    }
}

/// A fraud-detection method with the uniform scoring contract.
///
/// Implementations must return one finite score in `[0, 1]` per user of
/// `ctx.graph()` (empty and single-edge graphs included), and must be
/// deterministic: the same context and configuration always produce the
/// same output.
pub trait Detector {
    /// Stable lowercase method name (`ensemfdet`, `fraudar`, `spoken`,
    /// …) — used for labels in benches, telemetry, and results.
    fn name(&self) -> &'static str;

    /// Scores every user of the context's graph.
    fn score(&self, ctx: &DetectContext<'_>) -> DetectorOutput;
}

impl Detector for EnsemFdet {
    fn name(&self) -> &'static str {
        "ensemfdet"
    }

    /// The ensemble's vote fraction (`votes / N`): already in `[0, 1]`,
    /// and sweeping a threshold over it is exactly the paper's `T` sweep.
    fn score(&self, ctx: &DetectContext<'_>) -> DetectorOutput {
        let outcome = self.detect(ctx.graph());
        DetectorOutput::scores_only(outcome.votes.user_scores())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::EnsemFdetConfig;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    fn planted() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 8..48u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 17));
        }
        b.build()
    }

    #[test]
    fn adjacency_is_built_once_and_shared() {
        let g = planted();
        let ctx = DetectContext::new(&g);
        let a = ctx.adjacency() as *const CsrMatrix;
        let b = ctx.adjacency() as *const CsrMatrix;
        assert_eq!(a, b, "second call must return the cached matrix");
        assert_eq!(ctx.adjacency().rows(), g.num_users());
        assert_eq!(ctx.adjacency().cols(), g.num_merchants());
    }

    #[test]
    fn ensemfdet_scores_are_vote_fractions() {
        let g = planted();
        let det = EnsemFdet::new(EnsemFdetConfig {
            num_samples: 8,
            sample_ratio: 0.5,
            seed: 11,
            ..Default::default()
        });
        let ctx = DetectContext::new(&g);
        let out = det.score(&ctx);
        assert_eq!(out.scores, det.detect(&g).votes.user_scores());
        assert!(out
            .scores
            .iter()
            .all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
        assert!(out.blocks.is_none());
    }
}
