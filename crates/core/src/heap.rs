//! Indexed binary min-heap with update-key.
//!
//! The greedy peel removes, at every step, the node with the smallest
//! incident suspiciousness and *decreases* the keys of its neighbors. A
//! binary heap with a position index supports both in O(log n), giving the
//! paper's `O(|E| log(|U|+|V|))` per detected block (Section IV-B, after
//! Fraudar \[13\]).
//!
//! Keys are `f64` priorities (never NaN — asserted on insert); ties break by
//! element id so the peel order, and therefore the whole detection, is
//! deterministic.

/// Slot value marking an element as not in the heap.
const ABSENT: usize = usize::MAX;

/// A min-heap over elements `0..capacity` with `f64` keys and O(log n)
/// arbitrary-element key updates.
#[derive(Clone, Debug)]
pub struct IndexedMinHeap {
    /// Heap array of element ids.
    heap: Vec<usize>,
    /// `pos[element] = index into heap`, or `ABSENT`.
    pos: Vec<usize>,
    /// `key[element]` — valid only while the element is in the heap.
    key: Vec<f64>,
}

impl IndexedMinHeap {
    /// An empty heap that can hold elements `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexedMinHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
            key: vec![0.0; capacity],
        }
    }

    /// Builds a heap containing every element with the given keys, in O(n).
    ///
    /// # Panics
    ///
    /// Panics if any key is NaN.
    pub fn from_keys(keys: &[f64]) -> Self {
        for (i, k) in keys.iter().enumerate() {
            assert!(!k.is_nan(), "NaN key for element {i}");
        }
        let n = keys.len();
        let mut h = IndexedMinHeap {
            heap: (0..n).collect(),
            pos: (0..n).collect(),
            key: keys.to_vec(),
        };
        if n > 1 {
            for i in (0..n / 2).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    /// Number of elements currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when the heap holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` when `element` is currently in the heap.
    #[inline]
    pub fn contains(&self, element: usize) -> bool {
        self.pos.get(element).is_some_and(|&p| p != ABSENT)
    }

    /// Current key of `element` (meaningful only if [`contains`](Self::contains)).
    #[inline]
    pub fn key_of(&self, element: usize) -> f64 {
        self.key[element]
    }

    /// Inserts `element` with `key`.
    ///
    /// # Panics
    ///
    /// Panics if the element is already present, out of capacity, or NaN-keyed.
    pub fn push(&mut self, element: usize, key: f64) {
        assert!(!key.is_nan(), "NaN key for element {element}");
        assert!(element < self.pos.len(), "element {element} out of capacity");
        assert!(!self.contains(element), "element {element} already in heap");
        self.key[element] = key;
        self.pos[element] = self.heap.len();
        self.heap.push(element);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the minimum `(element, key)`.
    pub fn pop_min(&mut self) -> Option<(usize, f64)> {
        if self.heap.is_empty() {
            return None;
        }
        let min = self.heap[0];
        let key = self.key[min];
        self.remove_at(0);
        Some((min, key))
    }

    /// Peeks the minimum without removing it.
    pub fn peek_min(&self) -> Option<(usize, f64)> {
        self.heap.first().map(|&e| (e, self.key[e]))
    }

    /// Changes the key of a present element (up or down).
    ///
    /// # Panics
    ///
    /// Panics if the element is absent or the key is NaN.
    pub fn update_key(&mut self, element: usize, key: f64) {
        assert!(!key.is_nan(), "NaN key for element {element}");
        assert!(self.contains(element), "element {element} not in heap");
        let old = self.key[element];
        self.key[element] = key;
        let p = self.pos[element];
        if key < old {
            self.sift_up(p);
        } else if key > old {
            self.sift_down(p);
        }
    }

    /// Removes an arbitrary present element.
    ///
    /// # Panics
    ///
    /// Panics if the element is absent.
    pub fn remove(&mut self, element: usize) {
        assert!(self.contains(element), "element {element} not in heap");
        let p = self.pos[element];
        self.remove_at(p);
    }

    /// Heap-order comparison: by key, ties by element id (determinism).
    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        let (ka, kb) = (self.key[a], self.key[b]);
        ka < kb || (ka == kb && a < b)
    }

    fn remove_at(&mut self, p: usize) {
        let last = self.heap.len() - 1;
        let removed = self.heap[p];
        self.heap.swap(p, last);
        self.pos[self.heap[p]] = p;
        self.heap.pop();
        self.pos[removed] = ABSENT;
        if p < self.heap.len() {
            self.sift_down(p);
            self.sift_up(p);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(self.heap[i], self.heap[parent]) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap_slots(i, best);
            i = best;
        }
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a;
        self.pos[self.heap[b]] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_keys_pops_in_order() {
        let mut h = IndexedMinHeap::from_keys(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let mut out = Vec::new();
        while let Some((e, k)) = h.pop_min() {
            out.push((e, k));
        }
        assert_eq!(
            out,
            vec![(1, 1.0), (3, 2.0), (2, 3.0), (4, 4.0), (0, 5.0)]
        );
    }

    #[test]
    fn push_and_pop_interleaved() {
        let mut h = IndexedMinHeap::with_capacity(4);
        h.push(0, 2.0);
        h.push(1, 1.0);
        assert_eq!(h.pop_min(), Some((1, 1.0)));
        h.push(2, 0.5);
        h.push(3, 3.0);
        assert_eq!(h.pop_min(), Some((2, 0.5)));
        assert_eq!(h.pop_min(), Some((0, 2.0)));
        assert_eq!(h.pop_min(), Some((3, 3.0)));
        assert_eq!(h.pop_min(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn update_key_decrease_moves_to_front() {
        let mut h = IndexedMinHeap::from_keys(&[5.0, 6.0, 7.0]);
        h.update_key(2, 0.0);
        assert_eq!(h.peek_min(), Some((2, 0.0)));
    }

    #[test]
    fn update_key_increase_moves_back() {
        let mut h = IndexedMinHeap::from_keys(&[1.0, 2.0, 3.0]);
        h.update_key(0, 10.0);
        assert_eq!(h.pop_min(), Some((1, 2.0)));
        assert_eq!(h.pop_min(), Some((2, 3.0)));
        assert_eq!(h.pop_min(), Some((0, 10.0)));
    }

    #[test]
    fn remove_arbitrary_element() {
        let mut h = IndexedMinHeap::from_keys(&[4.0, 1.0, 3.0, 2.0]);
        h.remove(3);
        assert!(!h.contains(3));
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop_min(), Some((1, 1.0)));
        assert_eq!(h.pop_min(), Some((2, 3.0)));
        assert_eq!(h.pop_min(), Some((0, 4.0)));
    }

    #[test]
    fn ties_break_by_element_id() {
        let mut h = IndexedMinHeap::from_keys(&[1.0, 1.0, 1.0]);
        assert_eq!(h.pop_min(), Some((0, 1.0)));
        assert_eq!(h.pop_min(), Some((1, 1.0)));
        assert_eq!(h.pop_min(), Some((2, 1.0)));
    }

    #[test]
    fn contains_and_key_of() {
        let h = IndexedMinHeap::from_keys(&[2.0, 9.0]);
        assert!(h.contains(1));
        assert_eq!(h.key_of(1), 9.0);
        assert!(!h.contains(5));
    }

    #[test]
    #[should_panic(expected = "already in heap")]
    fn double_push_panics() {
        let mut h = IndexedMinHeap::with_capacity(2);
        h.push(0, 1.0);
        h.push(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN key")]
    fn nan_key_panics() {
        let mut h = IndexedMinHeap::with_capacity(1);
        h.push(0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "not in heap")]
    fn update_absent_panics() {
        let mut h = IndexedMinHeap::with_capacity(2);
        h.push(0, 1.0);
        h.update_key(1, 2.0);
    }

    #[test]
    fn empty_heap_behaves() {
        let mut h = IndexedMinHeap::with_capacity(0);
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
        assert_eq!(h.peek_min(), None);
        let mut h2 = IndexedMinHeap::from_keys(&[]);
        assert_eq!(h2.pop_min(), None);
    }
}
