//! Priority structures for the greedy peel.
//!
//! The greedy peel removes, at every step, the node with the smallest
//! incident suspiciousness and *decreases* the keys of its neighbors. Two
//! structures support that contract, both `O(log n)` per operation and both
//! deterministic (ties break by element id):
//!
//! - [`IndexedMinHeap`] — a binary heap with a position index and in-place
//!   `update_key`. One entry per element; every decrease sifts the entry and
//!   maintains the `pos` index (three arrays touched per swap).
//! - [`LazyMinHeap`] — the lazy-deletion variant used by the CSR engine
//!   (`ensemfdet::engine`): a decrease simply *pushes a fresh entry* and the
//!   consumer skips stale entries on pop (an entry is stale when its key no
//!   longer matches the element's current key, or the element was already
//!   removed). No position index, no re-heapify; entries are `(key, id)`
//!   pairs bit-packed into single `u128` words sifted over one contiguous
//!   4-ary array, which is what makes the high pop volume of lazy deletion
//!   affordable.
//!
//! A third structure, [`crate::bucket::BucketQueue`], keeps the lazy-entry
//! contract but shards the entries across exponent-indexed append logs,
//! absorbing each bucket into one small frontier `LazyMinHeap` only when
//! the minimum reaches it — trading the global `O(log n)` sift for
//! near-constant routing (the bucket engine's linear-peel claim).
//!
//! Keys only ever decrease during a peel, so for every element the entry
//! carrying its *current* key is the element's minimum entry — the first
//! non-stale pop is exactly the pop [`IndexedMinHeap`] would deliver, which
//! is why the engines produce bit-identical peel orders.
//!
//! Keys are `f64` priorities (never NaN — asserted on insert in the indexed
//! heap, debug-asserted in the lazy one).

/// Slot value marking an element as not in the heap.
const ABSENT: usize = usize::MAX;

/// A min-heap over elements `0..capacity` with `f64` keys and O(log n)
/// arbitrary-element key updates.
#[derive(Clone, Debug)]
pub struct IndexedMinHeap {
    /// Heap array of element ids.
    heap: Vec<usize>,
    /// `pos[element] = index into heap`, or `ABSENT`.
    pos: Vec<usize>,
    /// `key[element]` — valid only while the element is in the heap.
    key: Vec<f64>,
}

impl IndexedMinHeap {
    /// An empty heap that can hold elements `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexedMinHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
            key: vec![0.0; capacity],
        }
    }

    /// Builds a heap containing every element with the given keys, in O(n).
    ///
    /// # Panics
    ///
    /// Panics if any key is NaN.
    pub fn from_keys(keys: &[f64]) -> Self {
        for (i, k) in keys.iter().enumerate() {
            assert!(!k.is_nan(), "NaN key for element {i}");
        }
        let n = keys.len();
        let mut h = IndexedMinHeap {
            heap: (0..n).collect(),
            pos: (0..n).collect(),
            key: keys.to_vec(),
        };
        if n > 1 {
            for i in (0..n / 2).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    /// Number of elements currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when the heap holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` when `element` is currently in the heap.
    #[inline]
    pub fn contains(&self, element: usize) -> bool {
        self.pos.get(element).is_some_and(|&p| p != ABSENT)
    }

    /// Current key of `element` (meaningful only if [`contains`](Self::contains)).
    #[inline]
    pub fn key_of(&self, element: usize) -> f64 {
        self.key[element]
    }

    /// Inserts `element` with `key`.
    ///
    /// # Panics
    ///
    /// Panics if the element is already present, out of capacity, or NaN-keyed.
    pub fn push(&mut self, element: usize, key: f64) {
        assert!(!key.is_nan(), "NaN key for element {element}");
        assert!(element < self.pos.len(), "element {element} out of capacity");
        assert!(!self.contains(element), "element {element} already in heap");
        self.key[element] = key;
        self.pos[element] = self.heap.len();
        self.heap.push(element);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the minimum `(element, key)`.
    pub fn pop_min(&mut self) -> Option<(usize, f64)> {
        if self.heap.is_empty() {
            return None;
        }
        let min = self.heap[0];
        let key = self.key[min];
        self.remove_at(0);
        Some((min, key))
    }

    /// Peeks the minimum without removing it.
    pub fn peek_min(&self) -> Option<(usize, f64)> {
        self.heap.first().map(|&e| (e, self.key[e]))
    }

    /// Changes the key of a present element (up or down).
    ///
    /// # Panics
    ///
    /// Panics if the element is absent or the key is NaN.
    pub fn update_key(&mut self, element: usize, key: f64) {
        assert!(!key.is_nan(), "NaN key for element {element}");
        assert!(self.contains(element), "element {element} not in heap");
        let old = self.key[element];
        self.key[element] = key;
        let p = self.pos[element];
        if key < old {
            self.sift_up(p);
        } else if key > old {
            self.sift_down(p);
        }
    }

    /// Removes an arbitrary present element.
    ///
    /// # Panics
    ///
    /// Panics if the element is absent.
    pub fn remove(&mut self, element: usize) {
        assert!(self.contains(element), "element {element} not in heap");
        let p = self.pos[element];
        self.remove_at(p);
    }

    /// Heap-order comparison: by key, ties by element id (determinism).
    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        let (ka, kb) = (self.key[a], self.key[b]);
        ka < kb || (ka == kb && a < b)
    }

    fn remove_at(&mut self, p: usize) {
        let last = self.heap.len() - 1;
        let removed = self.heap[p];
        self.heap.swap(p, last);
        self.pos[self.heap[p]] = p;
        self.heap.pop();
        self.pos[removed] = ABSENT;
        if p < self.heap.len() {
            self.sift_down(p);
            self.sift_up(p);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(self.heap[i], self.heap[parent]) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap_slots(i, best);
            i = best;
        }
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a;
        self.pos[self.heap[b]] = b;
    }
}

/// Branching factor of [`LazyMinHeap`]. Four children per node halves the
/// sift depth of a binary heap and keeps each node's children within two
/// cache lines of 16-byte packed entries.
const ARITY: usize = 4;

/// A lazy-deletion 4-ary min-heap over `(key, element)` entries.
///
/// Ordering is `(key, element)` lexicographic — smallest key first, ties by
/// element id — matching [`IndexedMinHeap`]'s pop order. The heap does not
/// know which entries are current: callers push a new entry on every key
/// decrease and filter stale pops themselves (see the module docs).
///
/// Entries are bit-packed into a single `u128` — the key's IEEE-754 bits in
/// the high word, the element id in the low 32 bits — so every heap
/// comparison is one integer compare with the id tie-break built in. The
/// packing requires keys to be **non-negative and not NaN** (debug-asserted
/// on insert): for such floats the bit pattern is monotone in the numeric
/// value. The peel loops only ever key on suspiciousness sums, which are
/// non-negative by construction.
///
/// Internally the entries live in two stores with one logical order:
///
/// - `base` — the [`fill`](Self::fill) entries, sorted ascending once and
///   consumed front-to-back by a cursor. In a greedy peel most nodes are
///   popped with their *initial* key (their neighborhood outlives them), so
///   the bulk of pops degenerate to a sequential array read.
/// - `entries` — a sifted 4-ary heap holding only the entries pushed
///   *after* the fill (the key decreases). This working set is far smaller
///   than one-entry-per-node, which keeps sift paths shallow and the hot
///   part of the array cache-resident.
///
/// [`pop`](Self::pop) takes whichever front is smaller; since the packed
/// order is total (distinct element ids), the merged sequence is exactly
/// the pop order of a single heap holding all entries.
#[derive(Clone, Debug, Default)]
pub struct LazyMinHeap {
    /// Fill entries, sorted ascending; `base[cursor..]` is still pending.
    base: Vec<u128>,
    /// Consumed prefix length of `base`.
    cursor: usize,
    /// 4-ary sifted heap over the entries pushed since the last fill.
    entries: Vec<u128>,
}

impl LazyMinHeap {
    /// An empty heap.
    pub fn new() -> Self {
        LazyMinHeap::default()
    }

    #[inline]
    fn pack(element: u32, key: f64) -> u128 {
        debug_assert!(
            key >= 0.0 && key.is_sign_positive(),
            "LazyMinHeap requires non-negative keys (got {key} for element {element})"
        );
        ((key.to_bits() as u128) << 32) | element as u128
    }

    #[inline]
    fn unpack(entry: u128) -> (f64, u32) {
        (f64::from_bits((entry >> 32) as u64), entry as u32)
    }

    /// Drops every entry, keeping the allocations.
    #[inline]
    pub fn clear(&mut self) {
        self.base.clear();
        self.cursor = 0;
        self.entries.clear();
    }

    /// Number of entries (including stale ones).
    #[inline]
    pub fn len(&self) -> usize {
        (self.base.len() - self.cursor) + self.entries.len()
    }

    /// `true` when no entries remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-allocates room for `additional` further pushes, so a peel with
    /// a known decrease count never reallocates mid-loop.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Replaces the contents with `entries` in O(n log n) (one unstable
    /// sort of packed words) — cheaper in practice than a heap build plus
    /// n sifting pops, because the sorted run is consumed sequentially.
    pub fn fill(&mut self, entries: impl IntoIterator<Item = (u32, f64)>) {
        self.base.clear();
        self.cursor = 0;
        self.entries.clear();
        self.base
            .extend(entries.into_iter().map(|(e, k)| Self::pack(e, k)));
        self.base.sort_unstable();
    }

    /// Visits every pending entry — stale ones included — in unspecified
    /// order. Callers filter against their own notion of staleness, exactly
    /// as they do for [`pop`](Self::pop).
    #[inline]
    pub fn for_each_entry(&self, mut f: impl FnMut(f64, u32)) {
        for &e in self.base[self.cursor..].iter().chain(self.entries.iter()) {
            let (k, id) = Self::unpack(e);
            f(k, id);
        }
    }

    /// Drops every entry that no longer carries its element's current key
    /// and restores the internal order invariants in O(n).
    ///
    /// `current[element]` is the element's live key, or any negative
    /// sentinel once it has been removed (entry keys are non-negative, so
    /// a sentinel never matches). Compacting is pure pruning: stale
    /// entries would have been skipped on pop anyway, so the sequence of
    /// *current* pops is unchanged — but the structure shrinks back to one
    /// entry per live element, which keeps sift paths shallow when a peel
    /// generates many decreases.
    pub fn retain_current(&mut self, current: &[f64]) {
        let live = |e: u128| current[e as u32 as usize].to_bits() == (e >> 32) as u64;
        // The pending tail of `base`: dropping entries keeps it sorted.
        let mut write = self.cursor;
        for read in self.cursor..self.base.len() {
            let e = self.base[read];
            if live(e) {
                self.base[write] = e;
                write += 1;
            }
        }
        self.base.truncate(write);
        // The pushed part needs a Floyd rebuild after the retain.
        self.entries.retain(|&e| live(e));
        let n = self.entries.len();
        if n > 1 {
            for i in (0..=(n - 2) / ARITY).rev() {
                self.sift_down(i);
            }
        }
    }

    /// The element the next [`pop`](Self::pop) will return (possibly
    /// stale), or `None` if empty. O(1); lets callers warm per-element
    /// state before committing to the pop.
    #[inline]
    pub fn peek_element(&self) -> Option<u32> {
        match (self.base.get(self.cursor), self.entries.first()) {
            (Some(&b), Some(&h)) => Some(b.min(h) as u32),
            (Some(&b), None) => Some(b as u32),
            (None, Some(&h)) => Some(h as u32),
            (None, None) => None,
        }
    }

    /// Pushes an entry for `element` with `key` (O(log n)).
    #[inline]
    pub fn push(&mut self, element: u32, key: f64) {
        self.entries.push(Self::pack(element, key));
        self.sift_up(self.entries.len() - 1);
    }

    /// Removes and returns the smallest `(key, element)` entry, stale or not.
    ///
    /// Uses the bottom-up deletion strategy: the root hole walks to a leaf
    /// along minimum children (no comparison against the displaced last
    /// entry, which almost always belongs near the bottom anyway), then the
    /// last entry bubbles up from that leaf — usually zero or one steps.
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, u32)> {
        // Merge point of the two stores: take whichever front is smaller.
        // Entries carry distinct ids, so the packed compare is strict and
        // the merged order equals a single heap's pop order.
        if let Some(&b) = self.base.get(self.cursor) {
            match self.entries.first() {
                Some(&h) if h < b => {}
                _ => {
                    self.cursor += 1;
                    return Some(Self::unpack(b));
                }
            }
        }
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        let min = self.entries[0];
        let last = self.entries.pop().expect("checked non-empty");
        let m = self.entries.len();
        if m > 0 {
            let mut hole = 0usize;
            loop {
                let first = ARITY * hole + 1;
                if first >= m {
                    break;
                }
                // The grandchildren of `hole` occupy one contiguous span
                // (`ARITY * first + 1` onward); whichever child wins, the
                // next level's reads land there, so warm it while the
                // children are being compared.
                #[cfg(target_arch = "x86_64")]
                {
                    let gfirst = ARITY * first + 1;
                    if gfirst < m {
                        let base = self.entries.as_ptr();
                        let glast = (gfirst + ARITY * ARITY - 1).min(m - 1);
                        let mut g = gfirst;
                        while g <= glast {
                            // SAFETY: `g` is in bounds and prefetch has no
                            // side effects beyond the cache.
                            unsafe {
                                std::arch::x86_64::_mm_prefetch(
                                    base.add(g).cast::<i8>(),
                                    std::arch::x86_64::_MM_HINT_T0,
                                );
                            }
                            g += 4; // one 64-byte line holds four u128 entries
                        }
                    }
                }
                let mut best = first;
                let mut best_entry = self.entries[first];
                for c in first + 1..(first + ARITY).min(m) {
                    let e = self.entries[c];
                    if e < best_entry {
                        best = c;
                        best_entry = e;
                    }
                }
                self.entries[hole] = best_entry;
                hole = best;
            }
            self.entries[hole] = last;
            self.sift_up(hole);
        }
        Some(Self::unpack(min))
    }



    fn sift_up(&mut self, mut i: usize) {
        let item = self.entries[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            let p = self.entries[parent];
            if item < p {
                self.entries[i] = p;
                i = parent;
            } else {
                break;
            }
        }
        self.entries[i] = item;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        let item = self.entries[i];
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let mut best = first;
            let mut best_entry = self.entries[first];
            for c in first + 1..(first + ARITY).min(n) {
                let e = self.entries[c];
                if e < best_entry {
                    best = c;
                    best_entry = e;
                }
            }
            if best_entry < item {
                self.entries[i] = best_entry;
                i = best;
            } else {
                break;
            }
        }
        self.entries[i] = item;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_keys_pops_in_order() {
        let mut h = IndexedMinHeap::from_keys(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let mut out = Vec::new();
        while let Some((e, k)) = h.pop_min() {
            out.push((e, k));
        }
        assert_eq!(
            out,
            vec![(1, 1.0), (3, 2.0), (2, 3.0), (4, 4.0), (0, 5.0)]
        );
    }

    #[test]
    fn push_and_pop_interleaved() {
        let mut h = IndexedMinHeap::with_capacity(4);
        h.push(0, 2.0);
        h.push(1, 1.0);
        assert_eq!(h.pop_min(), Some((1, 1.0)));
        h.push(2, 0.5);
        h.push(3, 3.0);
        assert_eq!(h.pop_min(), Some((2, 0.5)));
        assert_eq!(h.pop_min(), Some((0, 2.0)));
        assert_eq!(h.pop_min(), Some((3, 3.0)));
        assert_eq!(h.pop_min(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn update_key_decrease_moves_to_front() {
        let mut h = IndexedMinHeap::from_keys(&[5.0, 6.0, 7.0]);
        h.update_key(2, 0.0);
        assert_eq!(h.peek_min(), Some((2, 0.0)));
    }

    #[test]
    fn update_key_increase_moves_back() {
        let mut h = IndexedMinHeap::from_keys(&[1.0, 2.0, 3.0]);
        h.update_key(0, 10.0);
        assert_eq!(h.pop_min(), Some((1, 2.0)));
        assert_eq!(h.pop_min(), Some((2, 3.0)));
        assert_eq!(h.pop_min(), Some((0, 10.0)));
    }

    #[test]
    fn remove_arbitrary_element() {
        let mut h = IndexedMinHeap::from_keys(&[4.0, 1.0, 3.0, 2.0]);
        h.remove(3);
        assert!(!h.contains(3));
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop_min(), Some((1, 1.0)));
        assert_eq!(h.pop_min(), Some((2, 3.0)));
        assert_eq!(h.pop_min(), Some((0, 4.0)));
    }

    #[test]
    fn ties_break_by_element_id() {
        let mut h = IndexedMinHeap::from_keys(&[1.0, 1.0, 1.0]);
        assert_eq!(h.pop_min(), Some((0, 1.0)));
        assert_eq!(h.pop_min(), Some((1, 1.0)));
        assert_eq!(h.pop_min(), Some((2, 1.0)));
    }

    #[test]
    fn contains_and_key_of() {
        let h = IndexedMinHeap::from_keys(&[2.0, 9.0]);
        assert!(h.contains(1));
        assert_eq!(h.key_of(1), 9.0);
        assert!(!h.contains(5));
    }

    #[test]
    #[should_panic(expected = "already in heap")]
    fn double_push_panics() {
        let mut h = IndexedMinHeap::with_capacity(2);
        h.push(0, 1.0);
        h.push(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN key")]
    fn nan_key_panics() {
        let mut h = IndexedMinHeap::with_capacity(1);
        h.push(0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "not in heap")]
    fn update_absent_panics() {
        let mut h = IndexedMinHeap::with_capacity(2);
        h.push(0, 1.0);
        h.update_key(1, 2.0);
    }

    #[test]
    fn empty_heap_behaves() {
        let mut h = IndexedMinHeap::with_capacity(0);
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
        assert_eq!(h.peek_min(), None);
        let mut h2 = IndexedMinHeap::from_keys(&[]);
        assert_eq!(h2.pop_min(), None);
    }

    #[test]
    fn lazy_heap_pops_in_key_then_id_order() {
        let mut h = LazyMinHeap::new();
        for (e, k) in [(0u32, 5.0), (1, 1.0), (2, 3.0), (3, 1.0), (4, 4.0)] {
            h.push(e, k);
        }
        let mut out = Vec::new();
        while let Some((k, e)) = h.pop() {
            out.push((e, k));
        }
        assert_eq!(out, vec![(1, 1.0), (3, 1.0), (2, 3.0), (4, 4.0), (0, 5.0)]);
    }

    #[test]
    fn lazy_heap_duplicates_surface_smallest_first() {
        let mut h = LazyMinHeap::new();
        h.push(7, 9.0);
        h.push(7, 4.0); // "decrease-key" = push the new key
        h.push(7, 6.0);
        assert_eq!(h.pop(), Some((4.0, 7)));
        assert_eq!(h.pop(), Some((6.0, 7)));
        assert_eq!(h.pop(), Some((9.0, 7)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn lazy_heap_fill_matches_pushes() {
        // Floyd build and sifting pushes must expose the same pop order,
        // including zero keys and id tie-breaks.
        let entries = [(9u32, 2.5), (3, 0.0), (7, 2.5), (1, 0.0), (4, 1.0)];
        let mut filled = LazyMinHeap::new();
        filled.fill(entries);
        filled.push(2, 0.5);
        let mut pushed = LazyMinHeap::new();
        for (e, k) in entries {
            pushed.push(e, k);
        }
        pushed.push(2, 0.5);
        for _ in 0..entries.len() + 1 {
            assert_eq!(filled.pop(), pushed.pop());
        }
        assert!(filled.is_empty() && pushed.is_empty());
    }

    #[test]
    fn lazy_heap_clear_keeps_working() {
        let mut h = LazyMinHeap::new();
        h.push(0, 2.0);
        h.clear();
        assert!(h.is_empty());
        h.push(1, 1.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop(), Some((1.0, 1)));
    }

    #[test]
    fn lazy_matches_indexed_on_decrease_key_workload() {
        // Same decrease-key script through both structures: the sequence of
        // valid pops must be identical (the engine-equivalence argument in
        // miniature).
        let keys = [9.0, 7.0, 8.0, 6.0, 5.0, 9.5];
        let decreases: &[(usize, f64)] = &[(0, 4.0), (2, 4.0), (5, 0.5), (2, 2.0)];

        let mut indexed = IndexedMinHeap::from_keys(&keys);
        let mut current = keys.to_vec();
        let mut lazy = LazyMinHeap::new();
        for (e, &k) in keys.iter().enumerate() {
            lazy.push(e as u32, k);
        }
        for &(e, k) in decreases {
            indexed.update_key(e, k);
            current[e] = k;
            lazy.push(e as u32, k);
        }

        let mut from_indexed = Vec::new();
        while let Some(pair) = indexed.pop_min() {
            from_indexed.push(pair);
        }
        let mut removed = vec![false; keys.len()];
        let mut from_lazy = Vec::new();
        while let Some((k, e)) = lazy.pop() {
            let e = e as usize;
            if removed[e] || k != current[e] {
                continue; // stale
            }
            removed[e] = true;
            from_lazy.push((e, k));
        }
        assert_eq!(from_lazy, from_indexed);
    }
}
