//! Greedy densest-subgraph peeling (the inner loop of Algorithm 1).
//!
//! Following Charikar's greedy generalized to column-weighted edges
//! (Fraudar \[13\]): starting from the whole (current) graph, repeatedly
//! delete the node with the smallest incident suspiciousness and remember
//! the intermediate subgraph `H_i` with the highest density score
//! `φ(H) = f(H) / |H|`, where `f(H)` sums `w_e · cw(d_v)` over the edges of
//! `H` and `cw` is the metric's column weight evaluated at each merchant's
//! degree **in the graph being peeled** (fixed before peeling starts).
//!
//! With the indexed min-heap every deletion is `O(log(|U|+|V|))` and every
//! edge is touched once, giving `O((|U|+|V|+|E|) · log(|U|+|V|))` per call —
//! the paper's stated complexity.
//!
//! Guarantee: for the unweighted average-degree metric this greedy is a
//! 2-approximation of the densest subgraph (Charikar 2000); the property
//! tests check that bound against brute force on small graphs.

use crate::block::Block;
use crate::heap::IndexedMinHeap;
use crate::metric::DensityMetric;
use ensemfdet_graph::{BipartiteGraph, EdgeId, MerchantId, UserId};

/// Peels the densest block out of the subgraph of `g` spanned by the edges
/// with `edge_alive[e] == true`.
///
/// Only nodes with at least one alive incident edge participate (isolated
/// nodes are not part of "the current graph" and would only dilute `φ`).
/// Returns `None` when no edge is alive.
///
/// # Panics
///
/// Panics if `edge_alive.len() != g.num_edges()`.
pub fn peel_densest(
    g: &BipartiteGraph,
    metric: &dyn DensityMetric,
    edge_alive: &[bool],
) -> Option<Block> {
    assert_eq!(
        edge_alive.len(),
        g.num_edges(),
        "edge_alive mask must cover every edge"
    );
    let nu = g.num_users();
    let nv = g.num_merchants();
    let n = nu + nv;

    // Merchant degrees over alive edges and the fixed column weights.
    let mut vdeg = vec![0.0f64; nv];
    for (e, _, v, w) in g.edges() {
        if edge_alive[e] {
            vdeg[v.index()] += w;
        }
    }
    let cw: Vec<f64> = vdeg.iter().map(|&d| metric.column_weight(d)).collect();

    // Node priorities: summed suspiciousness of alive incident edges.
    // Node ids: users are 0..nu, merchants are nu..nu+nv.
    let mut priority = vec![0.0f64; n];
    let mut f = 0.0f64; // total suspiciousness of alive edges
    for (e, u, v, w) in g.edges() {
        if edge_alive[e] {
            let s = w * cw[v.index()];
            priority[u.index()] += s;
            priority[nu + v.index()] += s;
            f += s;
        }
    }

    // Heap over participating (non-isolated) nodes.
    let mut heap = IndexedMinHeap::with_capacity(n);
    let mut participating = 0usize;
    for (node, &p) in priority.iter().enumerate() {
        if p > 0.0 {
            heap.push(node, p);
            participating += 1;
        }
    }
    if participating == 0 {
        return None;
    }

    // Peel, tracking the best prefix. removal_rank[node] = step at which the
    // node was removed (1-based); usize::MAX = survived to the end.
    let mut removal_rank = vec![usize::MAX; n];
    let mut edge_dead = vec![false; g.num_edges()];
    for (e, &alive) in edge_alive.iter().enumerate() {
        edge_dead[e] = !alive;
    }

    let mut size = participating;
    let mut best_phi = f / size as f64; // H_n: the whole current graph
    let mut best_step = 0usize;
    let mut step = 0usize;

    while let Some((node, p)) = heap.pop_min() {
        step += 1;
        removal_rank[node] = step;
        f -= p;
        size -= 1;

        // Kill the node's alive edges and relax the other endpoints.
        if node < nu {
            let u = UserId(node as u32);
            for (v, e, w) in g.merchants_of(u) {
                if !edge_dead[e] {
                    edge_dead[e] = true;
                    let s = w * cw[v.index()];
                    let other = nu + v.index();
                    if heap.contains(other) {
                        heap.update_key(other, (heap.key_of(other) - s).max(0.0));
                    }
                }
            }
        } else {
            let v = MerchantId((node - nu) as u32);
            for (u, e, w) in g.users_of(v) {
                if !edge_dead[e] {
                    edge_dead[e] = true;
                    let s = w * cw[v.index()];
                    let other = u.index();
                    if heap.contains(other) {
                        heap.update_key(other, (heap.key_of(other) - s).max(0.0));
                    }
                }
            }
        }

        if size > 0 {
            // Guard against tiny negative drift from floating cancellation.
            let phi = f.max(0.0) / size as f64;
            if phi > best_phi {
                best_phi = phi;
                best_step = step;
            }
        }
    }

    // The best subgraph = nodes removed strictly after `best_step`.
    let mut users = Vec::new();
    let mut merchants = Vec::new();
    for node in 0..n {
        let rank = removal_rank[node];
        let in_block = rank == usize::MAX || rank > best_step;
        // Nodes that never participated have rank MAX but priority 0 and
        // were never pushed; exclude them.
        if in_block && priority[node] > 0.0 {
            if node < nu {
                users.push(UserId(node as u32));
            } else {
                merchants.push(MerchantId((node - nu) as u32));
            }
        }
    }

    // Edges fully inside the block (among originally-alive edges).
    let in_block = |node: usize| {
        let rank = removal_rank[node];
        rank == usize::MAX || rank > best_step
    };
    let mut edges: Vec<EdgeId> = Vec::new();
    for (e, u, v, _) in g.edges() {
        if edge_alive[e] && in_block(u.index()) && in_block(nu + v.index()) {
            edges.push(e);
        }
    }

    Some(Block {
        users,
        merchants,
        score: best_phi,
        edges,
    })
}

/// Convenience: peel the densest block of the whole graph.
///
/// ```
/// use ensemfdet::peel::peel_densest_full;
/// use ensemfdet::metric::AverageDegreeMetric;
/// use ensemfdet_graph::{GraphBuilder, UserId, MerchantId};
///
/// let mut b = GraphBuilder::new();
/// for u in 0..4 {
///     for v in 0..2 {
///         b.add_edge(UserId(u), MerchantId(v)); // dense 4×2 block
///     }
/// }
/// b.add_edge(UserId(4), MerchantId(2)); // stray edge
/// let block = peel_densest_full(&b.build(), &AverageDegreeMetric).unwrap();
/// assert_eq!(block.users.len(), 4);
/// assert_eq!(block.merchants.len(), 2);
/// assert!((block.score - 8.0 / 6.0).abs() < 1e-12);
/// ```
pub fn peel_densest_full(g: &BipartiteGraph, metric: &dyn DensityMetric) -> Option<Block> {
    peel_densest(g, metric, &vec![true; g.num_edges()])
}

/// Density score `φ(S) = f(S)/|S|` of an explicit node subset — the oracle
/// the tests compare the peel against.
pub fn density_of_subset(
    g: &BipartiteGraph,
    metric: &dyn DensityMetric,
    users: &[UserId],
    merchants: &[MerchantId],
) -> f64 {
    let size = users.len() + merchants.len();
    if size == 0 {
        return 0.0;
    }
    // Column weights from the full graph, consistent with the peel.
    let mut vdeg = vec![0.0f64; g.num_merchants()];
    for (_, _, v, w) in g.edges() {
        vdeg[v.index()] += w;
    }
    let in_u: std::collections::HashSet<u32> = users.iter().map(|u| u.0).collect();
    let in_v: std::collections::HashSet<u32> = merchants.iter().map(|v| v.0).collect();
    let mut f = 0.0;
    for (_, u, v, w) in g.edges() {
        if in_u.contains(&u.0) && in_v.contains(&v.0) {
            f += w * metric.column_weight(vdeg[v.index()]);
        }
    }
    f / size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{AverageDegreeMetric, LogWeightedMetric};
    use ensemfdet_graph::GraphBuilder;

    /// 5×3 dense block plus a sparse fringe.
    fn planted_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in 0..3u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 5..25u32 {
            b.add_edge(UserId(u), MerchantId(3 + u % 7));
        }
        b.build()
    }

    #[test]
    fn finds_planted_dense_block() {
        let g = planted_graph();
        let block = peel_densest_full(&g, &AverageDegreeMetric).unwrap();
        let mut us: Vec<u32> = block.users.iter().map(|u| u.0).collect();
        let mut vs: Vec<u32> = block.merchants.iter().map(|v| v.0).collect();
        us.sort();
        vs.sort();
        assert_eq!(us, vec![0, 1, 2, 3, 4]);
        assert_eq!(vs, vec![0, 1, 2]);
        // φ = 15 edges / 8 nodes.
        assert!((block.score - 15.0 / 8.0).abs() < 1e-12);
        assert_eq!(block.edges.len(), 15);
    }

    #[test]
    fn log_metric_also_finds_block() {
        let g = planted_graph();
        let block = peel_densest_full(&g, &LogWeightedMetric::paper_default()).unwrap();
        assert_eq!(block.users.len(), 5);
        assert_eq!(block.merchants.len(), 3);
    }

    #[test]
    fn score_matches_density_oracle() {
        let g = planted_graph();
        let m = LogWeightedMetric::paper_default();
        let block = peel_densest_full(&g, &m).unwrap();
        let oracle = density_of_subset(&g, &m, &block.users, &block.merchants);
        assert!((block.score - oracle).abs() < 1e-9);
    }

    #[test]
    fn empty_mask_returns_none() {
        let g = planted_graph();
        let mask = vec![false; g.num_edges()];
        assert!(peel_densest(&g, &AverageDegreeMetric, &mask).is_none());
    }

    #[test]
    fn edgeless_graph_returns_none() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]).unwrap();
        assert!(peel_densest_full(&g, &AverageDegreeMetric).is_none());
    }

    #[test]
    fn respects_edge_mask() {
        // Kill the planted block's edges: the peel must find something else.
        let g = planted_graph();
        let mut mask = vec![true; g.num_edges()];
        for (e, u, _, _) in g.edges() {
            if u.0 < 5 {
                mask[e] = false;
            }
        }
        let block = peel_densest(&g, &AverageDegreeMetric, &mask).unwrap();
        assert!(block.users.iter().all(|u| u.0 >= 5));
    }

    #[test]
    fn single_edge_graph() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0)]).unwrap();
        let block = peel_densest_full(&g, &AverageDegreeMetric).unwrap();
        assert_eq!(block.users, vec![UserId(0)]);
        assert_eq!(block.merchants, vec![MerchantId(0)]);
        assert!((block.score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn camouflage_resistance_of_log_metric() {
        // Fraud block: 6 users × 3 fraud merchants (18 edges).
        // Camouflage: a popular merchant with 60 honest degree; fraud users
        // also hit it. Under the log metric the camouflage edges are cheap,
        // so the detected block should still be the fraud core, not the
        // popular merchant's star.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in 0..3u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
            b.add_edge(UserId(u), MerchantId(3)); // camouflage
        }
        for u in 6..66u32 {
            b.add_edge(UserId(u), MerchantId(3)); // honest traffic
        }
        let g = b.build();
        let block = peel_densest_full(&g, &LogWeightedMetric::paper_default()).unwrap();
        let vs: Vec<u32> = block.merchants.iter().map(|v| v.0).collect();
        assert!(
            !vs.contains(&3) || vs.len() > 3,
            "popular merchant should not dominate: {vs:?}"
        );
        assert!(block.users.iter().filter(|u| u.0 < 6).count() >= 5);
    }

    #[test]
    fn weighted_edges_bias_the_peel() {
        // Two candidate blocks of equal shape; one has weight-3 edges.
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        for u in 0..3u32 {
            for v in 0..2u32 {
                edges.push((u, v));
                weights.push(3.0);
                edges.push((u + 3, v + 2));
                weights.push(1.0);
            }
        }
        let g = BipartiteGraph::from_weighted_edges(6, 4, edges, weights).unwrap();
        let block = peel_densest_full(&g, &AverageDegreeMetric).unwrap();
        assert!(block.users.iter().all(|u| u.0 < 3));
        assert!(block.merchants.iter().all(|v| v.0 < 2));
    }

    #[test]
    fn deterministic_output() {
        let g = planted_graph();
        let b1 = peel_densest_full(&g, &LogWeightedMetric::paper_default()).unwrap();
        let b2 = peel_densest_full(&g, &LogWeightedMetric::paper_default()).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    #[should_panic(expected = "edge_alive mask")]
    fn wrong_mask_length_panics() {
        let g = planted_graph();
        peel_densest(&g, &AverageDegreeMetric, &[true]);
    }
}
