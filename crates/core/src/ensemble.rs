//! ENSEMFDET (Algorithm 2): sample → FDET in parallel → vote.
//!
//! The `N` sampled runs are independent, so they drain perfectly off a
//! shared work list — this is the parallelism behind the paper's
//! `Time(EnsemFDet) < S × Time(Fraudar)` claim. The ensemble runs on an
//! explicit worker pool ([`EnsemFdet::with_workers`]): `W` scoped threads,
//! each owning its own thread-local [`FdetEngine`] and
//! [`SamplerScratch`], claim sample indices from an atomic cursor until
//! the list is dry. Per-sample seeds are derived deterministically from
//! the master seed and results are gathered by sample index, so the
//! outcome is identical regardless of worker count or scheduling.

use crate::aggregate::VoteTally;
use crate::engine::{Engine, FdetEngine};
use crate::evidence::EvidenceTally;
use crate::fdet::Truncation;
use crate::incremental::{ReuseStats, SampleContribution, ScanCache};
use crate::metric::MetricKind;
use ensemfdet_graph::{BipartiteGraph, GraphDelta, SampleMaps, SampleSpec, SampledGraph};
use ensemfdet_sampling::{seed, spec_unaffected, Sampler, SamplerScratch, SamplingMethod};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use std::time::Instant;

/// Configuration of an ENSEMFDET run (the parameters of Table II).
///
/// `PartialEq` compares every field (including the seed): two configs are
/// equal iff they produce bit-identical scans of the same snapshot, which
/// is exactly the question the incremental scan cache asks before
/// trusting its entries.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnsemFdetConfig {
    /// `N` — number of sampled graphs.
    pub num_samples: usize,
    /// `S` — sample ratio in `(0, 1]`.
    pub sample_ratio: f64,
    /// `M` — the structural sampling method.
    pub method: SamplingMethodConfig,
    /// Density metric `φ` (Definition 2 by default).
    pub metric: MetricKind,
    /// Block truncation strategy (Definition 3 by default).
    pub truncation: Truncation,
    /// Peeling engine backing every FDET run (CSR hot path by default;
    /// `bucket` is its bit-identical O(E) twin, `bucket-batch` the
    /// tie-round parallel variant, and the naive reference path produces
    /// identical results, slower).
    pub engine: Engine,
    /// Sampling data path: resolve sample specs lazily against the shared
    /// parent snapshot (`Mask`, default) or materialize each sample as a
    /// compacted graph copy (`Materialize`, the reference path). Both
    /// yield bit-identical votes, evidence, and scores.
    #[serde(default)]
    pub path: SamplePath,
    /// Master RNG seed.
    pub seed: u64,
    /// Hybrid scoring: fuse the vote fraction with spectral and k-core
    /// components computed once on the parent graph (off by default —
    /// see [`crate::scoring`]). Lives inside the config, and hence
    /// inside the incremental cache's equality key, because it changes
    /// what a scan reports: any scoring change between epochs triggers
    /// the `config_changed` full-scan fallback.
    #[serde(default)]
    pub scoring: crate::scoring::ScoringConfig,
}

/// How each sampled run gets its subgraph.
///
/// `Mask` is the zero-copy path: the sampler emits a
/// [`ensemfdet_graph::SampleSpec`] into per-thread scratch and the engine
/// compacts it straight into its reusable `CsrView` — per-sample
/// allocation is O(sample), not O(parent + sample). `Materialize` builds
/// the compacted [`SampledGraph`] copy first (the original data path) and
/// remains as the reference for equivalence gates; it is also what the
/// naive engine runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplePath {
    /// Materialize each sample as a compacted `BipartiteGraph` copy.
    Materialize,
    /// Resolve sample specs lazily against the shared parent snapshot.
    #[default]
    Mask,
}

impl SamplePath {
    /// Stable lowercase name (`mask` / `materialize`), as accepted by
    /// [`SamplePath::from_str`](std::str::FromStr) and the CLI
    /// `--sample-path` flag.
    pub fn name(self) -> &'static str {
        match self {
            SamplePath::Materialize => "materialize",
            SamplePath::Mask => "mask",
        }
    }
}

impl std::fmt::Display for SamplePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SamplePath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mask" => Ok(SamplePath::Mask),
            "materialize" => Ok(SamplePath::Materialize),
            other => Err(format!("unknown sample path `{other}` (mask|materialize)")),
        }
    }
}

/// Serializable mirror of [`SamplingMethod`] (the sampling crate keeps its
/// enum serde-free).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMethodConfig {
    /// Random Edge Sampling.
    RandomEdge,
    /// One-side sampling of the user/PIN side.
    OneSideUser,
    /// One-side sampling of the merchant side.
    OneSideMerchant,
    /// Two-sides node sampling.
    TwoSide,
}

impl From<SamplingMethodConfig> for SamplingMethod {
    fn from(c: SamplingMethodConfig) -> Self {
        match c {
            SamplingMethodConfig::RandomEdge => SamplingMethod::RandomEdge,
            SamplingMethodConfig::OneSideUser => SamplingMethod::OneSideUser,
            SamplingMethodConfig::OneSideMerchant => SamplingMethod::OneSideMerchant,
            SamplingMethodConfig::TwoSide => SamplingMethod::TwoSide,
        }
    }
}

impl Default for EnsemFdetConfig {
    /// The paper's headline configuration: RES, `S = 0.1`, `N = 80`,
    /// log-weighted metric, auto-truncation.
    fn default() -> Self {
        EnsemFdetConfig {
            num_samples: 80,
            sample_ratio: 0.1,
            method: SamplingMethodConfig::RandomEdge,
            metric: MetricKind::default(),
            truncation: Truncation::default(),
            engine: Engine::default(),
            path: SamplePath::default(),
            seed: 0x0001_15ED,
            scoring: crate::scoring::ScoringConfig::default(),
        }
    }
}

/// Per-sample diagnostics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SampleSummary {
    /// Index of the sample (0-based).
    pub index: usize,
    /// Nodes in the sampled graph.
    pub sample_nodes: usize,
    /// Edges in the sampled graph.
    pub sample_edges: usize,
    /// Blocks peeled before truncation.
    pub blocks_peeled: usize,
    /// `k̂` for this sample.
    pub k_hat: usize,
    /// Per-block scores (the Figure 1 curve of this sample).
    pub scores: Vec<f64>,
    /// Users detected in this sample.
    pub detected_users: usize,
    /// Merchants detected in this sample.
    pub detected_merchants: usize,
    /// Wall-clock spent sampling + detecting this sample.
    pub elapsed: Duration,
    /// Wall-clock of the sampling stage alone. On the materializing path
    /// this includes compacting the subgraph copy; on the mask path it is
    /// just the draw (compaction happens inside the detection stage,
    /// fused into the engine's view build).
    pub sampling_elapsed: Duration,
    /// Wall-clock of the FDET stage alone (peeling the sampled graph).
    pub detect_elapsed: Duration,
    /// Approximate bytes this sample's subgraph representation cost: the
    /// compacted-copy footprint on the materializing path (intern maps
    /// are O(parent)!), or just the selection vectors on the mask path.
    #[serde(default)]
    pub sample_bytes: u64,
}

/// Wall-clock of one ensemble run split by pipeline stage (summed across
/// samples for the per-sample stages, so on a parallel machine the stage
/// sums exceed [`EnsembleOutcome::elapsed`]).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Total time drawing and compacting the `N` sampled subgraphs.
    pub sampling: Duration,
    /// Total time running FDET over the `N` samples.
    pub detection: Duration,
    /// Time merging per-sample votes/evidence into the final tallies.
    pub aggregation: Duration,
}

/// The full outcome of one ensemble run.
#[derive(Clone, Debug)]
pub struct EnsembleOutcome {
    /// Vote counts per parent-graph node; threshold with
    /// [`VoteTally::detected_users`] or sweep with
    /// [`VoteTally::user_detection_curve`].
    pub votes: VoteTally,
    /// Block-score-weighted evidence per node (the continuous alternative
    /// aggregation of Section IV-C's flexibility remark).
    pub evidence: EvidenceTally,
    /// Per-sample diagnostics, in sample order.
    pub samples: Vec<SampleSummary>,
    /// Total wall-clock of the run.
    pub elapsed: Duration,
    /// Per-stage wall-clock breakdown (sampling / detection / aggregation).
    pub stages: StageTimings,
    /// Worker threads the sample pool actually ran with (after clamping
    /// to the sample count).
    pub workers: usize,
    /// Per-worker busy time for this pass — the wall-clock each pool
    /// worker spent draining samples, one entry per worker. Never affects
    /// results; pure diagnostics.
    pub worker_times: Vec<Duration>,
}

impl EnsembleOutcome {
    /// Sum of per-sample wall-clock — what a fully parallel machine
    /// overlaps; `sum / elapsed` is the realized speedup, `sum / max` the
    /// ideal one.
    pub fn total_sample_time(&self) -> Duration {
        self.samples.iter().map(|s| s.elapsed).sum()
    }

    /// The slowest sample — the critical path under perfect parallelism.
    pub fn max_sample_time(&self) -> Duration {
        self.samples
            .iter()
            .map(|s| s.elapsed)
            .max()
            .unwrap_or_default()
    }

    /// Total bytes spent on per-sample subgraph representations across
    /// the run (see [`SampleSummary::sample_bytes`]).
    pub fn sample_bytes(&self) -> u64 {
        self.samples.iter().map(|s| s.sample_bytes).sum()
    }
}

/// The ENSEMFDET detector.
#[derive(Clone, Debug)]
pub struct EnsemFdet {
    config: EnsemFdetConfig,
    /// Worker threads for the sample pool; `0` = one per available core.
    /// Deliberately *outside* [`EnsemFdetConfig`]: the config's equality
    /// is the "bit-identical scans" contract the incremental cache keys
    /// on, and the worker count never changes results — only wall-clock.
    workers: usize,
}

/// Resolves a configured worker count: `0` means one worker per available
/// core, anything else is taken literally.
pub fn effective_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

/// Runs `f` over `0..n` on a pool of `workers` scoped threads draining an
/// atomic cursor, gathering results in index order. Each spawned thread
/// carries its own thread-local engine/scratch set, so per-worker state
/// never crosses threads. A single worker (or a single item) runs inline
/// on the calling thread — no spawn, same results.
///
/// Returns the results and each worker's busy time (the pool's
/// parallelism diagnostics).
fn drain_pool<T, F>(n: usize, workers: usize, f: F) -> (Vec<T>, Vec<Duration>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        let t0 = Instant::now();
        let out: Vec<T> = (0..n).map(&f).collect();
        return (out, vec![t0.elapsed()]);
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let per_worker: Vec<(Vec<(usize, T)>, Duration)> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                sc.spawn(move || {
                    let t0 = Instant::now();
                    let mut claimed = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        claimed.push((i, f(i)));
                    }
                    (claimed, t0.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ensemble pool worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut times = Vec::with_capacity(workers);
    for (claimed, busy) in per_worker {
        times.push(busy);
        for (i, v) in claimed {
            slots[i] = Some(v);
        }
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("every sample index claimed exactly once"))
        .collect();
    (out, times)
}

thread_local! {
    /// Per-thread sampling scratch for the mask path: the Floyd mark
    /// buffer, the spec being refilled, and the local↔parent id maps are
    /// all reused across every sample this thread draws, so steady-state
    /// sampling allocates nothing.
    static SAMPLE_SCRATCH: std::cell::RefCell<(SamplerScratch, SampleSpec, SampleMaps)> =
        std::cell::RefCell::new((SamplerScratch::new(), SampleSpec::new(), SampleMaps::default()));
}

/// Approximate allocation footprint of one materialized sample: the two
/// parent-sized intern maps plus the compacted graph copy (edge list,
/// optional weights, both CSR sides) and its back-maps. An accounting
/// estimate for telemetry — the point is the O(parent) intern-map term
/// the mask path eliminates — not an allocator measurement.
fn materialized_bytes(parent: &BipartiteGraph, sampled: &SampledGraph) -> u64 {
    let k = sampled.graph.num_edges();
    let su = sampled.graph.num_users();
    let sv = sampled.graph.num_merchants();
    let intern_maps = (parent.num_users() + parent.num_merchants()) * 4;
    let edge_pairs = k * 8;
    let weights = if sampled.graph.is_weighted() { k * 8 } else { 0 };
    let csr_sides = (su + 1) * 8 + (sv + 1) * 8 + 2 * k * 4;
    let back_maps = (su + sv) * 4;
    (intern_maps + edge_pairs + weights + csr_sides + back_maps) as u64
}

impl EnsemFdet {
    /// Builds a detector from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_samples == 0` or `sample_ratio ∉ (0, 1]`.
    pub fn new(config: EnsemFdetConfig) -> Self {
        Self::with_workers(config, 0)
    }

    /// [`new`](Self::new) with an explicit worker-pool size (`0` = one
    /// worker per available core). Worker count is a throughput knob
    /// only — any two counts produce bit-identical outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `num_samples == 0` or `sample_ratio ∉ (0, 1]`.
    pub fn with_workers(config: EnsemFdetConfig, workers: usize) -> Self {
        assert!(config.num_samples > 0, "N must be at least 1");
        assert!(
            config.sample_ratio > 0.0 && config.sample_ratio <= 1.0,
            "S must be in (0, 1], got {}",
            config.sample_ratio
        );
        EnsemFdet { config, workers }
    }

    /// The active configuration.
    pub fn config(&self) -> &EnsemFdetConfig {
        &self.config
    }

    /// The configured worker-pool size (`0` = auto).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs Algorithm 2 on `g`: sample `N` subgraphs, run FDET on each in
    /// parallel, and tally votes in the parent id space.
    ///
    /// With [`SamplePath::Mask`] (the default) and any view engine (CSR,
    /// bucket, or bucket-batch), every sample is a lightweight spec
    /// resolved against `g` through per-thread scratch — no subgraph
    /// copies. The materializing path runs otherwise (including under the
    /// naive engine, which peels a real `BipartiteGraph` by definition);
    /// both produce bit-identical votes, evidence, and scores.
    pub fn detect(&self, g: &BipartiteGraph) -> EnsembleOutcome {
        self.detect_with_cache(g, 0).0
    }

    /// [`detect`](Self::detect), additionally handing back the per-sample
    /// contributions as a [`ScanCache`] keyed to `epoch`, so a later
    /// [`detect_incremental`](Self::detect_incremental) against the
    /// snapshot published at `epoch` can replay the clean samples.
    pub fn detect_with_cache(&self, g: &BipartiteGraph, epoch: u64) -> (EnsembleOutcome, ScanCache) {
        let start = Instant::now();
        let cfg = &self.config;
        let method: SamplingMethod = cfg.method.into();

        let (entries, worker_times): (Vec<Arc<SampleContribution>>, Vec<Duration>) = drain_pool(
            cfg.num_samples,
            effective_workers(self.workers),
            |i| Arc::new(self.run_sample(g, method, i)),
        );

        let outcome = self.aggregate(g, &entries, None, start, worker_times);
        let cache = ScanCache {
            base_epoch: epoch,
            base_dims: (g.num_users(), g.num_merchants(), g.num_edges()),
            config: self.config,
            entries,
        };
        (outcome, cache)
    }

    /// Incremental Algorithm 2: re-peel only the samples `delta` dirtied,
    /// replay the rest from `cache`.
    ///
    /// For every sample index the draw is repeated (an O(selection) Floyd
    /// fill — the draw is a pure function of `(population, ratio, seed)`,
    /// so with populations unchanged it *is* the cached draw) and checked
    /// against the delta with [`spec_unaffected`]. Clean samples replay
    /// their cached parent-space contribution; dirty ones run the full
    /// sample → peel path. Aggregation always re-tallies every
    /// contribution in index order into fresh dimension-sized tallies, so
    /// the outcome is bit-identical to [`detect`](Self::detect) on the
    /// same `(graph, config)` — only wall-clock differs.
    ///
    /// Returns the outcome, the reuse accounting, and the refreshed cache
    /// for the *next* epoch. [`StageTimings`] and the outcome's `elapsed`
    /// measure this pass's actual work; a replayed
    /// [`SampleSummary`]'s own timing fields still describe the run that
    /// produced it.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was recorded under a different configuration or
    /// sample count — callers gate on [`ScanCache::config`] first (see
    /// [`ScanRunner::run_incremental`]).
    ///
    /// [`ScanRunner::run_incremental`]: crate::pipeline::ScanRunner::run_incremental
    pub fn detect_incremental(
        &self,
        g: &BipartiteGraph,
        delta: &GraphDelta,
        cache: &ScanCache,
    ) -> (EnsembleOutcome, ReuseStats, ScanCache) {
        assert_eq!(
            cache.config, self.config,
            "scan cache recorded under a different config"
        );
        assert_eq!(cache.entries.len(), self.config.num_samples);
        let start = Instant::now();
        let cfg = &self.config;
        let method: SamplingMethod = cfg.method.into();

        let (per_sample, worker_times): (Vec<(Arc<SampleContribution>, bool)>, Vec<Duration>) =
            drain_pool(cfg.num_samples, effective_workers(self.workers), |i| {
                let clean = SAMPLE_SCRATCH.with(|cell| {
                    let (scratch, spec, _maps) = &mut *cell.borrow_mut();
                    let sample_seed = seed::derive(cfg.seed, i as u64);
                    method.sample_spec(g, cfg.sample_ratio, sample_seed, scratch, spec);
                    spec_unaffected(spec, delta)
                });
                if clean {
                    (Arc::clone(&cache.entries[i]), true)
                } else {
                    (Arc::new(self.run_sample(g, method, i)), false)
                }
            });

        let reused = per_sample.iter().filter(|(_, r)| *r).count();
        let fresh: Vec<bool> = per_sample.iter().map(|(_, r)| !*r).collect();
        let entries: Vec<Arc<SampleContribution>> =
            per_sample.into_iter().map(|(c, _)| c).collect();

        let outcome = self.aggregate(g, &entries, Some(&fresh), start, worker_times);
        let stats = ReuseStats {
            incremental: true,
            fallback: None,
            samples_reused: reused,
            samples_repeeled: cfg.num_samples - reused,
            delta_touched_nodes: delta.touched_nodes(),
            delta_touched_fraction: delta.touched_fraction(),
        };
        let next = ScanCache {
            base_epoch: delta.to_epoch,
            base_dims: (g.num_users(), g.num_merchants(), g.num_edges()),
            config: self.config,
            entries,
        };
        (outcome, stats, next)
    }

    /// One sampled run by the configured path (see
    /// [`detect`](Self::detect) for the mask/materialize split).
    ///
    /// The naive engine deliberately ignores [`SamplePath::Mask`] and
    /// always materializes. It is the equivalence-only oracle: its value
    /// is being a direct, independent transcription of the paper's FDET
    /// over a plain [`BipartiteGraph`], sharing *no* machinery with the
    /// optimized path. Threading `SamplePath` through it would mean
    /// teaching it the `CsrView`/`SpecResolver` mask infrastructure — the
    /// very code it exists to cross-check — so any resolver bug would
    /// cancel out of the equivalence gates instead of tripping them. The
    /// gates in `tests/tests/spec_equivalence.rs` close the loop from the
    /// other side (mask path ≡ materialized path under the view engines),
    /// so every pairing is still covered: naive ≡ materialized ≡ mask.
    fn run_sample(&self, g: &BipartiteGraph, method: SamplingMethod, i: usize) -> SampleContribution {
        let use_mask = self.config.path == SamplePath::Mask && self.config.engine != Engine::Naive;
        if use_mask {
            self.run_sample_mask(g, method, i)
        } else {
            self.run_sample_materialized(g, method, i)
        }
    }

    /// Tallies contributions in sample-index order into fresh
    /// dimension-sized tallies. Vote counts are order-independent and each
    /// node receives at most one evidence addend per sample (blocks are
    /// node-disjoint), so full and incremental scans — which differ only
    /// in *where* a contribution came from — aggregate bit-identically.
    ///
    /// `fresh`: which samples were actually computed this pass (`None` =
    /// all of them); stage timings sum over those only. `worker_times` is
    /// the pool's per-worker busy time, passed straight through to the
    /// outcome.
    fn aggregate(
        &self,
        g: &BipartiteGraph,
        entries: &[Arc<SampleContribution>],
        fresh: Option<&[bool]>,
        start: Instant,
        worker_times: Vec<Duration>,
    ) -> EnsembleOutcome {
        let t_agg = Instant::now();
        let mut votes = VoteTally::new(g.num_users(), g.num_merchants());
        let mut evidence = EvidenceTally::new(g.num_users(), g.num_merchants());
        let mut samples = Vec::with_capacity(entries.len());
        for c in entries {
            votes.add_sample(c.users.iter().copied(), c.merchants.iter().copied());
            evidence.add_sample(
                c.user_evidence.iter().copied(),
                c.merchant_evidence.iter().copied(),
            );
            samples.push(c.summary.clone());
        }
        let computed = |i: usize| fresh.is_none_or(|f| f[i]);
        let stages = StageTimings {
            sampling: samples
                .iter()
                .enumerate()
                .filter(|(i, _)| computed(*i))
                .map(|(_, s)| s.sampling_elapsed)
                .sum(),
            detection: samples
                .iter()
                .enumerate()
                .filter(|(i, _)| computed(*i))
                .map(|(_, s)| s.detect_elapsed)
                .sum(),
            aggregation: t_agg.elapsed(),
        };

        EnsembleOutcome {
            votes,
            evidence,
            samples,
            elapsed: start.elapsed(),
            stages,
            workers: worker_times.len(),
            worker_times,
        }
    }

    /// One sampled run on the materializing path: draw → compact a
    /// `SampledGraph` copy → peel it with the configured engine.
    fn run_sample_materialized(
        &self,
        g: &BipartiteGraph,
        method: SamplingMethod,
        i: usize,
    ) -> SampleContribution {
        let cfg = &self.config;
        let t0 = Instant::now();
        let sample_seed = seed::derive(cfg.seed, i as u64);
        let sampled = method.sample(g, cfg.sample_ratio, sample_seed);
        let sampling_elapsed = t0.elapsed();
        let t1 = Instant::now();
        // The cached per-thread engine reuses the CSR view and
        // peel scratch across every sample this thread processes.
        let result = FdetEngine::run_cached(&sampled.graph, &cfg.metric, cfg.truncation, cfg.engine);
        let detect_elapsed = t1.elapsed();

        let users: Vec<_> = result
            .detected_users()
            .into_iter()
            .map(|lu| sampled.parent_user(lu))
            .collect();
        let merchants: Vec<_> = result
            .detected_merchants()
            .into_iter()
            .map(|lv| sampled.parent_merchant(lv))
            .collect();

        let summary = SampleSummary {
            index: i,
            sample_nodes: sampled.graph.num_nodes(),
            sample_edges: sampled.graph.num_edges(),
            blocks_peeled: result.blocks.len(),
            k_hat: result.k_hat,
            scores: result.scores.clone(),
            detected_users: users.len(),
            detected_merchants: merchants.len(),
            elapsed: t0.elapsed(),
            sampling_elapsed,
            detect_elapsed,
            sample_bytes: materialized_bytes(g, &sampled),
        };

        // Evidence: each detected node carries its block's score.
        // FDET blocks are node-disjoint, so a node appears at most
        // once per sample.
        let sampled_ref = &sampled;
        let user_evidence: Vec<_> = result
            .detected_blocks()
            .iter()
            .flat_map(|b| {
                b.users
                    .iter()
                    .map(move |&lu| (sampled_ref.parent_user(lu), b.score))
            })
            .collect();
        let merchant_evidence: Vec<_> = result
            .detected_blocks()
            .iter()
            .flat_map(|b| {
                b.merchants
                    .iter()
                    .map(move |&lv| (sampled_ref.parent_merchant(lv), b.score))
            })
            .collect();
        SampleContribution {
            users,
            merchants,
            user_evidence,
            merchant_evidence,
            summary,
        }
    }

    /// One sampled run on the mask path: draw a spec into per-thread
    /// scratch and peel it straight off the shared parent snapshot. No
    /// subgraph copy exists at any point; `maps` carries the local↔parent
    /// ids for voting.
    fn run_sample_mask(
        &self,
        g: &BipartiteGraph,
        method: SamplingMethod,
        i: usize,
    ) -> SampleContribution {
        let cfg = &self.config;
        SAMPLE_SCRATCH.with(|cell| {
            let (scratch, spec, maps) = &mut *cell.borrow_mut();
            let t0 = Instant::now();
            let sample_seed = seed::derive(cfg.seed, i as u64);
            method.sample_spec(g, cfg.sample_ratio, sample_seed, scratch, spec);
            let sampling_elapsed = t0.elapsed();
            let t1 = Instant::now();
            let (result, sample_edges) =
                FdetEngine::run_spec_cached(g, spec, &cfg.metric, cfg.truncation, cfg.engine, maps);
            let detect_elapsed = t1.elapsed();

            let maps = &*maps;
            let users: Vec<_> = result
                .detected_users()
                .into_iter()
                .map(|lu| maps.parent_user(lu))
                .collect();
            let merchants: Vec<_> = result
                .detected_merchants()
                .into_iter()
                .map(|lv| maps.parent_merchant(lv))
                .collect();

            let summary = SampleSummary {
                index: i,
                sample_nodes: maps.num_users() + maps.num_merchants(),
                sample_edges,
                blocks_peeled: result.blocks.len(),
                k_hat: result.k_hat,
                scores: result.scores.clone(),
                detected_users: users.len(),
                detected_merchants: merchants.len(),
                elapsed: t0.elapsed(),
                sampling_elapsed,
                detect_elapsed,
                sample_bytes: spec.selection_bytes(),
            };
            let user_evidence: Vec<_> = result
                .detected_blocks()
                .iter()
                .flat_map(|b| {
                    b.users.iter().map(move |&lu| (maps.parent_user(lu), b.score))
                })
                .collect();
            let merchant_evidence: Vec<_> = result
                .detected_blocks()
                .iter()
                .flat_map(|b| {
                    b.merchants
                        .iter()
                        .map(move |&lv| (maps.parent_merchant(lv), b.score))
                })
                .collect();
            SampleContribution {
                users,
                merchants,
                user_evidence,
                merchant_evidence,
                summary,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    /// Dense planted block + sparse background.
    fn planted(nu_fraud: u32, nv_fraud: u32, nu_honest: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..nu_fraud {
            for v in 0..nv_fraud {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in nu_fraud..(nu_fraud + nu_honest) {
            b.add_edge(UserId(u), MerchantId(nv_fraud + u % 23));
            b.add_edge(UserId(u), MerchantId(nv_fraud + (u * 7) % 23));
        }
        b.build()
    }

    fn quick_config(n: usize, s: f64) -> EnsemFdetConfig {
        EnsemFdetConfig {
            num_samples: n,
            sample_ratio: s,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn detects_planted_fraud_users() {
        let g = planted(10, 4, 100);
        let det = EnsemFdet::new(quick_config(12, 0.4));
        let out = det.detect(&g);
        // Fraud users should out-vote honest ones decisively.
        let frauds = out.votes.detected_users(6);
        assert!(!frauds.is_empty());
        assert!(
            frauds.iter().all(|u| u.0 < 10),
            "false positives at high T: {frauds:?}"
        );
        // At T=1 recall of the block should be near-total.
        let loose = out.votes.detected_users(1);
        let fraud_hits = loose.iter().filter(|u| u.0 < 10).count();
        assert!(fraud_hits >= 9, "only {fraud_hits}/10 fraud users seen");
    }

    #[test]
    fn deterministic_across_runs() {
        let g = planted(8, 3, 60);
        let det = EnsemFdet::new(quick_config(8, 0.3));
        let a = det.detect(&g);
        let b = det.detect(&g);
        assert_eq!(a.votes, b.votes);
    }

    #[test]
    fn seed_changes_votes() {
        let g = planted(8, 3, 60);
        let mut c1 = quick_config(6, 0.3);
        c1.seed = 1;
        let mut c2 = c1;
        c2.seed = 2;
        let a = EnsemFdet::new(c1).detect(&g);
        let b = EnsemFdet::new(c2).detect(&g);
        assert_ne!(a.votes.user_votes, b.votes.user_votes);
    }

    #[test]
    fn sample_summaries_are_complete() {
        let g = planted(8, 3, 40);
        let out = EnsemFdet::new(quick_config(5, 0.5)).detect(&g);
        assert_eq!(out.samples.len(), 5);
        for (i, s) in out.samples.iter().enumerate() {
            assert_eq!(s.index, i);
            assert!(s.sample_edges > 0);
            assert!(s.k_hat <= s.blocks_peeled);
            assert_eq!(s.scores.len(), s.blocks_peeled);
        }
        assert_eq!(out.votes.num_samples, 5);
        assert!(out.total_sample_time() >= out.max_sample_time());
    }

    #[test]
    fn full_ratio_single_sample_equals_plain_fdet() {
        let g = planted(8, 3, 40);
        let cfg = EnsemFdetConfig {
            num_samples: 1,
            sample_ratio: 1.0,
            seed: 3,
            ..Default::default()
        };
        let out = EnsemFdet::new(cfg).detect(&g);
        let direct = crate::fdet::fdet(&g, &MetricKind::default(), Truncation::default());
        let ensemble_users = out.votes.detected_users(1);
        assert_eq!(ensemble_users, direct.detected_users());
    }

    #[test]
    #[should_panic(expected = "N must be at least 1")]
    fn zero_samples_rejected() {
        EnsemFdet::new(EnsemFdetConfig {
            num_samples: 0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "S must be in (0, 1]")]
    fn invalid_ratio_rejected() {
        EnsemFdet::new(EnsemFdetConfig {
            sample_ratio: 1.5,
            ..Default::default()
        });
    }

    #[test]
    fn evidence_tracks_votes() {
        let g = planted(10, 4, 100);
        let out = EnsemFdet::new(quick_config(12, 0.4)).detect(&g);
        assert_eq!(out.evidence.num_samples, 12);
        // A node with votes has evidence and vice versa.
        for (u, &v) in out.votes.user_votes.iter().enumerate() {
            let e = out.evidence.user_evidence[u];
            assert_eq!(v > 0, e > 0.0, "user {u}: votes {v}, evidence {e}");
        }
        // Evidence separates the planted block at least as well as votes:
        // its fraud-user mean exceeds the honest mean by a wide margin.
        let fraud_mean: f64 =
            out.evidence.user_evidence[..10].iter().sum::<f64>() / 10.0;
        let honest_mean: f64 =
            out.evidence.user_evidence[10..].iter().sum::<f64>() / 100.0;
        assert!(fraud_mean > 3.0 * honest_mean);
    }

    #[test]
    fn works_on_edgeless_graph() {
        let g = BipartiteGraph::from_edges(5, 5, vec![]).unwrap();
        let out = EnsemFdet::new(quick_config(3, 0.5)).detect(&g);
        assert_eq!(out.votes.max_user_votes(), 0);
    }

    /// The mask path must be observationally identical to the reference
    /// materializing path: same votes, evidence, and per-sample blocks,
    /// scores, and node/edge counts for every sampling method.
    #[test]
    fn mask_path_matches_materialized_path() {
        let g = planted(10, 4, 80);
        for method in [
            SamplingMethodConfig::RandomEdge,
            SamplingMethodConfig::OneSideUser,
            SamplingMethodConfig::OneSideMerchant,
            SamplingMethodConfig::TwoSide,
        ] {
            let mut cfg = quick_config(8, 0.4);
            cfg.method = method;
            cfg.path = SamplePath::Mask;
            let mask = EnsemFdet::new(cfg).detect(&g);
            cfg.path = SamplePath::Materialize;
            let mat = EnsemFdet::new(cfg).detect(&g);

            assert_eq!(mask.votes, mat.votes, "{method:?}");
            assert_eq!(
                mask.evidence.user_evidence, mat.evidence.user_evidence,
                "{method:?}"
            );
            for (a, b) in mask.samples.iter().zip(&mat.samples) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.sample_nodes, b.sample_nodes, "{method:?} #{}", a.index);
                assert_eq!(a.sample_edges, b.sample_edges, "{method:?} #{}", a.index);
                assert_eq!(a.blocks_peeled, b.blocks_peeled, "{method:?} #{}", a.index);
                assert_eq!(a.k_hat, b.k_hat, "{method:?} #{}", a.index);
                assert_eq!(a.scores, b.scores, "{method:?} #{}", a.index);
            }
        }
    }

    /// The naive engine has no CSR view to mask over, so a mask-path
    /// config silently falls back to materializing — results still match
    /// the CSR paths exactly.
    #[test]
    fn naive_engine_falls_back_to_materializing() {
        let g = planted(8, 3, 60);
        let mut cfg = quick_config(6, 0.4);
        cfg.engine = Engine::Naive;
        cfg.path = SamplePath::Mask;
        let naive = EnsemFdet::new(cfg).detect(&g);
        cfg.engine = Engine::Csr;
        let csr = EnsemFdet::new(cfg).detect(&g);
        assert_eq!(naive.votes, csr.votes);
    }

    /// Replaying every sample across an unchanged-graph delta must be
    /// bit-identical to a fresh scan, with zero re-peels.
    #[test]
    fn incremental_reuses_everything_across_unchanged_delta() {
        let g = planted(10, 4, 80);
        let det = EnsemFdet::new(quick_config(8, 0.4));
        let (full, cache) = det.detect_with_cache(&g, 1);
        let delta = ensemfdet_graph::GraphDelta::unchanged(
            1,
            2,
            (g.num_users(), g.num_merchants(), g.num_edges()),
        );
        let (inc, stats, next) = det.detect_incremental(&g, &delta, &cache);
        assert_eq!(stats.samples_reused, 8);
        assert_eq!(stats.samples_repeeled, 0);
        assert_eq!(inc.votes, full.votes);
        assert_eq!(inc.evidence.user_evidence, full.evidence.user_evidence);
        assert_eq!(next.base_epoch, 2);
    }

    /// A real delta (new edges on a few existing nodes) re-peels only the
    /// intersecting samples, and the mixed replay/re-peel outcome is
    /// bit-identical to a from-scratch scan of the grown graph.
    #[test]
    fn incremental_matches_full_scan_after_growth() {
        // Both snapshots in canonical sorted-unique edge order, as the
        // snapshot store publishes them — sample reuse is only claimed
        // across canonical snapshots (local id assignment, and with it
        // peel tie-breaking, follows edge order).
        let base = planted(10, 4, 80);
        let mut edges = base.edge_slice().to_vec();
        edges.sort_unstable();
        edges.dedup();
        let g1 =
            BipartiteGraph::from_edges(base.num_users(), base.num_merchants(), edges.clone())
                .unwrap();
        let dims1 = (g1.num_users(), g1.num_merchants(), g1.num_edges());
        // Grow: two background users start hitting a fraud merchant.
        let new_edges = [(40u32, 0u32), (41, 1)];
        edges.extend_from_slice(&new_edges);
        edges.sort_unstable();
        edges.dedup();
        let g2 = BipartiteGraph::from_edges(dims1.0, dims1.1, edges).unwrap();
        let dims2 = (g2.num_users(), g2.num_merchants(), g2.num_edges());
        let delta = ensemfdet_graph::GraphDelta::from_new_edges(1, 2, dims1, dims2, &new_edges);

        // ONS draws from the (unchanged) user population, so samples
        // avoiding users 40/41 replay.
        let mut cfg = quick_config(12, 0.4);
        cfg.method = SamplingMethodConfig::OneSideUser;
        let det = EnsemFdet::new(cfg);
        let (_, cache) = det.detect_with_cache(&g1, 1);
        let (inc, stats, _) = det.detect_incremental(&g2, &delta, &cache);
        let full = det.detect(&g2);

        assert_eq!(stats.samples_reused + stats.samples_repeeled, 12);
        assert!(stats.samples_reused > 0, "no sample avoided 2 of 90 users");
        assert!(stats.samples_repeeled > 0, "some sample must see the delta");
        assert_eq!(inc.votes, full.votes);
        assert_eq!(inc.evidence.user_evidence, full.evidence.user_evidence);
        assert_eq!(inc.evidence.merchant_evidence, full.evidence.merchant_evidence);
        for (a, b) in inc.samples.iter().zip(&full.samples) {
            assert_eq!(a.scores, b.scores, "sample {}", a.index);
            assert_eq!(a.k_hat, b.k_hat, "sample {}", a.index);
        }
    }

    #[test]
    #[should_panic(expected = "different config")]
    fn incremental_rejects_mismatched_cache() {
        let g = planted(8, 3, 40);
        let det = EnsemFdet::new(quick_config(4, 0.5));
        let (_, cache) = det.detect_with_cache(&g, 1);
        let mut other = quick_config(4, 0.5);
        other.seed = 999;
        let delta = ensemfdet_graph::GraphDelta::unchanged(
            1,
            2,
            (g.num_users(), g.num_merchants(), g.num_edges()),
        );
        EnsemFdet::new(other).detect_incremental(&g, &delta, &cache);
    }

    /// The worker pool is a throughput knob only: workers=1 (inline, no
    /// spawn) and workers=4 (scoped pool) must produce bit-identical
    /// votes, evidence, and per-sample blocks/scores for every seed.
    #[test]
    fn worker_count_never_changes_results() {
        let g = planted(10, 4, 80);
        for seed in [7u64, 1234, 0xDEAD_BEEF] {
            let mut cfg = quick_config(8, 0.4);
            cfg.seed = seed;
            let seq = EnsemFdet::with_workers(cfg, 1).detect(&g);
            let par = EnsemFdet::with_workers(cfg, 4).detect(&g);

            assert_eq!(seq.workers, 1, "seed {seed}");
            assert_eq!(seq.worker_times.len(), 1, "seed {seed}");
            assert_eq!(par.workers, 4, "seed {seed}");
            assert_eq!(par.worker_times.len(), 4, "seed {seed}");

            assert_eq!(seq.votes, par.votes, "seed {seed}");
            assert_eq!(
                seq.evidence.user_evidence, par.evidence.user_evidence,
                "seed {seed}"
            );
            assert_eq!(
                seq.evidence.merchant_evidence, par.evidence.merchant_evidence,
                "seed {seed}"
            );
            for (a, b) in seq.samples.iter().zip(&par.samples) {
                assert_eq!(a.index, b.index, "seed {seed}");
                assert_eq!(a.blocks_peeled, b.blocks_peeled, "seed {seed} #{}", a.index);
                assert_eq!(a.k_hat, b.k_hat, "seed {seed} #{}", a.index);
                assert_eq!(a.scores, b.scores, "seed {seed} #{}", a.index);
            }
        }
    }

    /// The incremental path runs through the same pool: replay/re-peel
    /// with 4 workers matches a 1-worker run and a from-scratch scan.
    #[test]
    fn incremental_is_worker_count_invariant() {
        let g = planted(10, 4, 80);
        let cfg = quick_config(8, 0.4);
        let delta = ensemfdet_graph::GraphDelta::unchanged(
            1,
            2,
            (g.num_users(), g.num_merchants(), g.num_edges()),
        );
        let det1 = EnsemFdet::with_workers(cfg, 1);
        let det4 = EnsemFdet::with_workers(cfg, 4);
        let (_, cache1) = det1.detect_with_cache(&g, 1);
        let (_, cache4) = det4.detect_with_cache(&g, 1);
        let (inc1, s1, _) = det1.detect_incremental(&g, &delta, &cache1);
        let (inc4, s4, _) = det4.detect_incremental(&g, &delta, &cache4);
        assert_eq!(s1.samples_reused, s4.samples_reused);
        assert_eq!(inc1.votes, inc4.votes);
        assert_eq!(inc1.evidence.user_evidence, inc4.evidence.user_evidence);
    }

    /// Mask-path bookkeeping is O(sample selection); the materializing
    /// path pays for intern maps over the whole parent plus the subgraph
    /// buffers. On a graph much larger than the sample the byte counters
    /// must reflect that gap.
    #[test]
    fn mask_path_materializes_fewer_bytes() {
        let g = planted(10, 4, 400);
        let mut cfg = quick_config(6, 0.1);
        cfg.path = SamplePath::Mask;
        let mask = EnsemFdet::new(cfg).detect(&g);
        cfg.path = SamplePath::Materialize;
        let mat = EnsemFdet::new(cfg).detect(&g);
        assert!(mask.sample_bytes() > 0);
        assert!(
            mask.sample_bytes() * 4 < mat.sample_bytes(),
            "mask {} vs materialized {}",
            mask.sample_bytes(),
            mat.sample_bytes()
        );
    }
}
