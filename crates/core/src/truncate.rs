//! The truncating point (Definition 3).
//!
//! FDET must stop extracting blocks once they stop being meaningful. The
//! paper adapts the elbow method: treat the cumulative density
//! `F(k) = Σ_{i≤k} φ(G(S_i))` as a function of `k` and stop where adding a
//! block stops improving it — `k̂ = argmin Δ²F`. Since `ΔF(k) = φ_{k+1}`,
//! the second difference of the cumulative curve is the *first* difference
//! of the per-block scores, so the truncating point sits just before the
//! largest single-step drop of `φ`:
//!
//! ```text
//! k̂ = 1 + argmin_i ( φ_{i+1} − φ_i )        (0-based i)
//! ```
//!
//! Blocks `0..k̂` are kept; everything after the cliff is noise (Figure 1
//! of the paper shows all sampled curves collapsing after the elbow).

/// Number of leading blocks to keep for a per-block score curve.
///
/// Curves with fewer than 3 points have no interior drop to measure; all
/// blocks are kept.
pub fn truncation_point(scores: &[f64]) -> usize {
    if scores.len() <= 2 {
        return scores.len();
    }
    let mut best_i = 0usize;
    let mut best_drop = f64::INFINITY;
    for i in 0..scores.len() - 1 {
        let drop = scores[i + 1] - scores[i];
        if drop < best_drop {
            best_drop = drop;
            best_i = i;
        }
    }
    best_i + 1
}

/// The raw second-order finite differences `Δ²φ_i = φ_{i+1} − 2φ_i + φ_{i−1}`
/// of a score curve, for diagnostics/plots (defined on interior points).
pub fn second_differences(scores: &[f64]) -> Vec<f64> {
    if scores.len() < 3 {
        return Vec::new();
    }
    scores
        .windows(3)
        .map(|w| w[2] - 2.0 * w[1] + w[0])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_curves_keep_everything() {
        assert_eq!(truncation_point(&[]), 0);
        assert_eq!(truncation_point(&[1.0]), 1);
        assert_eq!(truncation_point(&[1.0, 0.5]), 2);
    }

    #[test]
    fn cliff_after_first_block() {
        assert_eq!(truncation_point(&[1.0, 0.3, 0.28, 0.27]), 1);
    }

    #[test]
    fn cliff_after_third_block() {
        assert_eq!(truncation_point(&[1.0, 0.95, 0.9, 0.3, 0.28, 0.27]), 3);
    }

    #[test]
    fn gentle_decay_truncates_at_largest_drop() {
        // Monotone decay with the biggest drop between indexes 1 and 2.
        let scores = [1.0, 0.9, 0.6, 0.5, 0.45];
        assert_eq!(truncation_point(&scores), 2);
    }

    #[test]
    fn flat_curve_keeps_one() {
        // All drops equal (zero): argmin is the first, keep 1 block. A flat
        // curve means no block distinguishes itself; keeping the first is
        // the conservative choice.
        assert_eq!(truncation_point(&[0.5, 0.5, 0.5, 0.5]), 1);
    }

    #[test]
    fn non_monotone_curve_handled() {
        // A rebound after a dip: the largest drop still wins.
        let scores = [1.0, 0.2, 0.8, 0.75];
        assert_eq!(truncation_point(&scores), 1);
    }

    #[test]
    fn second_differences_match_definition() {
        let d2 = second_differences(&[1.0, 0.5, 0.4, 0.39]);
        assert_eq!(d2.len(), 2);
        assert!((d2[0] - 0.4).abs() < 1e-12); // 0.4 − 2·0.5 + 1.0
        assert!((d2[1] - 0.09).abs() < 1e-12); // 0.39 − 2·0.4 + 0.5
        assert!(second_differences(&[1.0, 2.0]).is_empty());
    }

    #[test]
    fn truncation_never_exceeds_len() {
        let scores = [0.9, 0.8, 0.7];
        let k = truncation_point(&scores);
        assert!(k >= 1 && k <= scores.len());
    }
}
