//! Majority-vote aggregation (Definition 4).
//!
//! Each sampled run contributes one vote (`h_i(u) ∈ {0, 1}`) for every node
//! it detects; a node is accepted iff its vote count reaches the threshold
//! `T`. The tally keeps raw counts, so one ensemble run yields the entire
//! `T`-sweep of Figure 9 for free — and the accepted set is monotone
//! (non-increasing) in `T`, which is what makes the detection size
//! controllable in practice.

use ensemfdet_graph::{MerchantId, UserId};
use serde::{Deserialize, Serialize};

/// Vote counts per node in the parent graph's id space.
///
/// ```
/// use ensemfdet::aggregate::VoteTally;
/// use ensemfdet_graph::{UserId, MerchantId};
///
/// let mut tally = VoteTally::new(3, 1);
/// tally.add_sample([UserId(0), UserId(1)], [MerchantId(0)]);
/// tally.add_sample([UserId(0)], []);
/// assert_eq!(tally.detected_users(2), vec![UserId(0)]);
/// assert_eq!(tally.user_detection_curve(), vec![2, 1]);
/// assert_eq!(tally.threshold_for_budget(1), Some(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoteTally {
    /// Votes per user id.
    pub user_votes: Vec<u32>,
    /// Votes per merchant id.
    pub merchant_votes: Vec<u32>,
    /// Number of sampled runs that voted (`N`).
    pub num_samples: usize,
}

impl VoteTally {
    /// An empty tally for a graph of the given dimensions.
    pub fn new(num_users: usize, num_merchants: usize) -> Self {
        VoteTally {
            user_votes: vec![0; num_users],
            merchant_votes: vec![0; num_merchants],
            num_samples: 0,
        }
    }

    /// Registers one sample's detected sets (parent-space ids).
    pub fn add_sample(&mut self, users: impl IntoIterator<Item = UserId>, merchants: impl IntoIterator<Item = MerchantId>) {
        for u in users {
            self.user_votes[u.index()] += 1;
        }
        for v in merchants {
            self.merchant_votes[v.index()] += 1;
        }
        self.num_samples += 1;
    }

    /// Merges another tally (e.g. from a parallel shard) into this one.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &VoteTally) {
        assert_eq!(self.user_votes.len(), other.user_votes.len());
        assert_eq!(self.merchant_votes.len(), other.merchant_votes.len());
        for (a, b) in self.user_votes.iter_mut().zip(&other.user_votes) {
            *a += b;
        }
        for (a, b) in self.merchant_votes.iter_mut().zip(&other.merchant_votes) {
            *a += b;
        }
        self.num_samples += other.num_samples;
    }

    /// `H(u) = accept` users: vote count ≥ `threshold`. `threshold = 0`
    /// accepts every user (including never-voted ones) and is rejected.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    pub fn detected_users(&self, threshold: u32) -> Vec<UserId> {
        assert!(threshold > 0, "threshold T must be at least 1");
        self.user_votes
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v >= threshold)
            .map(|(i, _)| UserId(i as u32))
            .collect()
    }

    /// Accepted merchants at the given threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    pub fn detected_merchants(&self, threshold: u32) -> Vec<MerchantId> {
        assert!(threshold > 0, "threshold T must be at least 1");
        self.merchant_votes
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v >= threshold)
            .map(|(i, _)| MerchantId(i as u32))
            .collect()
    }

    /// Largest user vote count (the useful upper end of a `T` sweep).
    pub fn max_user_votes(&self) -> u32 {
        self.user_votes.iter().copied().max().unwrap_or(0)
    }

    /// Number of users that would be detected at each threshold
    /// `T = 1..=max`: index `t-1` holds the count for threshold `t`.
    /// Computed in one pass via a reverse cumulative histogram.
    pub fn user_detection_curve(&self) -> Vec<usize> {
        let max = self.max_user_votes() as usize;
        if max == 0 {
            return Vec::new();
        }
        let mut hist = vec![0usize; max + 1];
        for &v in &self.user_votes {
            hist[v as usize] += 1;
        }
        // suffix[t] = #users with votes >= t.
        let mut out = vec![0usize; max];
        let mut acc = 0usize;
        for t in (1..=max).rev() {
            acc += hist[t];
            out[t - 1] = acc;
        }
        out
    }

    /// Vote counts as fraud scores in `[0, 1]` (votes / N) — lets the
    /// ensemble plug into score-based evaluation like the SVD baselines.
    pub fn user_scores(&self) -> Vec<f64> {
        let n = self.num_samples.max(1) as f64;
        self.user_votes.iter().map(|&v| v as f64 / n).collect()
    }

    /// The smallest threshold `T ≥ 1` whose detected-user count does not
    /// exceed `budget` — the paper's "control the scope of returned
    /// suspicious nodes" made operational: hand it a manual-review
    /// capacity, get the `T` to run at. Returns `None` if even the maximum
    /// threshold floods the budget.
    pub fn threshold_for_budget(&self, budget: usize) -> Option<u32> {
        let curve = self.user_detection_curve();
        // curve[t-1] = detected at threshold t, non-increasing in t.
        for (i, &count) in curve.iter().enumerate() {
            if count <= budget {
                return Some(i as u32 + 1);
            }
        }
        if curve.is_empty() {
            // No votes at all: T = 1 detects nothing, which fits any budget
            // — including `usize::MAX` (the gate that used to exclude it
            // made an unlimited budget the one budget that "overflowed").
            return Some(1);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally() -> VoteTally {
        let mut t = VoteTally::new(4, 3);
        t.add_sample([UserId(0), UserId(1)], [MerchantId(0)]);
        t.add_sample([UserId(0)], [MerchantId(0), MerchantId(2)]);
        t.add_sample([UserId(0), UserId(2)], []);
        t
    }

    #[test]
    fn votes_accumulate() {
        let t = tally();
        assert_eq!(t.user_votes, vec![3, 1, 1, 0]);
        assert_eq!(t.merchant_votes, vec![2, 0, 1]);
        assert_eq!(t.num_samples, 3);
    }

    #[test]
    fn threshold_filters_users() {
        let t = tally();
        assert_eq!(t.detected_users(1).len(), 3);
        assert_eq!(t.detected_users(2), vec![UserId(0)]);
        assert_eq!(t.detected_users(3), vec![UserId(0)]);
        assert!(t.detected_users(4).is_empty());
        assert_eq!(t.detected_merchants(2), vec![MerchantId(0)]);
    }

    #[test]
    fn detection_is_monotone_in_threshold() {
        let t = tally();
        let mut prev = usize::MAX;
        for thr in 1..=4 {
            let n = t.detected_users(thr).len();
            assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_rejected() {
        tally().detected_users(0);
    }

    #[test]
    fn detection_curve_matches_direct_counts() {
        let t = tally();
        let curve = t.user_detection_curve();
        assert_eq!(curve.len(), t.max_user_votes() as usize);
        for (i, &c) in curve.iter().enumerate() {
            assert_eq!(c, t.detected_users(i as u32 + 1).len());
        }
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = VoteTally::new(4, 3);
        a.add_sample([UserId(0), UserId(1)], [MerchantId(0)]);
        let mut b = VoteTally::new(4, 3);
        b.add_sample([UserId(0)], [MerchantId(0), MerchantId(2)]);
        b.add_sample([UserId(0), UserId(2)], []);
        a.merge(&b);
        assert_eq!(a, tally());
    }

    #[test]
    fn scores_are_normalized_votes() {
        let t = tally();
        let s = t.user_scores();
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s[3], 0.0);
    }

    #[test]
    fn threshold_for_budget_picks_smallest_fitting_t() {
        let t = tally(); // votes [3,1,1,0] → curve [3,1,1]
        assert_eq!(t.threshold_for_budget(10), Some(1));
        assert_eq!(t.threshold_for_budget(3), Some(1));
        assert_eq!(t.threshold_for_budget(2), Some(2));
        assert_eq!(t.threshold_for_budget(1), Some(2));
        assert_eq!(t.threshold_for_budget(0), None);
        // The returned threshold actually honours the budget.
        for budget in 0..5 {
            if let Some(thr) = t.threshold_for_budget(budget) {
                assert!(t.detected_users(thr).len() <= budget);
            }
        }
    }

    #[test]
    fn threshold_for_budget_on_empty_tally() {
        let t = VoteTally::new(3, 0);
        assert_eq!(t.threshold_for_budget(0), Some(1));
    }

    #[test]
    fn threshold_for_budget_unlimited_budget_on_empty_curve() {
        // Regression: the empty-curve branch was gated on
        // `budget < usize::MAX`, so exactly the unlimited budget returned
        // `None` while every smaller budget returned `Some(1)`.
        let t = VoteTally::new(3, 4);
        assert!(t.user_detection_curve().is_empty());
        assert_eq!(t.threshold_for_budget(usize::MAX), Some(1));
        assert_eq!(t.threshold_for_budget(usize::MAX - 1), Some(1));
    }

    #[test]
    fn empty_tally() {
        let t = VoteTally::new(2, 2);
        assert_eq!(t.max_user_votes(), 0);
        assert!(t.user_detection_curve().is_empty());
        assert!(t.detected_users(1).is_empty());
    }
}
