//! A detected dense block.

use ensemfdet_graph::{EdgeId, MerchantId, UserId};

/// One dense subgraph detected by a peel: the vertex subset `S_i` of the
/// problem definition, its density score, and the edges it contains (which
/// FDET removes before searching for the next block, Algorithm 1 line 11).
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// User-side members.
    pub users: Vec<UserId>,
    /// Merchant-side members.
    pub merchants: Vec<MerchantId>,
    /// Density score `φ` of the block at detection time.
    pub score: f64,
    /// Edge ids (into the peeled graph) with both endpoints in the block.
    pub edges: Vec<EdgeId>,
}

impl Block {
    /// Total node count `|S_i|`.
    pub fn num_nodes(&self) -> usize {
        self.users.len() + self.merchants.len()
    }

    /// `true` when the block contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.merchants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_sums_sides() {
        let b = Block {
            users: vec![UserId(0), UserId(1)],
            merchants: vec![MerchantId(0)],
            score: 1.5,
            edges: vec![0, 1],
        };
        assert_eq!(b.num_nodes(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_block() {
        let b = Block {
            users: vec![],
            merchants: vec![],
            score: 0.0,
            edges: vec![],
        };
        assert!(b.is_empty());
        assert_eq!(b.num_nodes(), 0);
    }
}
