//! Peeling engines: the naive reference path and the CSR hot path.
//!
//! Both engines run the same algorithm — Charikar-style greedy peeling
//! iterated into disjoint blocks ([`crate::fdet()`]) — and are guaranteed to
//! produce **bit-identical** results (same blocks, same scores, same edge
//! lists) on any graph:
//!
//! - [`Engine::Naive`] walks the parent [`BipartiteGraph`] through an
//!   alive-edge mask with an indexed decrease-key heap
//!   ([`crate::peel::peel_densest`]). Every FDET iteration scans the full
//!   edge array and allocates fresh working vectors.
//! - [`Engine::Csr`] rebuilds a flat [`CsrView`] of the *surviving*
//!   subgraph after each detected block (two counting sorts over alive
//!   edges, allocation-free after warm-up), peels it with a lazy-deletion
//!   min-heap ([`crate::heap::LazyMinHeap`] — stale entries skipped on pop,
//!   no position index, no re-heapify), and keeps every scratch buffer in a
//!   reusable [`FdetEngine`], so the `N` runs of an ensemble allocate once
//!   instead of once per peel.
//!
//! Why the outputs are identical and not merely close: keys only decrease
//! during a peel, so an element's minimum heap entry always carries its
//! current key, making lazy pops deliver the indexed heap's exact
//! `(key, id)` order; the view preserves the parent graph's node ids and
//! relative edge order, so every floating-point accumulation happens over
//! the same values in the same sequence. The equivalence is enforced by
//! `tests/tests/engine_equivalence.rs` and re-checked by the benchmark
//! suite before it times anything.

use crate::block::Block;
use crate::fdet::{FdetResult, Truncation};
use crate::heap::LazyMinHeap;
use crate::metric::DensityMetric;
use crate::peel::peel_densest;
use crate::truncate::truncation_point;
use ensemfdet_graph::{
    BipartiteGraph, CsrView, EdgeId, MerchantId, SampleMaps, SampleSpec, SpecResolver, UserId,
};
use serde::{Deserialize, Serialize};

/// Which peeling implementation FDET runs on.
///
/// The two engines return identical results; `Csr` is the default and
/// `Naive` exists as the reference for equivalence tests and A/B
/// benchmarking (`ensemfdet detect --engine naive`, `bench_suite`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Mask-based peeling over the parent graph with an indexed
    /// decrease-key heap (the pre-optimization reference path).
    Naive,
    /// Flat-CSR subgraph snapshots + lazy-deletion heap + reusable scratch.
    #[default]
    Csr,
}

impl Engine {
    /// Stable lowercase name (`csr` / `naive`), as accepted by
    /// [`Engine::from_str`](std::str::FromStr) and the CLI `--engine` flag.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Naive => "naive",
            Engine::Csr => "csr",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "csr" => Ok(Engine::Csr),
            "naive" => Ok(Engine::Naive),
            other => Err(format!("unknown engine `{other}` (csr|naive)")),
        }
    }
}

/// Reusable per-peel working memory for the CSR engine.
///
/// Sized on first use and grown on demand. The per-node arrays are *not*
/// wiped between peels: `stamp`/`epoch` mark which entries belong to the
/// current peel, so a peel of a small residual graph touches only its own
/// nodes instead of paying O(total nodes) memsets — the dominant cost of
/// late FDET iterations otherwise.
#[derive(Clone, Debug, Default)]
struct PeelScratch {
    /// Merchant degrees over alive edges.
    vdeg: Vec<f64>,
    /// Fixed column weights `cw(d_v)` for this peel.
    cw: Vec<f64>,
    /// Initial node priorities (kept for block-membership filtering).
    /// Valid only where `stamp == epoch`.
    priority: Vec<f64>,
    /// Current node keys (decreased as neighbors are removed). `-1.0` is
    /// the *removed* sentinel — live keys are non-negative, so one load
    /// answers both "is it alive?" and "what is its key?" in the hot loop.
    /// Valid only where `stamp == epoch`.
    key: Vec<f64>,
    /// Removal step per node (1-based; `u32::MAX` = survived / absent).
    /// Valid only where `stamp == epoch`.
    rank: Vec<u32>,
    /// Peel id that last initialized each node's `priority`/`key`/`rank`.
    stamp: Vec<u32>,
    /// Current peel id (increments every peel; never 0 after the first).
    epoch: u32,
    /// Nodes stamped this peel — exactly the endpoints of alive edges.
    active: Vec<u32>,
    /// The lazy-deletion heap.
    heap: LazyMinHeap,
}

/// A reusable FDET runner: owns the [`CsrView`] and the peel scratch so
/// repeated runs — the FDET iterations within one sample, and the `N`
/// samples of an ensemble — recycle their allocations.
///
/// ```
/// use ensemfdet::engine::{Engine, FdetEngine};
/// use ensemfdet::fdet::Truncation;
/// use ensemfdet::metric::MetricKind;
/// use ensemfdet_graph::{GraphBuilder, UserId, MerchantId};
///
/// let mut b = GraphBuilder::new();
/// for u in 0..6 {
///     for v in 0..3 {
///         b.add_edge(UserId(u), MerchantId(v));
///     }
/// }
/// for u in 10..30 {
///     b.add_edge(UserId(u), MerchantId(10 + u % 7));
/// }
/// let g = b.build();
///
/// let mut engine = FdetEngine::new();
/// let fast = engine.run(&g, &MetricKind::default(), Truncation::default(), Engine::Csr);
/// let slow = engine.run(&g, &MetricKind::default(), Truncation::default(), Engine::Naive);
/// assert_eq!(fast.blocks, slow.blocks); // engines are interchangeable
/// assert_eq!(fast.scores, slow.scores);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FdetEngine {
    view: CsrView,
    scratch: PeelScratch,
    edge_alive: Vec<bool>,
    /// Block-membership bitmap (users then merchants) for edge retirement.
    in_block: Vec<bool>,
    /// Epoch-stamped intern scratch for [`FdetEngine::run_spec`].
    resolver: SpecResolver,
}

thread_local! {
    /// Per-thread FDET engine backing [`FdetEngine::run_cached`]: the CSR
    /// view and peel scratch are reused across every run on this thread,
    /// so repeated detections (FDET iterations, ensemble samples, service
    /// requests) allocate their peel buffers once per thread, not once per
    /// call.
    static CACHED_ENGINE: std::cell::RefCell<FdetEngine> =
        std::cell::RefCell::new(FdetEngine::new());
}

impl FdetEngine {
    /// A fresh engine with empty (unallocated) scratch.
    pub fn new() -> Self {
        FdetEngine::default()
    }

    /// Runs FDET through this thread's cached engine, recycling the view
    /// and scratch allocations across calls. Results are identical to
    /// [`run`](Self::run) on a fresh engine — the scratch is epoch-reset —
    /// this only saves the per-call allocations.
    pub fn run_cached(
        g: &BipartiteGraph,
        metric: &dyn DensityMetric,
        truncation: Truncation,
        engine: Engine,
    ) -> FdetResult {
        CACHED_ENGINE.with(|e| e.borrow_mut().run(g, metric, truncation, engine))
    }

    /// Runs FDET on a sample described by `spec` against `parent`,
    /// through this thread's cached engine. The zero-copy twin of
    /// materializing the spec and calling [`run_cached`](Self::run_cached)
    /// with [`Engine::Csr`] — results are bit-identical (see
    /// `tests/tests/spec_equivalence.rs`) but no intermediate
    /// [`ensemfdet_graph::SampledGraph`] is built.
    ///
    /// Returns the FDET result (in the sample's local id space — map back
    /// through `maps`) and the sample's edge count.
    pub fn run_spec_cached(
        parent: &BipartiteGraph,
        spec: &SampleSpec,
        metric: &dyn DensityMetric,
        truncation: Truncation,
        maps: &mut SampleMaps,
    ) -> (FdetResult, usize) {
        CACHED_ENGINE.with(|e| e.borrow_mut().run_spec(parent, spec, metric, truncation, maps))
    }

    /// Runs FDET directly on `(parent, spec)` with the CSR engine: the
    /// view is compacted straight from the spec
    /// ([`CsrView::rebuild_from_spec`]), `maps` receives the local↔parent
    /// id maps, and all per-sample state lives in reusable scratch.
    ///
    /// Mirrors [`run`](Self::run)'s CSR loop exactly — first iteration
    /// builds the view, later iterations [`CsrView::refilter`] it — with
    /// edge ids in the sample's local space, which is precisely how the
    /// materialized path numbers them.
    pub fn run_spec(
        &mut self,
        parent: &BipartiteGraph,
        spec: &SampleSpec,
        metric: &dyn DensityMetric,
        truncation: Truncation,
        maps: &mut SampleMaps,
    ) -> (FdetResult, usize) {
        let cap = match truncation {
            Truncation::Auto { k_max, .. } => k_max,
            Truncation::FixedK(k) => k,
            Truncation::KeepAll { k_max } => k_max,
        };

        self.view
            .rebuild_from_spec(parent, spec, &mut self.resolver, maps);
        let sample_edges = self.view.num_edges();
        self.edge_alive.clear();
        self.edge_alive.resize(sample_edges, true);
        let nu = self.view.num_users();
        let nv = self.view.num_merchants();

        let mut blocks: Vec<Block> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();

        while blocks.len() < cap {
            if !blocks.is_empty() {
                self.view.refilter(&self.edge_alive);
            }
            let Some(block) = peel_csr(&self.view, metric, &mut self.scratch) else {
                break;
            };
            // Same disjointness rule as `run`: retire every edge incident
            // to the block's nodes (see the comment there).
            self.in_block.clear();
            self.in_block.resize(nu + nv, false);
            for &u in &block.users {
                self.in_block[u.index()] = true;
            }
            for &v in &block.merchants {
                self.in_block[nu + v.index()] = true;
            }
            let (e_id, e_u, e_v) = (
                self.view.edge_ids(),
                self.view.edge_users(),
                self.view.edge_merchants(),
            );
            for ((&e, &u), &v) in e_id.iter().zip(e_u).zip(e_v) {
                if self.in_block[u as usize] || self.in_block[nu + v as usize] {
                    self.edge_alive[e as usize] = false;
                }
            }
            scores.push(block.score);
            if block.edges.is_empty() {
                blocks.push(block);
                break;
            }
            blocks.push(block);

            if let Truncation::Auto { patience, .. } = truncation {
                let k_hat = truncation_point(&scores);
                if scores.len() >= k_hat + patience {
                    break;
                }
            }
        }

        let k_hat = match truncation {
            Truncation::Auto { .. } => truncation_point(&scores).min(blocks.len()),
            Truncation::FixedK(k) => k.min(blocks.len()),
            Truncation::KeepAll { .. } => blocks.len(),
        };

        (
            FdetResult {
                blocks,
                scores,
                k_hat,
            },
            sample_edges,
        )
    }

    /// Runs FDET on `g` with the chosen engine. See [`crate::fdet::fdet`]
    /// for the algorithm; this entry point only adds engine selection and
    /// scratch reuse.
    pub fn run(
        &mut self,
        g: &BipartiteGraph,
        metric: &dyn DensityMetric,
        truncation: Truncation,
        engine: Engine,
    ) -> FdetResult {
        let cap = match truncation {
            Truncation::Auto { k_max, .. } => k_max,
            Truncation::FixedK(k) => k,
            Truncation::KeepAll { k_max } => k_max,
        };

        self.edge_alive.clear();
        self.edge_alive.resize(g.num_edges(), true);
        let mut blocks: Vec<Block> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();

        while blocks.len() < cap {
            let block = match engine {
                Engine::Naive => peel_densest(g, metric, &self.edge_alive),
                Engine::Csr => {
                    if blocks.is_empty() {
                        // First iteration: every edge is alive.
                        self.view.rebuild(g, None);
                    } else {
                        // Later iterations: shrink the previous snapshot
                        // instead of re-scanning the parent's dead edges.
                        self.view.refilter(&self.edge_alive);
                    }
                    peel_csr(&self.view, metric, &mut self.scratch)
                }
            };
            let Some(block) = block else {
                break; // current graph has no edges left
            };
            // Retire every edge *incident* to the block's nodes, not only
            // the internal ones: Algorithm 1 removes the induced edges
            // `E_i`, but the problem definition (Eq. 1) requires the
            // detected vertex sets to be disjoint, which plain edge removal
            // does not guarantee (a block node with an outside edge could
            // be re-detected). Retiring the nodes enforces `S_l ∩ S_m = ∅`.
            match engine {
                Engine::Naive => {
                    for &u in &block.users {
                        for e in g.user_edge_ids(u) {
                            self.edge_alive[e] = false;
                        }
                    }
                    for &v in &block.merchants {
                        for e in g.merchant_edge_ids(v) {
                            self.edge_alive[e] = false;
                        }
                    }
                }
                Engine::Csr => {
                    // One pass over the view's alive edges: kill every edge
                    // with an endpoint in the block (dead edges stay dead,
                    // so the view's canonical arrays are sufficient).
                    let nu = g.num_users();
                    self.in_block.clear();
                    self.in_block.resize(nu + g.num_merchants(), false);
                    for &u in &block.users {
                        self.in_block[u.index()] = true;
                    }
                    for &v in &block.merchants {
                        self.in_block[nu + v.index()] = true;
                    }
                    let (e_id, e_u, e_v) = (
                        self.view.edge_ids(),
                        self.view.edge_users(),
                        self.view.edge_merchants(),
                    );
                    for ((&e, &u), &v) in e_id.iter().zip(e_u).zip(e_v) {
                        if self.in_block[u as usize] || self.in_block[nu + v as usize] {
                            self.edge_alive[e as usize] = false;
                        }
                    }
                }
            }
            scores.push(block.score);
            // Degenerate safety: a block with no internal edges cannot
            // shrink the graph and would loop forever.
            if block.edges.is_empty() {
                blocks.push(block);
                break;
            }
            blocks.push(block);

            if let Truncation::Auto { patience, .. } = truncation {
                // Early stop once the provisional elbow has been stable for
                // `patience` additional blocks.
                let k_hat = truncation_point(&scores);
                if scores.len() >= k_hat + patience {
                    break;
                }
            }
        }

        let k_hat = match truncation {
            Truncation::Auto { .. } => truncation_point(&scores).min(blocks.len()),
            Truncation::FixedK(k) => k.min(blocks.len()),
            Truncation::KeepAll { .. } => blocks.len(),
        };

        FdetResult {
            blocks,
            scores,
            k_hat,
        }
    }
}

/// Peels the densest block out of `view` (which holds exactly the alive
/// edges) with the lazy-deletion heap. Mirrors
/// [`crate::peel::peel_densest`] operation for operation — see the module
/// docs for the equivalence argument.
/// Requests a read of `slice[i]` into cache without touching it. The peel
/// loop's key lookups are latency-bound random accesses whose addresses are
/// known well before their values are needed; warming them early overlaps
/// the miss with useful work. No-op off x86-64.
#[inline(always)]
fn prefetch_read<T>(slice: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if i < slice.len() {
        // SAFETY: index is in bounds and prefetching has no side effects
        // beyond the cache.
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(i).cast::<i8>(),
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, i);
}

fn peel_csr(view: &CsrView, metric: &dyn DensityMetric, s: &mut PeelScratch) -> Option<Block> {
    if view.num_edges() == 0 {
        return None;
    }
    let nu = view.num_users();
    let nv = view.num_merchants();
    let n = nu + nv;

    // Merchant degrees over alive edges and the fixed column weights.
    s.vdeg.clear();
    s.vdeg.resize(nv, 0.0);
    let (e_u, e_v, e_w) = (view.edge_users(), view.edge_merchants(), view.edge_weights());
    for (&v, &w) in e_v.iter().zip(e_w) {
        s.vdeg[v as usize] += w;
    }
    s.cw.clear();
    s.cw.extend(s.vdeg.iter().map(|&d| metric.column_weight(d)));

    // Advance the scratch epoch; node state from earlier peels becomes
    // invalid without being wiped. (Grow-only resizes keep old stamps,
    // which can never equal a fresh epoch.)
    if s.stamp.len() < n {
        s.stamp.resize(n, 0);
        s.priority.resize(n, 0.0);
        s.key.resize(n, -1.0);
        s.rank.resize(n, u32::MAX);
    }
    if s.epoch == u32::MAX {
        // Epoch wrap: old stamps could collide with a restarted counter.
        s.stamp.iter_mut().for_each(|t| *t = 0);
        s.epoch = 0;
    }
    s.epoch += 1;
    let epoch = s.epoch;
    s.active.clear();

    // Node priorities: summed suspiciousness of alive incident edges.
    // Node ids: users are 0..nu, merchants are nu..nu+nv. First touch
    // stamps the node and resets its state; only endpoints of alive edges
    // are ever visited, so a peel of a small residual graph stays cheap.
    let mut f = 0.0f64;
    for ((&u, &v), &w) in e_u.iter().zip(e_v).zip(e_w) {
        let sv = w * s.cw[v as usize];
        for node in [u as usize, nu + v as usize] {
            if s.stamp[node] != epoch {
                s.stamp[node] = epoch;
                s.priority[node] = 0.0;
                s.rank[node] = u32::MAX;
                s.active.push(node as u32);
            }
            s.priority[node] += sv;
        }
        f += sv;
    }

    // Heap over participating (positive-priority) nodes; everyone else
    // holds the removed sentinel so relaxations skip them (the
    // indexed-heap path's `contains` check).
    let mut participating = 0usize;
    for &node in &s.active {
        let node = node as usize;
        let p = s.priority[node];
        if p > 0.0 {
            participating += 1;
            s.key[node] = p;
        } else {
            s.key[node] = -1.0;
        }
    }
    if participating == 0 {
        return None;
    }
    // Entries carry distinct node ids, so the packed order is total and the
    // pop sequence is independent of the fill order.
    s.heap.fill(s.active.iter().filter_map(|&node| {
        let k = s.key[node as usize];
        (k >= 0.0).then_some((node, k))
    }));
    // One decrease-key entry per alive edge can follow; reserve once so the
    // loop never reallocates.
    s.heap.reserve(view.num_edges());

    // Peel, tracking the best prefix.
    let mut size = participating;
    let mut best_phi = f / size as f64; // H_n: the whole current graph
    let mut best_step = 0u32;
    let mut step = 0u32;

    while let Some((p, node)) = s.heap.pop() {
        // The next pop's stale check reads `key[root element]` — a random
        // access. Its address is known now, long before the relax work
        // below finishes, so start the load early.
        if let Some(next) = s.heap.peek_element() {
            prefetch_read(&s.key, next as usize);
        }
        let node = node as usize;
        // Stale check: a popped key is always non-negative, so the removed
        // sentinel (`-1.0`) and an outdated key both fail one comparison.
        if p != s.key[node] {
            continue;
        }
        s.key[node] = -1.0;
        step += 1;
        s.rank[node] = step;
        f -= p;
        size -= 1;
        if size == 0 {
            // Every node is removed; anything left in the heap is stale.
            break;
        }
        if s.heap.len() > 2 * size + 64 {
            // More stale entries than live ones: prune and re-heapify so
            // sift paths track the shrinking live set (see
            // `LazyMinHeap::retain_current` for why this is order-neutral).
            s.heap.retain_current(&s.key);
        }

        // Relax the still-alive opposite endpoints: an incident edge is
        // alive iff its other endpoint is (within one peel, edges die
        // exactly when an endpoint is removed).
        // Each relax reads `key[opposite endpoint]` — independent random
        // accesses at addresses the neighbor list spells out in advance, so
        // issue each load a few iterations before its value is consumed.
        const RELAX_AHEAD: usize = 8;
        if node < nu {
            let nb = view.user_neighbors(UserId(node as u32));
            for (i, &(v, w)) in nb.pairs.iter().enumerate() {
                if let Some(&(nv, _)) = nb.pairs.get(i + RELAX_AHEAD) {
                    prefetch_read(&s.key, nu + nv as usize);
                }
                let other = nu + v as usize;
                let k = s.key[other];
                if k >= 0.0 {
                    let nk = (k - w * s.cw[v as usize]).max(0.0);
                    s.key[other] = nk;
                    s.heap.push(other as u32, nk);
                }
            }
        } else {
            let v = node - nu;
            let nb = view.merchant_neighbors(MerchantId(v as u32));
            let cwv = s.cw[v];
            for (i, &(u, w)) in nb.pairs.iter().enumerate() {
                if let Some(&(nun, _)) = nb.pairs.get(i + RELAX_AHEAD) {
                    prefetch_read(&s.key, nun as usize);
                }
                let other = u as usize;
                let k = s.key[other];
                if k >= 0.0 {
                    let nk = (k - w * cwv).max(0.0);
                    s.key[other] = nk;
                    s.heap.push(other as u32, nk);
                }
            }
        }

        if size > 0 {
            // Guard against tiny negative drift from floating cancellation.
            let phi = f.max(0.0) / size as f64;
            if phi > best_phi {
                best_phi = phi;
                best_step = step;
            }
        }
    }

    // The best subgraph = nodes removed strictly after `best_step`.
    // (Only valid for stamped nodes — exactly the ones reachable below.)
    let in_block = |node: usize| {
        let rank = s.rank[node];
        rank == u32::MAX || rank > best_step
    };
    // Nodes that never participated (isolated, or zero priority under the
    // metric) have rank MAX but priority 0 and were never pushed; the
    // priority filter excludes them. Users come from a dedup scan of the
    // canonical edge array — grouped ascending by construction — and
    // merchants from a pass over the (much smaller) merchant side, so both
    // lists come out in ascending id order without an O(total nodes) scan.
    let mut users = Vec::new();
    let mut merchants = Vec::new();
    if e_u.is_sorted() {
        let mut prev = u32::MAX;
        for &u in e_u {
            if u != prev {
                prev = u;
                if in_block(u as usize) && s.priority[u as usize] > 0.0 {
                    users.push(UserId(u));
                }
            }
        }
    } else {
        // Unsorted canonical order (not produced by `GraphBuilder`, but
        // cheap to tolerate): fall back to a user-side degree scan.
        for u in 0..nu {
            if view.user_degree(UserId(u as u32)) > 0
                && in_block(u)
                && s.priority[u] > 0.0
            {
                users.push(UserId(u as u32));
            }
        }
    }
    for v in 0..nv {
        let node = nu + v;
        if view.merchant_degree(MerchantId(v as u32)) > 0
            && in_block(node)
            && s.priority[node] > 0.0
        {
            merchants.push(MerchantId(v as u32));
        }
    }

    // Edges fully inside the block, in ascending global edge id.
    let e_id = view.edge_ids();
    let mut edges: Vec<EdgeId> = Vec::new();
    for i in 0..e_id.len() {
        if in_block(e_u[i] as usize) && in_block(nu + e_v[i] as usize) {
            edges.push(e_id[i] as EdgeId);
        }
    }

    Some(Block {
        users,
        merchants,
        score: best_phi,
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdet::fdet_with_engine;
    use crate::metric::{AverageDegreeMetric, LogWeightedMetric, MetricKind};
    use crate::peel::peel_densest_full;
    use ensemfdet_graph::GraphBuilder;

    fn planted_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in 0..3u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 5..25u32 {
            b.add_edge(UserId(u), MerchantId(3 + u % 7));
        }
        b.build()
    }

    fn peel_csr_full(g: &BipartiteGraph, metric: &dyn DensityMetric) -> Option<Block> {
        let view = CsrView::from_graph(g);
        peel_csr(&view, metric, &mut PeelScratch::default())
    }

    #[test]
    fn csr_peel_matches_naive_on_planted_graph() {
        let g = planted_graph();
        for metric in [
            &AverageDegreeMetric as &dyn DensityMetric,
            &LogWeightedMetric::paper_default(),
        ] {
            let naive = peel_densest_full(&g, metric).unwrap();
            let csr = peel_csr_full(&g, metric).unwrap();
            assert_eq!(naive, csr);
        }
    }

    #[test]
    fn csr_peel_matches_naive_on_weighted_graph() {
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        for u in 0..3u32 {
            for v in 0..2u32 {
                edges.push((u, v));
                weights.push(3.0);
                edges.push((u + 3, v + 2));
                weights.push(1.0);
            }
        }
        let g = BipartiteGraph::from_weighted_edges(6, 4, edges, weights).unwrap();
        let naive = peel_densest_full(&g, &AverageDegreeMetric).unwrap();
        let csr = peel_csr_full(&g, &AverageDegreeMetric).unwrap();
        assert_eq!(naive, csr);
    }

    #[test]
    fn csr_peel_empty_cases() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]).unwrap();
        assert!(peel_csr_full(&g, &AverageDegreeMetric).is_none());
        let g = planted_graph();
        let view = CsrView::from_graph_filtered(&g, &vec![false; g.num_edges()]);
        assert!(peel_csr(&view, &AverageDegreeMetric, &mut PeelScratch::default()).is_none());
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // Back-to-back peels through one scratch must equal fresh peels.
        let g1 = planted_graph();
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        let g2 = b.build();

        let mut scratch = PeelScratch::default();
        let mut view = CsrView::new();
        for g in [&g1, &g2, &g1] {
            view.rebuild(g, None);
            let reused = peel_csr(&view, &AverageDegreeMetric, &mut scratch);
            let fresh = peel_csr_full(g, &AverageDegreeMetric);
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn fdet_engines_agree_end_to_end() {
        let g = planted_graph();
        let naive = fdet_with_engine(
            &g,
            &MetricKind::default(),
            Truncation::KeepAll { k_max: 10 },
            Engine::Naive,
        );
        let csr = fdet_with_engine(
            &g,
            &MetricKind::default(),
            Truncation::KeepAll { k_max: 10 },
            Engine::Csr,
        );
        assert_eq!(naive.blocks, csr.blocks);
        assert_eq!(naive.scores, csr.scores);
        assert_eq!(naive.k_hat, csr.k_hat);
    }

    #[test]
    fn run_spec_matches_materialized_run() {
        use ensemfdet_graph::SpecKind;
        let g = planted_graph();
        let mut engine = FdetEngine::new();
        let mut maps = SampleMaps::default();
        let mut spec = SampleSpec::new();
        spec.reset(SpecKind::EdgeSubset);
        spec.edges.extend((0..g.num_edges()).step_by(2));
        for truncation in [
            Truncation::default(),
            Truncation::KeepAll { k_max: 10 },
            Truncation::FixedK(2),
        ] {
            let (spec_res, sample_edges) =
                engine.run_spec(&g, &spec, &MetricKind::default(), truncation, &mut maps);
            let sampled = spec.materialize(&g);
            let mat = engine.run(&sampled.graph, &MetricKind::default(), truncation, Engine::Csr);
            assert_eq!(spec_res.blocks, mat.blocks);
            assert_eq!(spec_res.scores, mat.scores);
            assert_eq!(spec_res.k_hat, mat.k_hat);
            assert_eq!(sample_edges, sampled.graph.num_edges());
            assert_eq!(maps.orig_users, sampled.orig_users);
            assert_eq!(maps.orig_merchants, sampled.orig_merchants);
        }
    }

    #[test]
    fn engine_parsing_round_trips() {
        assert_eq!("csr".parse::<Engine>().unwrap(), Engine::Csr);
        assert_eq!("naive".parse::<Engine>().unwrap(), Engine::Naive);
        assert_eq!(Engine::Csr.to_string(), "csr");
        assert!("fast".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Csr);
    }
}
