//! Peeling engines: the naive reference path and the CSR hot paths.
//!
//! All engines run the same algorithm — Charikar-style greedy peeling
//! iterated into disjoint blocks ([`crate::fdet()`]) — under two explicit
//! equivalence contracts enforced by `tests/tests/engine_equivalence.rs`
//! and re-checked by the benchmark suite before it times anything:
//!
//! - [`Engine::Naive`] walks the parent [`BipartiteGraph`] through an
//!   alive-edge mask with an indexed decrease-key heap
//!   ([`crate::peel::peel_densest`]). Every FDET iteration scans the full
//!   edge array and allocates fresh working vectors.
//! - [`Engine::Csr`] rebuilds a flat [`CsrView`] of the *surviving*
//!   subgraph after each detected block (two counting sorts over alive
//!   edges, allocation-free after warm-up), peels it with a lazy-deletion
//!   min-heap ([`crate::heap::LazyMinHeap`] — stale entries skipped on pop,
//!   no position index, no re-heapify), and keeps every scratch buffer in a
//!   reusable [`FdetEngine`], so the `N` runs of an ensemble allocate once
//!   instead of once per peel.
//! - [`Engine::Bucket`] drives the *same* sequential loop with a monotone
//!   bucket queue ([`crate::bucket::BucketQueue`]) instead of the global
//!   heap: entries route to exponent-indexed buckets in O(1), so a full
//!   peel costs O(E) instead of O(E log V) (Ban & Duan, arXiv:1810.06809).
//! - [`Engine::BucketBatch`] removes *all* same-side nodes tied at the
//!   current minimum key per round (Dupin, arXiv:2504.09311) and relaxes
//!   their combined adjacency with `std::thread::scope` workers when the
//!   round is large enough to pay for them.
//!
//! **Bit-identical contract** (`Naive` ≡ `Csr` ≡ `Bucket`): keys only
//! decrease during a peel, so an element's minimum queue entry always
//! carries its current key, making lazy pops deliver the indexed heap's
//! exact `(key, id)` order; the bucket index is monotone in the key and
//! the bucket queue's frontier heap always holds the whole low range, so
//! the bucket queue pops the very same sequence. The view preserves the parent graph's node
//! ids and relative edge order, so every floating-point accumulation
//! happens over the same values in the same sequence — same blocks, same
//! scores, same edge lists, bit for bit.
//!
//! **Score-equality contract** (`BucketBatch` vs the rest): within one
//! round all removed nodes sit on the *same side* of the bipartite graph,
//! so they share no edges, their keys cannot change mid-round, and the
//! prefix objective φ is monotone across any ordering of the round — the
//! batched trajectory is exactly a sequential peel under a different
//! tie-break schedule. It can legitimately diverge from the `(key, id)`
//! order when an *opposite-side* key decays to the round's key mid-round
//! (sequential would interleave it; the batch finishes its side first).
//! Per single peel, the best-prefix *score* therefore matches the
//! sequential engines within 1e-9 relative tolerance, but when near-equal
//! prefixes have different memberships the peeled block — and hence the
//! residual graph handed to the next FDET iteration — can differ. Across a
//! full FDET run the gate is: leading retained blocks score-equal within
//! 1e-9 (same `k_hat` under `Truncation::Auto`); trailing noise blocks
//! past the truncating point may diverge after such a tie-split. Results
//! are deterministic for a given graph — worker count never affects them,
//! because neighbor updates are applied in a canonical (chunk, emission)
//! order that is independent of scheduling.

use crate::block::Block;
use crate::bucket::BucketQueue;
use crate::fdet::{FdetResult, Truncation};
use crate::heap::LazyMinHeap;
use crate::metric::DensityMetric;
use crate::peel::peel_densest;
use crate::truncate::truncation_point;
use ensemfdet_graph::{
    BipartiteGraph, CsrView, EdgeId, MerchantId, SampleMaps, SampleSpec, SpecResolver, UserId,
};
use serde::{Deserialize, Serialize};

/// Which peeling implementation FDET runs on.
///
/// `Csr`, `Bucket`, and `Naive` return bit-identical results; `BucketBatch`
/// matches them up to tie-break order (see the module docs for both
/// contracts). `Csr` is the default; `Naive` exists as the reference for
/// equivalence tests and A/B benchmarking (`ensemfdet detect --engine
/// naive`, `bench_suite`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Mask-based peeling over the parent graph with an indexed
    /// decrease-key heap (the pre-optimization reference path).
    Naive,
    /// Flat-CSR subgraph snapshots + lazy-deletion heap + reusable scratch.
    #[default]
    Csr,
    /// The CSR loop driven by a monotone bucket queue: O(E) per peel,
    /// bit-identical to `Csr`.
    Bucket,
    /// Bucket queue + whole-tie-round removal with scoped-thread neighbor
    /// relaxation on large rounds; score-equal to `Csr` up to tie-breaks.
    BucketBatch,
}

impl Engine {
    /// Stable lowercase name (`csr` / `bucket` / `bucket-batch` / `naive`),
    /// as accepted by [`Engine::from_str`](std::str::FromStr) and the CLI
    /// `--engine` flag.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Naive => "naive",
            Engine::Csr => "csr",
            Engine::Bucket => "bucket",
            Engine::BucketBatch => "bucket-batch",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "csr" => Ok(Engine::Csr),
            "bucket" => Ok(Engine::Bucket),
            "bucket-batch" => Ok(Engine::BucketBatch),
            "naive" => Ok(Engine::Naive),
            other => Err(format!(
                "unknown engine `{other}` (csr|bucket|bucket-batch|naive)"
            )),
        }
    }
}

/// Per-node working memory shared by every view engine.
///
/// Sized on first use and grown on demand. The per-node arrays are *not*
/// wiped between peels: `stamp`/`epoch` mark which entries belong to the
/// current peel, so a peel of a small residual graph touches only its own
/// nodes instead of paying O(total nodes) memsets — the dominant cost of
/// late FDET iterations otherwise.
#[derive(Clone, Debug, Default)]
struct NodeScratch {
    /// Merchant degrees over alive edges.
    vdeg: Vec<f64>,
    /// Fixed column weights `cw(d_v)` for this peel.
    cw: Vec<f64>,
    /// Initial node priorities (kept for block-membership filtering).
    /// Valid only where `stamp == epoch`.
    priority: Vec<f64>,
    /// Current node keys (decreased as neighbors are removed). `-1.0` is
    /// the *removed* sentinel — live keys are non-negative, so one load
    /// answers both "is it alive?" and "what is its key?" in the hot loop.
    /// Valid only where `stamp == epoch`.
    key: Vec<f64>,
    /// Removal step per node (1-based; `u32::MAX` = survived / absent).
    /// Valid only where `stamp == epoch`.
    rank: Vec<u32>,
    /// Per-pop relax staging: `(neighbor, new_key)` pairs collected before
    /// they are handed to the queue in one run, so bucket routing can
    /// prefetch its headers (see [`BucketQueue::push_all`]).
    relax: Vec<(u32, f64)>,
    /// Peel id that last initialized each node's `priority`/`key`/`rank`.
    stamp: Vec<u32>,
    /// Current peel id (increments every peel; never 0 after the first).
    epoch: u32,
    /// Nodes stamped this peel — exactly the endpoints of alive edges.
    active: Vec<u32>,
}

impl NodeScratch {
    /// Computes column weights, initial priorities, and keys for `view`,
    /// stamping exactly the endpoints of alive edges. Returns the total
    /// suspiciousness `f` and the participating (positive-priority) node
    /// count, or `None` when nothing participates.
    fn begin(&mut self, view: &CsrView, metric: &dyn DensityMetric) -> Option<(f64, usize)> {
        if view.num_edges() == 0 {
            return None;
        }
        let nu = view.num_users();
        let nv = view.num_merchants();
        let n = nu + nv;

        // Merchant degrees over alive edges and the fixed column weights.
        self.vdeg.clear();
        self.vdeg.resize(nv, 0.0);
        let (e_u, e_v, e_w) = (view.edge_users(), view.edge_merchants(), view.edge_weights());
        for (&v, &w) in e_v.iter().zip(e_w) {
            self.vdeg[v as usize] += w;
        }
        self.cw.clear();
        self.cw.extend(self.vdeg.iter().map(|&d| metric.column_weight(d)));

        // Advance the scratch epoch; node state from earlier peels becomes
        // invalid without being wiped. (Grow-only resizes keep old stamps,
        // which can never equal a fresh epoch.)
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.priority.resize(n, 0.0);
            self.key.resize(n, -1.0);
            self.rank.resize(n, u32::MAX);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: old stamps could collide with a restarted counter.
            self.stamp.iter_mut().for_each(|t| *t = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.active.clear();

        // Node priorities: summed suspiciousness of alive incident edges.
        // Node ids: users are 0..nu, merchants are nu..nu+nv. First touch
        // stamps the node and resets its state; only endpoints of alive
        // edges are ever visited, so a peel of a small residual graph stays
        // cheap.
        let mut f = 0.0f64;
        for ((&u, &v), &w) in e_u.iter().zip(e_v).zip(e_w) {
            let sv = w * self.cw[v as usize];
            for node in [u as usize, nu + v as usize] {
                if self.stamp[node] != epoch {
                    self.stamp[node] = epoch;
                    self.priority[node] = 0.0;
                    self.rank[node] = u32::MAX;
                    self.active.push(node as u32);
                }
                self.priority[node] += sv;
            }
            f += sv;
        }

        // Keys for participating (positive-priority) nodes; everyone else
        // holds the removed sentinel so relaxations skip them (the
        // indexed-heap path's `contains` check).
        let mut participating = 0usize;
        for &node in &self.active {
            let node = node as usize;
            let p = self.priority[node];
            if p > 0.0 {
                participating += 1;
                self.key[node] = p;
            } else {
                self.key[node] = -1.0;
            }
        }
        if participating == 0 {
            return None;
        }
        Some((f, participating))
    }
}

/// Reusable per-peel working memory for the view engines: the per-node
/// arrays plus one queue per engine flavor and the batch-round buffers,
/// all recycled across peels.
#[derive(Clone, Debug, Default)]
struct PeelScratch {
    nodes: NodeScratch,
    /// The lazy-deletion heap (`Engine::Csr`).
    heap: LazyMinHeap,
    /// The monotone bucket queue (`Engine::Bucket` / `Engine::BucketBatch`).
    bucket: BucketQueue,
    /// Round buffers for `Engine::BucketBatch`.
    batch: BatchScratch,
}

/// A reusable FDET runner: owns the [`CsrView`] and the peel scratch so
/// repeated runs — the FDET iterations within one sample, and the `N`
/// samples of an ensemble — recycle their allocations.
///
/// ```
/// use ensemfdet::engine::{Engine, FdetEngine};
/// use ensemfdet::fdet::Truncation;
/// use ensemfdet::metric::MetricKind;
/// use ensemfdet_graph::{GraphBuilder, UserId, MerchantId};
///
/// let mut b = GraphBuilder::new();
/// for u in 0..6 {
///     for v in 0..3 {
///         b.add_edge(UserId(u), MerchantId(v));
///     }
/// }
/// for u in 10..30 {
///     b.add_edge(UserId(u), MerchantId(10 + u % 7));
/// }
/// let g = b.build();
///
/// let mut engine = FdetEngine::new();
/// let fast = engine.run(&g, &MetricKind::default(), Truncation::default(), Engine::Csr);
/// let slow = engine.run(&g, &MetricKind::default(), Truncation::default(), Engine::Naive);
/// let lin = engine.run(&g, &MetricKind::default(), Truncation::default(), Engine::Bucket);
/// assert_eq!(fast.blocks, slow.blocks); // engines are interchangeable
/// assert_eq!(fast.scores, slow.scores);
/// assert_eq!(fast.blocks, lin.blocks); // bucket engine included
/// ```
#[derive(Clone, Debug, Default)]
pub struct FdetEngine {
    view: CsrView,
    scratch: PeelScratch,
    edge_alive: Vec<bool>,
    /// Block-membership bitmap (users then merchants) for edge retirement.
    in_block: Vec<bool>,
    /// Epoch-stamped intern scratch for [`FdetEngine::run_spec`].
    resolver: SpecResolver,
    /// Threads for the first-iteration full-graph view build
    /// ([`CsrView::rebuild_sharded`]); `0`/`1` = sequential. Never
    /// affects results — the sharded build is bit-identical — so it
    /// lives outside every equality/config surface. Defaults to
    /// sequential: ensemble samples are small and already run on a pool;
    /// direct full-parent peels (benches, full-ratio runs) opt in via
    /// [`set_build_workers`](Self::set_build_workers).
    build_workers: usize,
}

thread_local! {
    /// Per-thread FDET engine backing [`FdetEngine::run_cached`]: the CSR
    /// view and peel scratch are reused across every run on this thread,
    /// so repeated detections (FDET iterations, ensemble samples, service
    /// requests) allocate their peel buffers once per thread, not once per
    /// call.
    static CACHED_ENGINE: std::cell::RefCell<FdetEngine> =
        std::cell::RefCell::new(FdetEngine::new());
}

impl FdetEngine {
    /// A fresh engine with empty (unallocated) scratch.
    pub fn new() -> Self {
        FdetEngine::default()
    }

    /// Sets the thread count for the first-iteration full-graph view
    /// build (see the `build_workers` field). A pure throughput knob:
    /// any value peels bit-identically.
    pub fn set_build_workers(&mut self, workers: usize) {
        self.build_workers = workers;
    }

    /// Runs FDET through this thread's cached engine, recycling the view
    /// and scratch allocations across calls. Results are identical to
    /// [`run`](Self::run) on a fresh engine — the scratch is epoch-reset —
    /// this only saves the per-call allocations.
    pub fn run_cached(
        g: &BipartiteGraph,
        metric: &dyn DensityMetric,
        truncation: Truncation,
        engine: Engine,
    ) -> FdetResult {
        CACHED_ENGINE.with(|e| e.borrow_mut().run(g, metric, truncation, engine))
    }

    /// Runs FDET on a sample described by `spec` against `parent`,
    /// through this thread's cached engine. The zero-copy twin of
    /// materializing the spec and calling [`run_cached`](Self::run_cached)
    /// with the same view engine — results are bit-identical (see
    /// `tests/tests/spec_equivalence.rs`) but no intermediate
    /// [`ensemfdet_graph::SampledGraph`] is built.
    ///
    /// Returns the FDET result (in the sample's local id space — map back
    /// through `maps`) and the sample's edge count.
    pub fn run_spec_cached(
        parent: &BipartiteGraph,
        spec: &SampleSpec,
        metric: &dyn DensityMetric,
        truncation: Truncation,
        engine: Engine,
        maps: &mut SampleMaps,
    ) -> (FdetResult, usize) {
        CACHED_ENGINE.with(|e| {
            e.borrow_mut()
                .run_spec(parent, spec, metric, truncation, engine, maps)
        })
    }

    /// Runs FDET directly on `(parent, spec)` with a view engine (`Csr`,
    /// `Bucket`, or `BucketBatch`; `Naive` has no spec path and falls back
    /// to `Csr`): the view is compacted straight from the spec
    /// ([`CsrView::rebuild_from_spec`]), `maps` receives the local↔parent
    /// id maps, and all per-sample state lives in reusable scratch.
    ///
    /// Mirrors [`run`](Self::run)'s view loop exactly — first iteration
    /// builds the view, later iterations [`CsrView::refilter`] it — with
    /// edge ids in the sample's local space, which is precisely how the
    /// materialized path numbers them.
    pub fn run_spec(
        &mut self,
        parent: &BipartiteGraph,
        spec: &SampleSpec,
        metric: &dyn DensityMetric,
        truncation: Truncation,
        engine: Engine,
        maps: &mut SampleMaps,
    ) -> (FdetResult, usize) {
        let cap = match truncation {
            Truncation::Auto { k_max, .. } => k_max,
            Truncation::FixedK(k) => k,
            Truncation::KeepAll { k_max } => k_max,
        };

        self.view
            .rebuild_from_spec(parent, spec, &mut self.resolver, maps);
        let sample_edges = self.view.num_edges();
        self.edge_alive.clear();
        self.edge_alive.resize(sample_edges, true);
        let nu = self.view.num_users();
        let nv = self.view.num_merchants();

        let mut blocks: Vec<Block> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();

        while blocks.len() < cap {
            if !blocks.is_empty() {
                self.view.refilter(&self.edge_alive);
            }
            let Some(block) = peel_view(engine, &self.view, metric, &mut self.scratch) else {
                break;
            };
            // Same disjointness rule as `run`: retire every edge incident
            // to the block's nodes (see the comment there).
            self.in_block.clear();
            self.in_block.resize(nu + nv, false);
            for &u in &block.users {
                self.in_block[u.index()] = true;
            }
            for &v in &block.merchants {
                self.in_block[nu + v.index()] = true;
            }
            let (e_id, e_u, e_v) = (
                self.view.edge_ids(),
                self.view.edge_users(),
                self.view.edge_merchants(),
            );
            for ((&e, &u), &v) in e_id.iter().zip(e_u).zip(e_v) {
                if self.in_block[u as usize] || self.in_block[nu + v as usize] {
                    self.edge_alive[e as usize] = false;
                }
            }
            scores.push(block.score);
            if block.edges.is_empty() {
                blocks.push(block);
                break;
            }
            blocks.push(block);

            if let Truncation::Auto { patience, .. } = truncation {
                let k_hat = truncation_point(&scores);
                if scores.len() >= k_hat + patience {
                    break;
                }
            }
        }

        let k_hat = match truncation {
            Truncation::Auto { .. } => truncation_point(&scores).min(blocks.len()),
            Truncation::FixedK(k) => k.min(blocks.len()),
            Truncation::KeepAll { .. } => blocks.len(),
        };

        (
            FdetResult {
                blocks,
                scores,
                k_hat,
            },
            sample_edges,
        )
    }

    /// Runs FDET on `g` with the chosen engine. See [`crate::fdet::fdet`]
    /// for the algorithm; this entry point only adds engine selection and
    /// scratch reuse.
    pub fn run(
        &mut self,
        g: &BipartiteGraph,
        metric: &dyn DensityMetric,
        truncation: Truncation,
        engine: Engine,
    ) -> FdetResult {
        let cap = match truncation {
            Truncation::Auto { k_max, .. } => k_max,
            Truncation::FixedK(k) => k,
            Truncation::KeepAll { k_max } => k_max,
        };

        self.edge_alive.clear();
        self.edge_alive.resize(g.num_edges(), true);
        let mut blocks: Vec<Block> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();

        while blocks.len() < cap {
            let block = match engine {
                Engine::Naive => peel_densest(g, metric, &self.edge_alive),
                _ => {
                    if blocks.is_empty() {
                        // First iteration: every edge is alive.
                        self.view.rebuild_sharded(g, self.build_workers);
                    } else {
                        // Later iterations: shrink the previous snapshot
                        // instead of re-scanning the parent's dead edges.
                        self.view.refilter(&self.edge_alive);
                    }
                    peel_view(engine, &self.view, metric, &mut self.scratch)
                }
            };
            let Some(block) = block else {
                break; // current graph has no edges left
            };
            // Retire every edge *incident* to the block's nodes, not only
            // the internal ones: Algorithm 1 removes the induced edges
            // `E_i`, but the problem definition (Eq. 1) requires the
            // detected vertex sets to be disjoint, which plain edge removal
            // does not guarantee (a block node with an outside edge could
            // be re-detected). Retiring the nodes enforces `S_l ∩ S_m = ∅`.
            match engine {
                Engine::Naive => {
                    for &u in &block.users {
                        for e in g.user_edge_ids(u) {
                            self.edge_alive[e] = false;
                        }
                    }
                    for &v in &block.merchants {
                        for e in g.merchant_edge_ids(v) {
                            self.edge_alive[e] = false;
                        }
                    }
                }
                _ => {
                    // One pass over the view's alive edges: kill every edge
                    // with an endpoint in the block (dead edges stay dead,
                    // so the view's canonical arrays are sufficient).
                    let nu = g.num_users();
                    self.in_block.clear();
                    self.in_block.resize(nu + g.num_merchants(), false);
                    for &u in &block.users {
                        self.in_block[u.index()] = true;
                    }
                    for &v in &block.merchants {
                        self.in_block[nu + v.index()] = true;
                    }
                    let (e_id, e_u, e_v) = (
                        self.view.edge_ids(),
                        self.view.edge_users(),
                        self.view.edge_merchants(),
                    );
                    for ((&e, &u), &v) in e_id.iter().zip(e_u).zip(e_v) {
                        if self.in_block[u as usize] || self.in_block[nu + v as usize] {
                            self.edge_alive[e as usize] = false;
                        }
                    }
                }
            }
            scores.push(block.score);
            // Degenerate safety: a block with no internal edges cannot
            // shrink the graph and would loop forever.
            if block.edges.is_empty() {
                blocks.push(block);
                break;
            }
            blocks.push(block);

            if let Truncation::Auto { patience, .. } = truncation {
                // Early stop once the provisional elbow has been stable for
                // `patience` additional blocks.
                let k_hat = truncation_point(&scores);
                if scores.len() >= k_hat + patience {
                    break;
                }
            }
        }

        let k_hat = match truncation {
            Truncation::Auto { .. } => truncation_point(&scores).min(blocks.len()),
            Truncation::FixedK(k) => k.min(blocks.len()),
            Truncation::KeepAll { .. } => blocks.len(),
        };

        FdetResult {
            blocks,
            scores,
            k_hat,
        }
    }
}

/// Dispatches one peel of `view` to the selected view engine. `Naive` has
/// no view path and is routed to the CSR loop (callers dispatch `Naive`
/// before reaching here; this keeps the match total).
fn peel_view(
    engine: Engine,
    view: &CsrView,
    metric: &dyn DensityMetric,
    s: &mut PeelScratch,
) -> Option<Block> {
    match engine {
        Engine::Naive | Engine::Csr => peel_csr(view, metric, s),
        Engine::Bucket => peel_bucket(view, metric, s),
        Engine::BucketBatch => peel_bucket_batch(view, metric, s),
    }
}

/// Requests a read of `slice[i]` into cache without touching it. The peel
/// loop's key lookups are latency-bound random accesses whose addresses are
/// known well before their values are needed; warming them early overlaps
/// the miss with useful work. No-op off x86-64.
#[inline(always)]
fn prefetch_read<T>(slice: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if i < slice.len() {
        // SAFETY: index is in bounds and prefetching has no side effects
        // beyond the cache.
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(i).cast::<i8>(),
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, i);
}

/// The queue interface the sequential peel loop drives. Both
/// implementations share the lazy-entry semantics and the exact `(key, id)`
/// pop order (see the module docs), so one generic loop serves the `Csr`
/// and `Bucket` engines with identical floating-point trajectories.
trait PeelQueue {
    /// Replaces the contents with one entry per participating node and
    /// pre-sizes for up to `edge_hint` decrease-key pushes.
    fn rebuild(&mut self, active: &[u32], key: &[f64], edge_hint: usize);
    /// Pushes a run of fresh (possibly superseding) entries, identical in
    /// effect to pushing each in sequence (implementations may overlap
    /// routing latency).
    fn push_all(&mut self, entries: &[(u32, f64)]);
    /// Removes the smallest `(key, element)` entry, stale or not.
    fn pop(&mut self) -> Option<(f64, u32)>;
    /// The element the next pop will return, for prefetching.
    fn peek_element(&self) -> Option<u32>;
    /// Pending entries, stale included.
    fn len(&self) -> usize;
    /// Prunes stale entries (order-neutral; see `retain_current`).
    fn compact(&mut self, current: &[f64]);
}

impl PeelQueue for LazyMinHeap {
    fn rebuild(&mut self, active: &[u32], key: &[f64], edge_hint: usize) {
        // Entries carry distinct node ids, so the packed order is total and
        // the pop sequence is independent of the fill order.
        self.fill(active.iter().filter_map(|&node| {
            let k = key[node as usize];
            (k >= 0.0).then_some((node, k))
        }));
        // One decrease-key entry per alive edge can follow; reserve once so
        // the loop never reallocates.
        self.reserve(edge_hint);
    }
    fn push_all(&mut self, entries: &[(u32, f64)]) {
        for &(e, k) in entries {
            LazyMinHeap::push(self, e, k);
        }
    }
    fn pop(&mut self) -> Option<(f64, u32)> {
        LazyMinHeap::pop(self)
    }
    fn peek_element(&self) -> Option<u32> {
        LazyMinHeap::peek_element(self)
    }
    fn len(&self) -> usize {
        LazyMinHeap::len(self)
    }
    fn compact(&mut self, current: &[f64]) {
        self.retain_current(current);
    }
}

impl PeelQueue for BucketQueue {
    fn rebuild(&mut self, active: &[u32], key: &[f64], _edge_hint: usize) {
        self.fill(active.iter().filter_map(|&node| {
            let k = key[node as usize];
            (k >= 0.0).then_some((node, k))
        }));
    }
    fn push_all(&mut self, entries: &[(u32, f64)]) {
        BucketQueue::push_all(self, entries);
    }
    fn pop(&mut self) -> Option<(f64, u32)> {
        BucketQueue::pop(self)
    }
    fn peek_element(&self) -> Option<u32> {
        BucketQueue::peek_element(self)
    }
    fn len(&self) -> usize {
        BucketQueue::len(self)
    }
    fn compact(&mut self, current: &[f64]) {
        self.retain_current(current);
    }
}

/// Peels the densest block out of `view` (which holds exactly the alive
/// edges) with the lazy-deletion heap — the `Csr` engine. Mirrors
/// [`crate::peel::peel_densest`] operation for operation.
fn peel_csr(view: &CsrView, metric: &dyn DensityMetric, s: &mut PeelScratch) -> Option<Block> {
    let PeelScratch { nodes, heap, .. } = s;
    peel_seq(view, metric, nodes, heap)
}

/// The same loop driven by the monotone bucket queue — the `Bucket`
/// engine. Bit-identical to [`peel_csr`] (see the module docs).
fn peel_bucket(view: &CsrView, metric: &dyn DensityMetric, s: &mut PeelScratch) -> Option<Block> {
    let PeelScratch { nodes, bucket, .. } = s;
    peel_seq(view, metric, nodes, bucket)
}

/// The sequential peel loop, generic over the queue. Every operation on
/// node state happens in pop order, which both queues define identically,
/// so the monomorphized loops produce bit-identical blocks.
fn peel_seq<Q: PeelQueue>(
    view: &CsrView,
    metric: &dyn DensityMetric,
    nodes: &mut NodeScratch,
    q: &mut Q,
) -> Option<Block> {
    let (mut f, participating) = nodes.begin(view, metric)?;
    let nu = view.num_users();
    q.rebuild(&nodes.active, &nodes.key, view.num_edges());

    // Peel, tracking the best prefix.
    let mut size = participating;
    let mut best_phi = f / size as f64; // H_n: the whole current graph
    let mut best_step = 0u32;
    let mut step = 0u32;

    while let Some((p, node)) = q.pop() {
        // The next pop's stale check reads `key[root element]` — a random
        // access. Its address is known now, long before the relax work
        // below finishes, so start the load early.
        if let Some(next) = q.peek_element() {
            prefetch_read(&nodes.key, next as usize);
        }
        let node = node as usize;
        // Stale check: a popped key is always non-negative, so the removed
        // sentinel (`-1.0`) and an outdated key both fail one comparison.
        if p != nodes.key[node] {
            continue;
        }
        nodes.key[node] = -1.0;
        step += 1;
        nodes.rank[node] = step;
        f -= p;
        size -= 1;
        if size == 0 {
            // Every node is removed; anything left in the queue is stale.
            break;
        }
        if q.len() > 2 * size + 64 {
            // More stale entries than live ones: prune so the structure
            // tracks the shrinking live set (order-neutral pruning — see
            // `LazyMinHeap::retain_current`).
            q.compact(&nodes.key);
        }

        // Relax the still-alive opposite endpoints: an incident edge is
        // alive iff its other endpoint is (within one peel, edges die
        // exactly when an endpoint is removed).
        // Each relax reads `key[opposite endpoint]` — independent random
        // accesses at addresses the neighbor list spells out in advance, so
        // issue each load a few iterations before its value is consumed.
        // The decreases are staged into `relax` and handed to the queue in
        // one run (same entries, same order as pushing inline) so the queue
        // can overlap its own routing misses too.
        const RELAX_AHEAD: usize = 8;
        let mut relax = std::mem::take(&mut nodes.relax);
        relax.clear();
        if node < nu {
            let nb = view.user_neighbors(UserId(node as u32));
            for (i, &(v, w)) in nb.pairs.iter().enumerate() {
                if let Some(&(nv, _)) = nb.pairs.get(i + RELAX_AHEAD) {
                    prefetch_read(&nodes.key, nu + nv as usize);
                }
                let other = nu + v as usize;
                let k = nodes.key[other];
                if k >= 0.0 {
                    let nk = (k - w * nodes.cw[v as usize]).max(0.0);
                    nodes.key[other] = nk;
                    relax.push((other as u32, nk));
                }
            }
        } else {
            let v = node - nu;
            let nb = view.merchant_neighbors(MerchantId(v as u32));
            let cwv = nodes.cw[v];
            for (i, &(u, w)) in nb.pairs.iter().enumerate() {
                if let Some(&(nun, _)) = nb.pairs.get(i + RELAX_AHEAD) {
                    prefetch_read(&nodes.key, nun as usize);
                }
                let other = u as usize;
                let k = nodes.key[other];
                if k >= 0.0 {
                    let nk = (k - w * cwv).max(0.0);
                    nodes.key[other] = nk;
                    relax.push((other as u32, nk));
                }
            }
        }
        q.push_all(&relax);
        nodes.relax = relax;

        if size > 0 {
            // Guard against tiny negative drift from floating cancellation.
            let phi = f.max(0.0) / size as f64;
            if phi > best_phi {
                best_phi = phi;
                best_step = step;
            }
        }
    }

    Some(extract_block(view, nodes, best_phi, best_step))
}

/// Materializes the best prefix found by a peel: the block is the set of
/// participating nodes removed strictly after `best_step` (or never).
fn extract_block(view: &CsrView, nodes: &NodeScratch, best_phi: f64, best_step: u32) -> Block {
    let nu = view.num_users();
    let nv = view.num_merchants();
    let (e_u, e_v) = (view.edge_users(), view.edge_merchants());
    // (Only valid for stamped nodes — exactly the ones reachable below.)
    let in_block = |node: usize| {
        let rank = nodes.rank[node];
        rank == u32::MAX || rank > best_step
    };
    // Nodes that never participated (isolated, or zero priority under the
    // metric) have rank MAX but priority 0 and were never pushed; the
    // priority filter excludes them. Users come from a dedup scan of the
    // canonical edge array — grouped ascending by construction — and
    // merchants from a pass over the (much smaller) merchant side, so both
    // lists come out in ascending id order without an O(total nodes) scan.
    let mut users = Vec::new();
    let mut merchants = Vec::new();
    if e_u.is_sorted() {
        let mut prev = u32::MAX;
        for &u in e_u {
            if u != prev {
                prev = u;
                if in_block(u as usize) && nodes.priority[u as usize] > 0.0 {
                    users.push(UserId(u));
                }
            }
        }
    } else {
        // Unsorted canonical order (not produced by `GraphBuilder`, but
        // cheap to tolerate): fall back to a user-side degree scan.
        for u in 0..nu {
            if view.user_degree(UserId(u as u32)) > 0 && in_block(u) && nodes.priority[u] > 0.0 {
                users.push(UserId(u as u32));
            }
        }
    }
    for v in 0..nv {
        let node = nu + v;
        if view.merchant_degree(MerchantId(v as u32)) > 0
            && in_block(node)
            && nodes.priority[node] > 0.0
        {
            merchants.push(MerchantId(v as u32));
        }
    }

    // Edges fully inside the block, in ascending global edge id.
    let e_id = view.edge_ids();
    let mut edges: Vec<EdgeId> = Vec::new();
    for i in 0..e_id.len() {
        if in_block(e_u[i] as usize) && in_block(nu + e_v[i] as usize) {
            edges.push(e_id[i] as EdgeId);
        }
    }

    Block {
        users,
        merchants,
        score: best_phi,
        edges,
    }
}

// ---------------------------------------------------------------------------
// Batched peel (`Engine::BucketBatch`)
// ---------------------------------------------------------------------------

/// Round nodes per emission chunk in the parallel relax.
const BATCH_CHUNK: usize = 256;
/// Neighbor-id shards in the parallel relax; each shard owns a contiguous
/// id range so workers never write the same key.
const BATCH_SHARDS: usize = 64;
/// Rounds whose combined adjacency is below this relax inline — the
/// two-phase machinery only pays for itself on large rounds.
const BATCH_PAR_EDGES: usize = 1 << 15;
/// Cap on scoped relax workers per round.
const BATCH_MAX_WORKERS: usize = 8;

#[inline]
fn pack_entry(element: u32, key: f64) -> u128 {
    ((key.to_bits() as u128) << 32) | element as u128
}

#[inline]
fn unpack_entry(entry: u128) -> (f64, u32) {
    (f64::from_bits((entry >> 32) as u64), entry as u32)
}

/// Round buffers for the batched engine, recycled across rounds and peels.
#[derive(Clone, Debug, Default)]
struct BatchScratch {
    /// Live same-side nodes tied at the round's key, ascending id.
    round: Vec<u32>,
    /// Phase-1 emission buffers: `[chunk][shard]` → packed
    /// `(delta_bits << 32) | neighbor` records in adjacency order.
    chunk_bufs: Vec<Vec<Vec<u128>>>,
    /// Phase-2 output: one packed `(final_key, neighbor)` entry per
    /// touched neighbor, per shard.
    shard_pushes: Vec<Vec<u128>>,
    /// Per-shard first-touch lists (drained every round).
    shard_touched: Vec<Vec<u32>>,
    /// Round tag that last touched each node (dedups the decrease entries
    /// pushed per round without an O(n) reset).
    touch_stamp: Vec<u32>,
    /// Current round tag; wraps with a full stamp clear like the peel
    /// epoch does.
    round_seq: u32,
}

/// One shard's mutable state for the phase-2 apply: an exclusive window
/// over the key and stamp arrays plus its output buffers.
struct ShardTask<'a> {
    sidx: usize,
    start: usize,
    keys: &'a mut [f64],
    stamps: &'a mut [u32],
    pushes: &'a mut Vec<u128>,
    touched: &'a mut Vec<u32>,
}

/// The batched peel: each round removes *every* live same-side node whose
/// key equals the current minimum, then relaxes their combined adjacency —
/// with scoped workers when the round is large (see [`BATCH_PAR_EDGES`]).
///
/// Determinism: the inline and parallel relax paths apply, for every
/// neighbor, the same update sequence in the same order (chunks ascending,
/// emission order within a chunk), so results never depend on the worker
/// count — only the set of queue entries differs (the parallel path
/// coalesces each neighbor's decreases into one entry), which is invisible
/// through the stale-entry filter.
fn peel_bucket_batch(
    view: &CsrView,
    metric: &dyn DensityMetric,
    s: &mut PeelScratch,
) -> Option<Block> {
    peel_bucket_batch_with(view, metric, s, BATCH_PAR_EDGES)
}

/// [`peel_bucket_batch`] with an explicit parallelism threshold, so tests
/// can force both relax paths (`0` = always parallel, `usize::MAX` = always
/// inline) and assert identical output.
fn peel_bucket_batch_with(
    view: &CsrView,
    metric: &dyn DensityMetric,
    s: &mut PeelScratch,
    par_edges: usize,
) -> Option<Block> {
    let PeelScratch {
        nodes,
        bucket: q,
        batch,
        ..
    } = s;
    let (mut f, participating) = nodes.begin(view, metric)?;
    let nu = view.num_users();
    let n = nu + view.num_merchants();
    q.fill(nodes.active.iter().filter_map(|&node| {
        let k = nodes.key[node as usize];
        (k >= 0.0).then_some((node, k))
    }));
    if batch.touch_stamp.len() < n {
        batch.touch_stamp.resize(n, 0);
    }
    if batch.shard_pushes.is_empty() {
        batch.shard_pushes.resize_with(BATCH_SHARDS, Vec::new);
        batch.shard_touched.resize_with(BATCH_SHARDS, Vec::new);
    }

    let mut size = participating;
    let mut best_phi = f / size as f64;
    let mut best_step = 0u32;
    let mut step = 0u32;

    while let Some((p, first)) = q.pop() {
        if p != nodes.key[first as usize] {
            continue;
        }
        // Collect the round: every live node on `first`'s side holding
        // exactly this key. Candidates all live in one bucket (exact key
        // match implies same bucket index); stale entries and duplicates
        // are filtered by the key check and the dedup below.
        batch.round.clear();
        batch.round.push(first);
        let user_side = (first as usize) < nu;
        {
            let key = &nodes.key;
            let round = &mut batch.round;
            q.for_each_in_bucket_of(p, |k2, e2| {
                if k2 == p
                    && e2 != first
                    && ((e2 as usize) < nu) == user_side
                    && key[e2 as usize] == k2
                {
                    round.push(e2);
                }
            });
        }
        batch.round.sort_unstable();
        batch.round.dedup();

        // Remove the round in ascending id order. Same-side nodes share no
        // edges, so every key in the round stays valid until its own
        // removal — the bookkeeping below mirrors a sequential peel that
        // happened to pop the round in id order.
        for &node in &batch.round {
            let node = node as usize;
            nodes.key[node] = -1.0;
            step += 1;
            nodes.rank[node] = step;
            f -= p;
            size -= 1;
            if size > 0 {
                let phi = f.max(0.0) / size as f64;
                if phi > best_phi {
                    best_phi = phi;
                    best_step = step;
                }
            }
        }
        if size == 0 {
            break;
        }

        let adjacency: usize = batch
            .round
            .iter()
            .map(|&nd| {
                let nd = nd as usize;
                if nd < nu {
                    view.user_neighbors(UserId(nd as u32)).pairs.len()
                } else {
                    view.merchant_neighbors(MerchantId((nd - nu) as u32)).pairs.len()
                }
            })
            .sum();

        if adjacency < par_edges || batch.round.len() < 2 {
            // Inline relax in canonical order: round nodes ascending,
            // adjacency order within each node.
            for &node in &batch.round {
                let node = node as usize;
                if node < nu {
                    for &(v, w) in view.user_neighbors(UserId(node as u32)).pairs {
                        let other = nu + v as usize;
                        let k = nodes.key[other];
                        if k >= 0.0 {
                            let nk = (k - w * nodes.cw[v as usize]).max(0.0);
                            nodes.key[other] = nk;
                            q.push(other as u32, nk);
                        }
                    }
                } else {
                    let v = node - nu;
                    let cwv = nodes.cw[v];
                    for &(u, w) in view.merchant_neighbors(MerchantId(v as u32)).pairs {
                        let other = u as usize;
                        let k = nodes.key[other];
                        if k >= 0.0 {
                            let nk = (k - w * cwv).max(0.0);
                            nodes.key[other] = nk;
                            q.push(other as u32, nk);
                        }
                    }
                }
            }
        } else {
            relax_round_parallel(view, nodes, batch, q, nu, n);
        }
    }

    Some(extract_block(view, nodes, best_phi, best_step))
}

/// Two-phase scoped-thread relax of one round's combined adjacency.
///
/// Phase 1 partitions the round into fixed chunks; workers emit
/// `(neighbor, delta)` records into per-`(chunk, shard)` buffers, where a
/// neighbor's shard is a contiguous id range. Phase 2 assigns each shard
/// to exactly one worker, which applies its records in (chunk ascending,
/// emission order) — the same canonical order the inline path uses — then
/// pushes one coalesced decrease entry per touched neighbor. The main
/// thread merges the per-shard entries into the queue. No two workers ever
/// touch the same key, and the application order is scheduling-independent,
/// so the relax is deterministic and exactly equal to the inline path.
fn relax_round_parallel(
    view: &CsrView,
    nodes: &mut NodeScratch,
    batch: &mut BatchScratch,
    q: &mut BucketQueue,
    nu: usize,
    n: usize,
) {
    let chunk_count = batch.round.len().div_ceil(BATCH_CHUNK);
    while batch.chunk_bufs.len() < chunk_count {
        batch
            .chunk_bufs
            .push((0..BATCH_SHARDS).map(|_| Vec::new()).collect());
    }
    // Shard = high bits of the neighbor id: shard `s` owns ids
    // `[s << shift, (s+1) << shift)`, clamped to `n`.
    let shift = (usize::BITS - n.leading_zeros()).saturating_sub(BATCH_SHARDS.trailing_zeros());
    // Unique per-round tag for the first-touch dedup stamps.
    if batch.round_seq == u32::MAX {
        batch.touch_stamp.iter_mut().for_each(|t| *t = 0);
        batch.round_seq = 0;
    }
    batch.round_seq += 1;
    let tag = batch.round_seq;

    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .clamp(1, BATCH_MAX_WORKERS);

    // Phase 1: emit (neighbor, delta) records, sharded by neighbor id.
    {
        let round: &[u32] = &batch.round;
        let key: &[f64] = &nodes.key;
        let cw: &[f64] = &nodes.cw;
        /// One worker's share of phase 1: `(chunk index, that chunk's
        /// per-shard record buffers)`.
        type WorkerTasks<'a> = Vec<(usize, &'a mut Vec<Vec<u128>>)>;
        let mut per_worker: Vec<WorkerTasks> = (0..workers).map(|_| Vec::new()).collect();
        for (c, buf) in batch.chunk_bufs[..chunk_count].iter_mut().enumerate() {
            per_worker[c % workers].push((c, buf));
        }
        std::thread::scope(|sc| {
            for tasks in per_worker {
                sc.spawn(move || {
                    for (c, buf) in tasks {
                        let lo = c * BATCH_CHUNK;
                        let hi = (lo + BATCH_CHUNK).min(round.len());
                        for &nd in &round[lo..hi] {
                            let nd = nd as usize;
                            if nd < nu {
                                for &(v, w) in view.user_neighbors(UserId(nd as u32)).pairs {
                                    let other = nu + v as usize;
                                    // Opposite-side neighbors cannot die
                                    // mid-round, so aliveness here equals
                                    // aliveness at apply time.
                                    if key[other] >= 0.0 {
                                        let delta = w * cw[v as usize];
                                        buf[other >> shift].push(pack_entry(other as u32, delta));
                                    }
                                }
                            } else {
                                let v = nd - nu;
                                let cwv = cw[v];
                                for &(u, w) in view.merchant_neighbors(MerchantId(v as u32)).pairs {
                                    let other = u as usize;
                                    if key[other] >= 0.0 {
                                        let delta = w * cwv;
                                        buf[other >> shift].push(pack_entry(other as u32, delta));
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    // Phase 2: apply deltas per shard in canonical (chunk, emission) order.
    {
        let bufs: &[Vec<Vec<u128>>] = &batch.chunk_bufs;
        let mut tasks: Vec<ShardTask<'_>> = Vec::with_capacity(BATCH_SHARDS);
        let mut keys_rest: &mut [f64] = &mut nodes.key[..n];
        let mut stamps_rest: &mut [u32] = &mut batch.touch_stamp[..n];
        let mut start = 0usize;
        for (sidx, (pushes, touched)) in batch
            .shard_pushes
            .iter_mut()
            .zip(batch.shard_touched.iter_mut())
            .enumerate()
        {
            let end = ((sidx + 1) << shift).min(n).max(start);
            let (ks, kr) = keys_rest.split_at_mut(end - start);
            let (ss, sr) = stamps_rest.split_at_mut(end - start);
            keys_rest = kr;
            stamps_rest = sr;
            tasks.push(ShardTask {
                sidx,
                start,
                keys: ks,
                stamps: ss,
                pushes,
                touched,
            });
            start = end;
        }
        let mut per_worker: Vec<Vec<ShardTask<'_>>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            per_worker[i % workers].push(t);
        }
        std::thread::scope(|sc| {
            for mut tasks in per_worker {
                sc.spawn(move || {
                    for t in &mut tasks {
                        for cbuf in &bufs[..chunk_count] {
                            for &e in &cbuf[t.sidx] {
                                let (delta, other) = unpack_entry(e);
                                let local = other as usize - t.start;
                                // Per-record clamp, exactly as the inline
                                // path applies each edge.
                                t.keys[local] = (t.keys[local] - delta).max(0.0);
                                if t.stamps[local] != tag {
                                    t.stamps[local] = tag;
                                    t.touched.push(other);
                                }
                            }
                        }
                        for &node in t.touched.iter() {
                            t.pushes
                                .push(pack_entry(node, t.keys[node as usize - t.start]));
                        }
                        t.touched.clear();
                    }
                });
            }
        });
    }

    // Merge the coalesced decrease entries (ascending shard = ascending id
    // ranges) and reset the emission buffers for the next round.
    for sidx in 0..BATCH_SHARDS {
        for &e in &batch.shard_pushes[sidx] {
            let (k, node) = unpack_entry(e);
            q.push(node, k);
        }
        batch.shard_pushes[sidx].clear();
    }
    for cbuf in &mut batch.chunk_bufs[..chunk_count] {
        for sbuf in cbuf.iter_mut() {
            sbuf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdet::fdet_with_engine;
    use crate::metric::{AverageDegreeMetric, LogWeightedMetric, MetricKind};
    use crate::peel::peel_densest_full;
    use ensemfdet_graph::GraphBuilder;

    fn planted_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in 0..3u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 5..25u32 {
            b.add_edge(UserId(u), MerchantId(3 + u % 7));
        }
        b.build()
    }

    fn peel_csr_full(g: &BipartiteGraph, metric: &dyn DensityMetric) -> Option<Block> {
        let view = CsrView::from_graph(g);
        peel_csr(&view, metric, &mut PeelScratch::default())
    }

    #[test]
    fn csr_peel_matches_naive_on_planted_graph() {
        let g = planted_graph();
        for metric in [
            &AverageDegreeMetric as &dyn DensityMetric,
            &LogWeightedMetric::paper_default(),
        ] {
            let naive = peel_densest_full(&g, metric).unwrap();
            let csr = peel_csr_full(&g, metric).unwrap();
            assert_eq!(naive, csr);
        }
    }

    #[test]
    fn bucket_peel_is_bit_identical_to_csr() {
        let g = planted_graph();
        for metric in [
            &AverageDegreeMetric as &dyn DensityMetric,
            &LogWeightedMetric::paper_default(),
        ] {
            let view = CsrView::from_graph(&g);
            let csr = peel_csr(&view, metric, &mut PeelScratch::default()).unwrap();
            let bucket = peel_bucket(&view, metric, &mut PeelScratch::default()).unwrap();
            assert_eq!(csr, bucket);
            assert_eq!(csr.score.to_bits(), bucket.score.to_bits());
        }
    }

    #[test]
    fn csr_peel_matches_naive_on_weighted_graph() {
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        for u in 0..3u32 {
            for v in 0..2u32 {
                edges.push((u, v));
                weights.push(3.0);
                edges.push((u + 3, v + 2));
                weights.push(1.0);
            }
        }
        let g = BipartiteGraph::from_weighted_edges(6, 4, edges, weights).unwrap();
        let naive = peel_densest_full(&g, &AverageDegreeMetric).unwrap();
        let csr = peel_csr_full(&g, &AverageDegreeMetric).unwrap();
        assert_eq!(naive, csr);
        let view = CsrView::from_graph(&g);
        let bucket = peel_bucket(&view, &AverageDegreeMetric, &mut PeelScratch::default()).unwrap();
        assert_eq!(naive, bucket);
    }

    #[test]
    fn csr_peel_empty_cases() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]).unwrap();
        assert!(peel_csr_full(&g, &AverageDegreeMetric).is_none());
        let g = planted_graph();
        let view = CsrView::from_graph_filtered(&g, &vec![false; g.num_edges()]);
        assert!(peel_csr(&view, &AverageDegreeMetric, &mut PeelScratch::default()).is_none());
        assert!(peel_bucket(&view, &AverageDegreeMetric, &mut PeelScratch::default()).is_none());
        assert!(
            peel_bucket_batch(&view, &AverageDegreeMetric, &mut PeelScratch::default()).is_none()
        );
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // Back-to-back peels through one scratch must equal fresh peels.
        let g1 = planted_graph();
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        let g2 = b.build();

        let mut scratch = PeelScratch::default();
        let mut view = CsrView::new();
        for g in [&g1, &g2, &g1] {
            view.rebuild(g, None);
            let reused = peel_csr(&view, &AverageDegreeMetric, &mut scratch);
            let fresh = peel_csr_full(g, &AverageDegreeMetric);
            assert_eq!(reused, fresh);
            let bucket_reused = peel_bucket(&view, &AverageDegreeMetric, &mut scratch);
            assert_eq!(bucket_reused, fresh);
        }
    }

    /// A graph engineered to have large tie rounds: a complete block whose
    /// users are interchangeable, plus uniform background rows.
    fn tie_heavy_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..40u32 {
            for v in 0..6u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 40..200u32 {
            b.add_edge(UserId(u), MerchantId(6 + u % 11));
        }
        b.build()
    }

    #[test]
    fn batch_peel_is_thread_count_invariant() {
        // Forcing the parallel relax (threshold 0) and forcing the inline
        // relax (threshold MAX) must produce byte-identical blocks.
        for g in [&planted_graph(), &tie_heavy_graph()] {
            let view = CsrView::from_graph(g);
            let inline = peel_bucket_batch_with(
                &view,
                &LogWeightedMetric::paper_default(),
                &mut PeelScratch::default(),
                usize::MAX,
            )
            .unwrap();
            let parallel = peel_bucket_batch_with(
                &view,
                &LogWeightedMetric::paper_default(),
                &mut PeelScratch::default(),
                0,
            )
            .unwrap();
            assert_eq!(inline, parallel);
            assert_eq!(inline.score.to_bits(), parallel.score.to_bits());
        }
    }

    #[test]
    fn batch_peel_scores_match_csr_within_tolerance() {
        for g in [&planted_graph(), &tie_heavy_graph()] {
            let view = CsrView::from_graph(g);
            let csr = peel_csr(&view, &LogWeightedMetric::paper_default(), &mut PeelScratch::default())
                .unwrap();
            let batch = peel_bucket_batch(
                &view,
                &LogWeightedMetric::paper_default(),
                &mut PeelScratch::default(),
            )
            .unwrap();
            let tol = 1e-9 * csr.score.abs().max(1.0);
            assert!(
                (csr.score - batch.score).abs() <= tol,
                "batch score {} vs csr {}",
                batch.score,
                csr.score
            );
        }
    }

    #[test]
    fn fdet_engines_agree_end_to_end() {
        let g = planted_graph();
        let naive = fdet_with_engine(
            &g,
            &MetricKind::default(),
            Truncation::KeepAll { k_max: 10 },
            Engine::Naive,
        );
        for engine in [Engine::Csr, Engine::Bucket] {
            let got = fdet_with_engine(
                &g,
                &MetricKind::default(),
                Truncation::KeepAll { k_max: 10 },
                engine,
            );
            assert_eq!(naive.blocks, got.blocks, "{engine}");
            assert_eq!(naive.scores, got.scores, "{engine}");
            assert_eq!(naive.k_hat, got.k_hat, "{engine}");
        }
    }

    #[test]
    fn run_spec_matches_materialized_run() {
        use ensemfdet_graph::SpecKind;
        let g = planted_graph();
        let mut engine = FdetEngine::new();
        let mut maps = SampleMaps::default();
        let mut spec = SampleSpec::new();
        spec.reset(SpecKind::EdgeSubset);
        spec.edges.extend((0..g.num_edges()).step_by(2));
        for truncation in [
            Truncation::default(),
            Truncation::KeepAll { k_max: 10 },
            Truncation::FixedK(2),
        ] {
            for eng in [Engine::Csr, Engine::Bucket] {
                let (spec_res, sample_edges) = engine.run_spec(
                    &g,
                    &spec,
                    &MetricKind::default(),
                    truncation,
                    eng,
                    &mut maps,
                );
                let sampled = spec.materialize(&g);
                let mat = engine.run(&sampled.graph, &MetricKind::default(), truncation, eng);
                assert_eq!(spec_res.blocks, mat.blocks);
                assert_eq!(spec_res.scores, mat.scores);
                assert_eq!(spec_res.k_hat, mat.k_hat);
                assert_eq!(sample_edges, sampled.graph.num_edges());
                assert_eq!(maps.orig_users, sampled.orig_users);
                assert_eq!(maps.orig_merchants, sampled.orig_merchants);
            }
        }
    }

    #[test]
    fn engine_parsing_round_trips() {
        for engine in [
            Engine::Csr,
            Engine::Naive,
            Engine::Bucket,
            Engine::BucketBatch,
        ] {
            assert_eq!(engine.name().parse::<Engine>().unwrap(), engine);
            assert_eq!(engine.to_string(), engine.name());
        }
        assert!("fast".parse::<Engine>().is_err());
        assert!("bucket_batch".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Csr);
    }
}
