//! Property-based tests for the samplers: containment, ratio, determinism,
//! and the empirical validation of Lemma 1 / Theorem 1.

use ensemfdet_graph::BipartiteGraph;
use ensemfdet_sampling::theory::{es_inclusion_probability, lemma1_crossover};
use ensemfdet_sampling::weighted::epsilon_approx_sample;
use ensemfdet_sampling::{Sampler, SamplingMethod};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (2u32..30, 2u32..30).prop_flat_map(|(nu, nv)| {
        prop::collection::vec((0..nu, 0..nv), 1..200).prop_map(move |edges| {
            BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn samples_are_subgraphs(g in arb_graph(), ratio in 0.05f64..1.0, seed in 0u64..500) {
        let parent_edges: std::collections::HashMap<(u32, u32), usize> = {
            let mut m = std::collections::HashMap::new();
            for &e in g.edge_slice() { *m.entry(e).or_insert(0) += 1; }
            m
        };
        for method in SamplingMethod::ALL {
            let s = method.sample(&g, ratio, seed);
            // Node maps are injective into the parent id space.
            let users: std::collections::HashSet<u32> = s.orig_users.iter().copied().collect();
            prop_assert_eq!(users.len(), s.orig_users.len());
            prop_assert!(s.orig_users.iter().all(|&u| (u as usize) < g.num_users()));
            prop_assert!(s.orig_merchants.iter().all(|&v| (v as usize) < g.num_merchants()));
            // Every sampled edge exists in the parent with enough multiplicity.
            let mut seen: std::collections::HashMap<(u32, u32), usize> = Default::default();
            for (_, lu, lv, _) in s.graph.edges() {
                let key = (s.orig_users[lu.index()], s.orig_merchants[lv.index()]);
                *seen.entry(key).or_insert(0) += 1;
            }
            for (e, c) in seen {
                prop_assert!(parent_edges.get(&e).copied().unwrap_or(0) >= c,
                    "{}: edge {:?} not in parent", method, e);
            }
        }
    }

    #[test]
    fn res_edge_count_tracks_ratio(g in arb_graph(), ratio in 0.1f64..1.0, seed in 0u64..100) {
        let s = SamplingMethod::RandomEdge.sample(&g, ratio, seed);
        let want = ((ratio * g.num_edges() as f64).round() as usize).clamp(1, g.num_edges());
        prop_assert_eq!(s.graph.num_edges(), want);
    }

    #[test]
    fn ons_preserves_degrees_of_sampled_users(g in arb_graph(), seed in 0u64..100) {
        let s = SamplingMethod::OneSideUser.sample(&g, 0.5, seed);
        for lu in 0..s.graph.num_users() {
            let local_deg = s.graph.user_degree(ensemfdet_graph::UserId(lu as u32));
            let parent_deg = g.user_degree(ensemfdet_graph::UserId(s.orig_users[lu]));
            prop_assert_eq!(local_deg, parent_deg);
        }
    }

    #[test]
    fn epsilon_sample_total_weight_is_unbiased_smoke(g in arb_graph(), p in 0.2f64..0.9) {
        // Single draw: weight within a loose multiple of |E| (law of large
        // numbers is checked in the unit tests with many trials).
        let s = epsilon_approx_sample(&g, p, 42);
        let w = s.graph.total_weight();
        prop_assert!(w <= g.num_edges() as f64 / p + 1e-9);
    }

    #[test]
    fn lemma1_crossover_separates_expectations(pv in 0.01f64..0.9, pe in 0.01f64..0.9) {
        let qstar = lemma1_crossover(pv, pe);
        if qstar.is_finite() && qstar < 200.0 {
            let q_above = qstar.ceil() as u32 + 1;
            prop_assert!(es_inclusion_probability(pe, q_above) > pv);
            if qstar >= 1.0 {
                let q_below = qstar.floor() as u32;
                prop_assert!(es_inclusion_probability(pe, q_below) <= pv + 1e-9);
            }
        }
    }
}

/// Empirical Lemma 1: on a graph with both low- and high-degree merchants,
/// RES includes high-degree merchants more often than merchant-node sampling
/// at matched ratios.
#[test]
fn res_oversamples_high_degree_nodes_vs_ons() {
    // 1 popular merchant (degree 60), 60 unpopular (degree 1 each).
    let mut edges = Vec::new();
    for u in 0..60u32 {
        edges.push((u, 0));
        edges.push((u, 1 + u));
    }
    let g = BipartiteGraph::from_edges(60, 61, edges).unwrap();
    let ratio = 0.2;
    let trials = 200u64;
    let mut res_hits = 0usize;
    let mut ons_hits = 0usize;
    for seed in 0..trials {
        let res = SamplingMethod::RandomEdge.sample(&g, ratio, seed);
        if res.orig_merchants.contains(&0) {
            res_hits += 1;
        }
        let ons = SamplingMethod::OneSideMerchant.sample(&g, ratio, seed);
        if ons.orig_merchants.contains(&0) {
            ons_hits += 1;
        }
    }
    // RES: P(include m0) = 1 - (1-0.2)^60 ≈ 1. ONS: P = 0.2.
    assert!(res_hits as f64 / trials as f64 > 0.95, "res {res_hits}/{trials}");
    assert!((ons_hits as f64 / trials as f64) < 0.4, "ons {ons_hits}/{trials}");
}
