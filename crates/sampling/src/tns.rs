//! Two-sides Node Sampling (TNS, Section IV-A4).
//!
//! Samples `S·|U|` users *and* `S·|V|` merchants and keeps only the crossing
//! edges — the cross-section of the sampled rows and columns of the
//! adjacency matrix `W`. A ratio-`S` TNS sample therefore keeps only ≈ `S²`
//! of the edges, which is why the paper recommends enlarging `S` or `N`
//! when using it.

use crate::method::{sample_count, Sampler};
use crate::scratch::SamplerScratch;
use crate::seed::splitmix64;
use ensemfdet_graph::{BipartiteGraph, MerchantId, SampleSpec, SpecKind, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform node sampler over both sides, keeping crossing edges only.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoSideNodeSampling;

impl Sampler for TwoSideNodeSampling {
    fn sample_spec(
        &self,
        g: &BipartiteGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SamplerScratch,
        spec: &mut SampleSpec,
    ) {
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x2_0115));
        let take_u = sample_count(g.num_users(), ratio);
        let take_v = sample_count(g.num_merchants(), ratio);
        spec.reset(SpecKind::NodeSubsets);
        // Both draws share one RNG stream (users first), matching the
        // original materializing implementation draw for draw.
        scratch.floyd_fill(g.num_users(), take_u, &mut rng, |i| {
            spec.users.push(UserId(i as u32))
        });
        scratch.floyd_fill(g.num_merchants(), take_v, &mut rng, |i| {
            spec.merchants.push(MerchantId(i as u32))
        });
    }

    fn name(&self) -> &'static str {
        "Two_sides_Bagging"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(nu: u32, nv: u32) -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..nu {
            for v in 0..nv {
                edges.push((u, v));
            }
        }
        BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap()
    }

    #[test]
    fn node_counts_follow_ratio_on_both_sides() {
        let g = complete_graph(40, 20);
        let s = TwoSideNodeSampling.sample(&g, 0.25, 5);
        assert_eq!(s.graph.num_users(), 10);
        assert_eq!(s.graph.num_merchants(), 5);
    }

    #[test]
    fn complete_graph_keeps_exactly_cross_section() {
        // On K(nu, nv) a TNS sample keeps every crossing pair: edges = s_u·s_v.
        let g = complete_graph(40, 20);
        let s = TwoSideNodeSampling.sample(&g, 0.25, 5);
        assert_eq!(s.graph.num_edges(), 10 * 5);
    }

    #[test]
    fn edge_fraction_is_roughly_ratio_squared() {
        // Average over seeds: kept-edge fraction on a sparse random-ish
        // graph ≈ S² (Section IV-A4's sizing caveat).
        let edges: Vec<(u32, u32)> = (0..2000u32).map(|i| (i % 100, (i * 13) % 80)).collect();
        let g = BipartiteGraph::from_edges(100, 80, edges).unwrap();
        let ratio = 0.3;
        let mut total = 0usize;
        let trials = 40;
        for seed in 0..trials {
            total += TwoSideNodeSampling.sample(&g, ratio, seed).graph.num_edges();
        }
        let frac = total as f64 / (trials as f64 * g.num_edges() as f64);
        let expect = ratio * ratio;
        assert!(
            (frac - expect).abs() < 0.03,
            "kept fraction {frac:.3} vs S² = {expect:.3}"
        );
    }

    #[test]
    fn crossing_edges_only() {
        let g = complete_graph(10, 10);
        let s = TwoSideNodeSampling.sample(&g, 0.5, 1);
        let users: std::collections::HashSet<u32> = s.orig_users.iter().copied().collect();
        let merchants: std::collections::HashSet<u32> =
            s.orig_merchants.iter().copied().collect();
        for (_, lu, lv, _) in s.graph.edges() {
            assert!(users.contains(&s.parent_user(lu).0));
            assert!(merchants.contains(&s.parent_merchant(lv).0));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = complete_graph(20, 20);
        let a = TwoSideNodeSampling.sample(&g, 0.4, 123);
        let b = TwoSideNodeSampling.sample(&g, 0.4, 123);
        assert_eq!(a.orig_users, b.orig_users);
        assert_eq!(a.orig_merchants, b.orig_merchants);
        assert_eq!(a.graph.edge_slice(), b.graph.edge_slice());
    }
}
