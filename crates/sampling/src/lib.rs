#![warn(missing_docs)]

//! Structural sampling methods for bipartite graphs (Section IV-A of the
//! EnsemFDet paper).
//!
//! The ensemble decomposes one huge *who-buys-from-where* graph into `N`
//! small sampled subgraphs that FDET can attack independently and in
//! parallel. This crate provides the paper's three sampling families behind
//! one [`Sampler`] trait:
//!
//! - [`RandomEdgeSampling`] (RES, "Random Edge Bagging") — pick `S·|E|`
//!   edges uniformly without replacement; by Lemma 1 this over-represents
//!   high-degree nodes, biasing samples toward the dense (suspicious)
//!   components.
//! - [`OneSideNodeSampling`] (ONS, "Node PIN / Node Merchant Bagging") —
//!   pick `S·|side|` nodes of one side and keep *all* their edges; sampling
//!   the high-average-degree side retains dense topology (Section IV-A3's
//!   "retain topology" principle).
//! - [`TwoSideNodeSampling`] (TNS, "Two-sides Bagging") — pick nodes on both
//!   sides and keep the crossing edges; a ratio-`S` sample keeps ≈ `S²` of
//!   the edges, so `S` or `N` must grow to compensate (Section IV-A4).
//!
//! [`weighted::epsilon_approx_sample`] implements the Theorem 1
//! ε-approximation (edges kept independently with probability `p`, weights
//! rescaled by `1/p`), and [`theory`] provides the Eq. 3 expectations and
//! the Lemma 1 crossover degree used to validate the samplers empirically.
//!
//! All samplers are deterministic functions of `(graph, ratio, seed)` —
//! in fact of `(population sizes, ratio, seed)`, which is what lets
//! [`stability::spec_unaffected`] prove a cached draw identical across a
//! snapshot delta for incremental scans.
//! Each method emits its draw as a [`ensemfdet_graph::SampleSpec`]
//! (via [`Sampler::sample_spec`] into a reusable [`SamplerScratch`]),
//! which the engine resolves lazily against the shared parent snapshot;
//! [`Sampler::sample`] materializes the same spec into a
//! [`ensemfdet_graph::SampledGraph`] as the reference path.

pub mod method;
pub mod ons;
pub mod res;
pub mod scratch;
pub mod seed;
pub mod stability;
pub mod theory;
pub mod tns;
pub mod weighted;

pub use method::{Sampler, SamplingMethod};
pub use ons::{OneSideNodeSampling, Side};
pub use res::RandomEdgeSampling;
pub use scratch::SamplerScratch;
pub use stability::spec_unaffected;
pub use tns::TwoSideNodeSampling;
