//! Random Edge Sampling (RES, Section IV-A2).
//!
//! Selects `S·|E|` edges uniformly **without replacement** and induces the
//! subgraph on their endpoints. Per Lemma 1 this samples high-degree nodes
//! at a higher rate than node sampling, so the dense (fraud-suspicious)
//! components survive sampling disproportionately often — exactly the bias
//! the ensemble wants.

use crate::method::{sample_count, Sampler};
use crate::scratch::SamplerScratch;
use crate::seed::splitmix64;
use ensemfdet_graph::{BipartiteGraph, SampleSpec, SpecKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform without-replacement edge sampler.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomEdgeSampling;

impl Sampler for RandomEdgeSampling {
    fn sample_spec(
        &self,
        g: &BipartiteGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SamplerScratch,
        spec: &mut SampleSpec,
    ) {
        let m = g.num_edges();
        let take = sample_count(m, ratio);
        let mut rng = StdRng::seed_from_u64(splitmix64(seed));
        spec.reset(SpecKind::EdgeSubset);
        scratch.floyd_fill(m, take, &mut rng, |e| spec.edges.push(e));
    }

    fn name(&self) -> &'static str {
        "Random_Edge_Bagging"
    }
}

/// Floyd's algorithm: `k` distinct values from `0..n` in O(k) expected
/// time — per-sample cost stays proportional to the sample, not the
/// graph, which is what makes `S = 0.01` runs cheap. Convenience wrapper
/// over [`SamplerScratch::floyd_fill`] for one-shot draws.
#[cfg(test)]
pub(crate) fn floyd_sample(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut scratch = SamplerScratch::new();
    let mut out = Vec::with_capacity(k);
    scratch.floyd_fill(n, k, rng, |i| out.push(i));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn big_graph() -> BipartiteGraph {
        let edges: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 50, (i * 7) % 40)).collect();
        BipartiteGraph::from_edges(50, 40, edges).unwrap()
    }

    #[test]
    fn sample_size_matches_ratio() {
        let g = big_graph();
        let s = RandomEdgeSampling.sample(&g, 0.1, 7);
        assert_eq!(s.graph.num_edges(), 50);
    }

    #[test]
    fn sampled_edges_exist_in_parent() {
        let g = big_graph();
        let s = RandomEdgeSampling.sample(&g, 0.2, 11);
        let parent_edges: std::collections::HashSet<(u32, u32)> =
            g.edge_slice().iter().copied().collect();
        for (_, lu, lv, _) in s.graph.edges() {
            let pe = (s.parent_user(lu).0, s.parent_merchant(lv).0);
            assert!(parent_edges.contains(&pe));
        }
    }

    #[test]
    fn no_duplicate_edges() {
        let g = big_graph();
        let s = RandomEdgeSampling.sample(&g, 0.5, 3);
        // Without replacement over distinct parent edge ids: mapped-back
        // endpoint multiset has no more copies of an edge than the parent.
        let mut seen: std::collections::HashMap<(u32, u32), usize> = Default::default();
        for (_, lu, lv, _) in s.graph.edges() {
            *seen
                .entry((s.parent_user(lu).0, s.parent_merchant(lv).0))
                .or_insert(0) += 1;
        }
        let mut parent_count: std::collections::HashMap<(u32, u32), usize> = Default::default();
        for &e in g.edge_slice() {
            *parent_count.entry(e).or_insert(0) += 1;
        }
        for (e, c) in seen {
            assert!(c <= parent_count[&e], "edge {e:?} oversampled");
        }
    }

    #[test]
    fn full_ratio_returns_whole_edge_set() {
        let g = big_graph();
        let s = RandomEdgeSampling.sample(&g, 1.0, 5);
        assert_eq!(s.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn empty_graph_samples_empty() {
        let g = BipartiteGraph::from_edges(0, 0, vec![]).unwrap();
        let s = RandomEdgeSampling.sample(&g, 0.5, 1);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn floyd_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [0usize, 1, 10, 100] {
            let ids = floyd_sample(100, k, &mut rng);
            assert_eq!(ids.len(), k);
            let set: HashSet<usize> = ids.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates at k={k}");
            assert!(ids.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn floyd_sample_is_roughly_uniform() {
        // Draw 30 of 100, many times; each index should appear ~30% of draws.
        let mut counts = vec![0usize; 100];
        for seed in 0..400u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in floyd_sample(100, 30, &mut rng) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / 400.0;
            assert!(
                (0.15..=0.45).contains(&freq),
                "index {i} frequency {freq} deviates from 0.30"
            );
        }
    }
}
