//! Draw stability: when is a cached sample provably unaffected by a
//! snapshot delta?
//!
//! Incremental scans want to reuse the per-sample results of a previous
//! epoch. That is sound only when the sample would come out *bit-identical*
//! if re-drawn and re-peeled against the new snapshot — and the sampling
//! layer is where that proof lives, because it owns the draw functions.
//!
//! Every sampler here draws with Floyd's algorithm over a contiguous id
//! population, seeded by `splitmix64(sample seed)`:
//!
//! | method | population | spec kind |
//! |--------|------------|-----------|
//! | RES    | `0..num_edges`              | `EdgeSubset` |
//! | ONS/U  | `0..num_users`              | `UserSubset` |
//! | ONS/M  | `0..num_merchants`          | `MerchantSubset` |
//! | TNS    | both node ranges, one RNG stream | `NodeSubsets` |
//!
//! So the *selection* is a pure function of `(population size, ratio,
//! seed)`. Across a [`GraphDelta`] whose relevant dimensions are
//! unchanged, a re-draw provably yields the same selection without
//! running it — and the sample's materialized subgraph is then a pure
//! function of the selected nodes' adjacency, which the delta's touched
//! sets bound exactly. [`spec_unaffected`] combines both facts.
//!
//! Two deliberate asymmetries fall out of the table:
//!
//! * **`EdgeSubset` is all-or-nothing.** Edge ids index the parent's
//!   sorted edge array, and any new unique edge both grows the population
//!   (different draw) and splices into the sorted order (shifting ids).
//!   RES samples are therefore reusable only across deltas where the
//!   graph did not change at all — which sustained repeat-purchase
//!   traffic produces constantly, since duplicates dedup away.
//! * **Node subsets survive unrelated growth in edges.** A `UserSubset`
//!   draw depends only on the user population; new edges among
//!   *unselected* users leave both the selection and the induced subgraph
//!   untouched.

use ensemfdet_graph::{GraphDelta, SampleSpec, SpecKind};

/// `true` when the cached sample identified by `spec` (as drawn against
/// the delta's *base* snapshot) is provably bit-identical against the
/// delta's *new* snapshot: the draw population is unchanged (same
/// selection) and the selection is disjoint from the touched sets (same
/// subgraph).
///
/// `false` means "must re-run", not "definitely different" — a touched
/// node can change a sample's subgraph without changing its verdict, but
/// incremental scans re-peel it anyway to stay bit-identical.
pub fn spec_unaffected(spec: &SampleSpec, delta: &GraphDelta) -> bool {
    if delta.graph_unchanged() {
        return true;
    }
    let (base_nu, base_nv, base_ne) = delta.base_dims;
    let (new_nu, new_nv, new_ne) = delta.new_dims;
    match spec.kind {
        // Any change to the edge set moves both the draw population and
        // the id space the selection indexes; only an identical graph
        // (handled above) keeps an edge-subset sample clean. The explicit
        // check is kept for clarity — `graph_unchanged` false with equal
        // edge counts cannot happen in the append-only store.
        SpecKind::EdgeSubset => base_ne == new_ne && delta.touched_nodes() == 0,
        SpecKind::UserSubset => {
            base_nu == new_nu && spec.users.iter().all(|u| !delta.touches_user(u.0))
        }
        SpecKind::MerchantSubset => {
            base_nv == new_nv
                && spec.merchants.iter().all(|v| !delta.touches_merchant(v.0))
        }
        // TNS draws both sides from one RNG stream: the user draw count
        // depends on nu and the merchant draw *state* on everything drawn
        // before it, so both populations must hold still.
        SpecKind::NodeSubsets => {
            base_nu == new_nu
                && base_nv == new_nv
                && spec.users.iter().all(|u| !delta.touches_user(u.0))
                && spec.merchants.iter().all(|v| !delta.touches_merchant(v.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sampler, SamplerScratch, SamplingMethod};
    use ensemfdet_graph::BipartiteGraph;

    fn draw(method: SamplingMethod, g: &BipartiteGraph, seed: u64) -> SampleSpec {
        let mut scratch = SamplerScratch::new();
        let mut spec = SampleSpec::new();
        method.sample_spec(g, 0.4, seed, &mut scratch, &mut spec);
        spec
    }

    fn grid(nu: u32, nv: u32) -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..nu {
            for v in 0..nv {
                if (u + v) % 3 != 0 {
                    edges.push((u, v));
                }
            }
        }
        BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap()
    }

    #[test]
    fn unchanged_graph_keeps_every_kind_clean() {
        let g = grid(20, 12);
        let delta = GraphDelta::unchanged(1, 2, (20, 12, g.num_edges()));
        for m in SamplingMethod::ALL {
            assert!(spec_unaffected(&draw(m, &g, 7), &delta), "{m}");
        }
    }

    #[test]
    fn edge_subset_dirty_on_any_new_edge() {
        let g = grid(20, 12);
        let dims = (20usize, 12usize, g.num_edges());
        let delta = GraphDelta::from_new_edges(
            1,
            2,
            dims,
            (20, 12, g.num_edges() + 1),
            &[(19, 11)],
        );
        let spec = draw(SamplingMethod::RandomEdge, &g, 7);
        assert!(!spec_unaffected(&spec, &delta));
    }

    #[test]
    fn user_subset_clean_iff_disjoint_and_population_fixed() {
        let g = grid(20, 12);
        let spec = draw(SamplingMethod::OneSideUser, &g, 7);
        let dims = (20usize, 12usize, g.num_edges());
        let grown = (20, 12, g.num_edges() + 1);
        let selected = spec.users[0].0;
        let unselected = (0..20u32)
            .find(|u| !spec.users.iter().any(|s| s.0 == *u))
            .expect("0.4 ratio leaves unselected users");

        // New edge on an unselected user: clean.
        let clean = GraphDelta::from_new_edges(1, 2, dims, grown, &[(unselected, 3)]);
        assert!(spec_unaffected(&spec, &clean));
        // Same edge shape, but landing on a selected user: dirty.
        let dirty = GraphDelta::from_new_edges(1, 2, dims, grown, &[(selected, 3)]);
        assert!(!spec_unaffected(&spec, &dirty));
        // User population growth changes the draw itself: dirty even when
        // no selected user is touched.
        let pop = GraphDelta::from_new_edges(
            1,
            2,
            dims,
            (21, 12, g.num_edges() + 1),
            &[(20, 3)],
        );
        assert!(!spec_unaffected(&spec, &pop));
    }

    #[test]
    fn merchant_subset_tracks_merchant_side() {
        let g = grid(20, 12);
        let spec = draw(SamplingMethod::OneSideMerchant, &g, 5);
        let dims = (20usize, 12usize, g.num_edges());
        let grown = (20, 12, g.num_edges() + 1);
        let unselected = (0..12u32)
            .find(|v| !spec.merchants.iter().any(|s| s.0 == *v))
            .expect("0.4 ratio leaves unselected merchants");
        let clean = GraphDelta::from_new_edges(1, 2, dims, grown, &[(4, unselected)]);
        assert!(spec_unaffected(&spec, &clean));
        let dirty =
            GraphDelta::from_new_edges(1, 2, dims, grown, &[(4, spec.merchants[0].0)]);
        assert!(!spec_unaffected(&spec, &dirty));
    }

    #[test]
    fn two_side_requires_both_populations_fixed() {
        let g = grid(20, 12);
        let spec = draw(SamplingMethod::TwoSide, &g, 3);
        let dims = (20usize, 12usize, g.num_edges());
        // Merchant population growth dirties TNS even if only users were
        // touched by the new edge's endpoints.
        let pop = GraphDelta::from_new_edges(
            1,
            2,
            dims,
            (20, 13, g.num_edges() + 1),
            &[(0, 12)],
        );
        assert!(!spec_unaffected(&spec, &pop));
    }

    /// The soundness claim behind reuse, checked directly: with
    /// populations unchanged, a re-draw against the grown graph yields
    /// the exact same selection.
    #[test]
    fn redraw_is_identical_when_populations_hold() {
        let g = grid(20, 12);
        // Add edges between existing nodes only (dims preserved) — node
        // samplers must draw identically; RES must not (edge count moved).
        let mut edges = g.edge_slice().to_vec();
        edges.push((0, 0));
        edges.push((3, 9));
        edges.sort_unstable();
        edges.dedup();
        let g2 = BipartiteGraph::from_edges(20, 12, edges).unwrap();

        for m in [
            SamplingMethod::OneSideUser,
            SamplingMethod::OneSideMerchant,
            SamplingMethod::TwoSide,
        ] {
            let a = draw(m, &g, 11);
            let b = draw(m, &g2, 11);
            assert_eq!(a.users, b.users, "{m}");
            assert_eq!(a.merchants, b.merchants, "{m}");
        }
        let a = draw(SamplingMethod::RandomEdge, &g, 11);
        let b = draw(SamplingMethod::RandomEdge, &g2, 11);
        assert_ne!(a.edges, b.edges, "RES population moved, draw must too");
    }
}
