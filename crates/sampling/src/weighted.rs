//! Weighted ε-approximation edge sampling (Theorem 1).
//!
//! Theorem 1 (after Gao et al. \[9\]): sampling each edge independently with
//! probability `p` and re-weighting the kept edges by `1/p` yields a
//! subgraph whose density score is within `(1 ± ε)` of the original, with
//! high probability, provided `p ≥ 3(d+2)·ln n / (ε²·c)` where `n` is the
//! node count, `c = Ω(ln n)` the minimum degree, and `d` a confidence
//! parameter.
//!
//! This is the theoretical justification that sampling does not destroy the
//! density signal; the production samplers in [`crate::res`] use fixed-size
//! without-replacement draws for predictable per-sample cost, but this
//! module provides the literal construction so the guarantee can be checked
//! empirically (see the crate's property tests).

use crate::seed::splitmix64;
use ensemfdet_graph::{BipartiteGraph, EdgeId, SampledGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The Theorem 1 edge-keeping probability
/// `p = min(1, 3(d+2)·ln n / (ε²·c))`.
///
/// `n`: number of vertices; `c`: minimum node degree (the theorem requires
/// `c = Ω(ln n)`); `d`: confidence exponent (failure probability `n^{-d}`);
/// `epsilon`: target relative error.
pub fn theorem1_probability(n: usize, c: f64, d: f64, epsilon: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(c > 0.0, "minimum degree must be positive");
    if n < 2 {
        return 1.0;
    }
    let p = 3.0 * (d + 2.0) * (n as f64).ln() / (epsilon * epsilon * c);
    p.min(1.0)
}

/// Samples each edge independently with probability `p`, scaling kept edge
/// weights by `1/p` — the ε-approximation construction of Theorem 1.
pub fn epsilon_approx_sample(g: &BipartiteGraph, p: f64, seed: u64) -> SampledGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if p <= 0.0 {
        return SampledGraph::from_edge_subset(g, &[], 1.0);
    }
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xE95));
    let kept: Vec<EdgeId> = (0..g.num_edges())
        .filter(|_| rng.random::<f64>() < p)
        .collect();
    SampledGraph::from_edge_subset(g, &kept, 1.0 / p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_graph() -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..40u32 {
            for v in 0..30u32 {
                if (u * 31 + v * 17) % 3 != 0 {
                    edges.push((u, v));
                }
            }
        }
        BipartiteGraph::from_edges(40, 30, edges).unwrap()
    }

    #[test]
    fn probability_formula_monotonicity() {
        let p1 = theorem1_probability(1000, 50.0, 1.0, 0.5);
        let p2 = theorem1_probability(1000, 50.0, 1.0, 0.25);
        assert!(p2 >= p1, "smaller epsilon needs more edges");
        let p3 = theorem1_probability(1000, 100.0, 1.0, 0.5);
        assert!(p3 <= p1, "denser graphs can sample more aggressively");
        assert!(theorem1_probability(2, 1.0, 5.0, 0.01) <= 1.0);
        assert_eq!(theorem1_probability(1, 1.0, 1.0, 0.5), 1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        theorem1_probability(100, 10.0, 1.0, 0.0);
    }

    #[test]
    fn kept_weight_is_unbiased() {
        // E[total weight of sample] = |E| because each edge contributes
        // p · (1/p) = 1 in expectation.
        let g = dense_graph();
        let p = 0.3;
        let trials = 60;
        let mut total = 0.0;
        for seed in 0..trials {
            total += epsilon_approx_sample(&g, p, seed).graph.total_weight();
        }
        let mean = total / trials as f64;
        let expect = g.num_edges() as f64;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean sampled weight {mean:.1} vs |E| = {expect}"
        );
    }

    #[test]
    fn kept_edges_carry_inverse_probability_weight() {
        let g = dense_graph();
        let s = epsilon_approx_sample(&g, 0.25, 7);
        assert!(s.graph.is_weighted());
        for (e, _, _, w) in s.graph.edges() {
            let _ = e;
            assert!((w - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn p_one_keeps_everything() {
        let g = dense_graph();
        let s = epsilon_approx_sample(&g, 1.0, 3);
        assert_eq!(s.graph.num_edges(), g.num_edges());
        assert!((s.graph.total_weight() - g.num_edges() as f64).abs() < 1e-9);
    }

    #[test]
    fn p_zero_keeps_nothing() {
        let g = dense_graph();
        let s = epsilon_approx_sample(&g, 0.0, 3);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_probability_rejected() {
        epsilon_approx_sample(&dense_graph(), 1.5, 0);
    }
}
