//! Reusable per-sampler scratch: the allocation-free Floyd draw.
//!
//! The original `floyd_sample` kept its "already chosen" set in a
//! `HashSet`, costing one hash-map allocation plus per-pick hashing on
//! every draw. [`SamplerScratch`] replaces it with an epoch-stamped mark
//! buffer: membership is one array read, invalidation is an epoch bump,
//! and the buffer is reused across every draw a thread performs — so a
//! steady-state `S = 0.01` RES draw allocates nothing at all.

use rand::rngs::StdRng;
use rand::RngExt;

/// Reusable scratch for without-replacement draws.
///
/// The mark buffer grows monotonically to the largest population seen;
/// `mark[i] == epoch` means `i` was already picked in the current draw.
/// The epoch wrap (once per 2³² draws) triggers the only full clear.
#[derive(Clone, Debug, Default)]
pub struct SamplerScratch {
    mark: Vec<u32>,
    epoch: u32,
}

impl SamplerScratch {
    /// A fresh scratch; the mark buffer grows on first use.
    pub fn new() -> Self {
        SamplerScratch::default()
    }

    /// Starts a new draw over a population of `n`.
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.epoch = 1;
        }
    }

    /// Floyd's algorithm: feeds `k` distinct values from `0..n` to `push`
    /// in O(k) time with zero steady-state allocation.
    ///
    /// The pick sequence is bit-for-bit the one the original
    /// `HashSet`-based implementation produced for the same RNG stream,
    /// so every downstream sample (and therefore every ensemble vote) is
    /// unchanged by the swap.
    pub fn floyd_fill(
        &mut self,
        n: usize,
        k: usize,
        rng: &mut StdRng,
        mut push: impl FnMut(usize),
    ) {
        debug_assert!(k <= n);
        self.begin(n);
        for j in (n - k)..n {
            let t = rng.random_range(0..=j);
            let pick = if self.mark[t] == self.epoch { j } else { t };
            self.mark[pick] = self.epoch;
            push(pick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn reuse_across_draws_stays_distinct() {
        let mut scratch = SamplerScratch::new();
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            scratch.floyd_fill(50, 25, &mut rng, |i| out.push(i));
            assert_eq!(out.len(), 25);
            let set: std::collections::HashSet<usize> = out.iter().copied().collect();
            assert_eq!(set.len(), 25, "duplicates at seed {seed}");
            assert!(out.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn shrinking_population_reuses_larger_buffer() {
        let mut scratch = SamplerScratch::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut big = Vec::new();
        scratch.floyd_fill(1000, 10, &mut rng, |i| big.push(i));
        let mut small = Vec::new();
        scratch.floyd_fill(5, 5, &mut rng, |i| small.push(i));
        let mut sorted = small.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn epoch_wrap_clears_marks() {
        let mut scratch = SamplerScratch::new();
        scratch.mark.resize(4, 0);
        scratch.epoch = u32::MAX - 1;
        let mut rng = StdRng::seed_from_u64(1);
        // Two draws across the wrap; both must stay distinct.
        for _ in 0..2 {
            let mut out = Vec::new();
            scratch.floyd_fill(4, 4, &mut rng, |i| out.push(i));
            out.sort_unstable();
            assert_eq!(out, vec![0, 1, 2, 3]);
        }
        assert_eq!(scratch.epoch, 1, "wrap resets to epoch 1");
    }
}
