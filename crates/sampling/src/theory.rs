//! Sampling theory: the Eq. 3 degree expectations and the Lemma 1 crossover.
//!
//! For a node of original degree `q`:
//!
//! - Node Sampling includes it with probability `p_v`, so the expected count
//!   of sampled degree-`q` nodes is `E_NS[d_q] = f_D(q) · p_v`.
//! - Edge Sampling includes it iff *any* of its `q` edges is drawn, so
//!   `E_ES[d_q] = f_D(q) · (1 − (1 − p_e)^q)`.
//!
//! Lemma 1: for `q > log(1 − p_v) / log(1 − p_e)`, edge sampling includes
//! degree-`q` nodes at a higher rate than node sampling — the formal reason
//! RES is biased toward the dense, suspicious parts of the graph.

/// `E_NS[d_q]` of Eq. 3: expected number of sampled nodes of original degree
/// `q` under node sampling with node-probability `pv`.
pub fn expected_ns(f_d_q: usize, pv: f64) -> f64 {
    f_d_q as f64 * pv
}

/// `E_ES[d_q]` of Eq. 3: expected number of nodes of original degree `q`
/// that appear in an edge sample with edge-probability `pe`.
pub fn expected_es(f_d_q: usize, pe: f64, q: u32) -> f64 {
    f_d_q as f64 * (1.0 - (1.0 - pe).powi(q as i32))
}

/// The Lemma 1 crossover degree `q* = log(1 − p_v) / log(1 − p_e)`:
/// for `q > q*`, `E_ES[d_q] > E_NS[d_q]`.
///
/// Returns `f64::INFINITY` when `pe = 0` (edge sampling never selects
/// anything) and `0.0` when `pv = 0`.
pub fn lemma1_crossover(pv: f64, pe: f64) -> f64 {
    assert!((0.0..1.0).contains(&pv), "pv must be in [0, 1)");
    assert!((0.0..1.0).contains(&pe), "pe must be in [0, 1)");
    if pv == 0.0 {
        return 0.0;
    }
    if pe == 0.0 {
        return f64::INFINITY;
    }
    (1.0 - pv).ln() / (1.0 - pe).ln()
}

/// Per-node inclusion probability under edge sampling:
/// `1 − (1 − pe)^q` — the complement of missing all `q` edges.
pub fn es_inclusion_probability(pe: f64, q: u32) -> f64 {
    1.0 - (1.0 - pe).powi(q as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_expectation_is_linear_in_count() {
        assert_eq!(expected_ns(100, 0.1), 10.0);
        assert_eq!(expected_ns(0, 0.5), 0.0);
    }

    #[test]
    fn es_expectation_saturates_with_degree() {
        // High-degree nodes are almost surely included.
        let low = expected_es(100, 0.1, 1);
        let high = expected_es(100, 0.1, 100);
        assert!(low < high);
        assert!((low - 10.0).abs() < 1e-9); // q=1: exactly pe
        assert!(high > 99.9);
    }

    #[test]
    fn lemma1_holds_on_both_sides_of_crossover() {
        let (pv, pe) = (0.2, 0.1);
        let qstar = lemma1_crossover(pv, pe);
        assert!(qstar > 1.0 && qstar.is_finite());
        let q_below = qstar.floor().max(1.0) as u32;
        let q_above = qstar.ceil() as u32 + 1;
        // Below the crossover NS wins (or ties); above, ES wins.
        assert!(expected_es(1000, pe, q_below) <= expected_ns(1000, pv) + 1e-6);
        assert!(expected_es(1000, pe, q_above) > expected_ns(1000, pv));
    }

    #[test]
    fn equal_probabilities_cross_at_degree_one() {
        // pv = pe ⇒ q* = 1: ES over-represents every node of degree ≥ 2.
        let qstar = lemma1_crossover(0.15, 0.15);
        assert!((qstar - 1.0).abs() < 1e-12);
        assert!(expected_es(10, 0.15, 2) > expected_ns(10, 0.15));
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(lemma1_crossover(0.0, 0.5), 0.0);
        assert_eq!(lemma1_crossover(0.5, 0.0), f64::INFINITY);
    }

    #[test]
    fn inclusion_probability_bounds() {
        assert_eq!(es_inclusion_probability(0.3, 0), 0.0);
        assert!((es_inclusion_probability(0.3, 1) - 0.3).abs() < 1e-12);
        assert!(es_inclusion_probability(0.3, 50) <= 1.0);
        // Monotone in q.
        let mut prev = 0.0;
        for q in 0..20 {
            let p = es_inclusion_probability(0.2, q);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "pv must be in")]
    fn crossover_rejects_pv_one() {
        lemma1_crossover(1.0, 0.5);
    }
}
