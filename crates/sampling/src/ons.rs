//! One-side Node Sampling (ONS, Section IV-A3).
//!
//! Samples `S·|side|` nodes from one chosen side uniformly and keeps *all*
//! their incident edges. The paper's "retain topology" principle: when
//! `D_avg(V) ≫ D_avg(U)` (merchants much busier than PINs, as in the JD
//! datasets), sampling the *merchant* side preserves dense components —
//! one sampled high-degree merchant drags its whole user neighborhood into
//! the sample — whereas sampling the PIN side shatters them. Figure 5
//! demonstrates exactly this gap.

use crate::method::{sample_count, Sampler};
use crate::scratch::SamplerScratch;
use crate::seed::splitmix64;
use ensemfdet_graph::{BipartiteGraph, MerchantId, SampleSpec, SpecKind, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which side of the bipartite graph to sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Sample user (PIN) nodes.
    User,
    /// Sample merchant nodes.
    Merchant,
}

/// Uniform node sampler over one side, keeping all incident edges.
#[derive(Clone, Copy, Debug)]
pub struct OneSideNodeSampling {
    side: Side,
}

impl OneSideNodeSampling {
    /// Sampler for the given side.
    pub fn new(side: Side) -> Self {
        OneSideNodeSampling { side }
    }

    /// The sampled side.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Task-oriented default (Section IV-A3): for dense-subgraph detection,
    /// sample the side with the *higher* average degree so dense topology is
    /// retained.
    pub fn auto(g: &BipartiteGraph) -> Self {
        if g.avg_merchant_degree() >= g.avg_user_degree() {
            Self::new(Side::Merchant)
        } else {
            Self::new(Side::User)
        }
    }
}

impl Sampler for OneSideNodeSampling {
    fn sample_spec(
        &self,
        g: &BipartiteGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SamplerScratch,
        spec: &mut SampleSpec,
    ) {
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x0115));
        match self.side {
            Side::User => {
                let take = sample_count(g.num_users(), ratio);
                spec.reset(SpecKind::UserSubset);
                scratch.floyd_fill(g.num_users(), take, &mut rng, |i| {
                    spec.users.push(UserId(i as u32))
                });
            }
            Side::Merchant => {
                let take = sample_count(g.num_merchants(), ratio);
                spec.reset(SpecKind::MerchantSubset);
                scratch.floyd_fill(g.num_merchants(), take, &mut rng, |i| {
                    spec.merchants.push(MerchantId(i as u32))
                });
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.side {
            Side::User => "Node_PIN_Bagging",
            Side::Merchant => "Node_Merchant_Bagging",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_graph() -> BipartiteGraph {
        // 60 users × 6 merchants, each user buys from 2 merchants:
        // D_avg(V) = 20 ≫ D_avg(U) = 2.
        let mut edges = Vec::new();
        for u in 0..60u32 {
            edges.push((u, u % 6));
            edges.push((u, (u + 1) % 6));
        }
        BipartiteGraph::from_edges(60, 6, edges).unwrap()
    }

    #[test]
    fn user_side_sample_size() {
        let g = skewed_graph();
        let s = OneSideNodeSampling::new(Side::User).sample(&g, 0.25, 3);
        assert_eq!(s.graph.num_users(), 15);
        // All incident edges of sampled users are kept: 2 per user.
        assert_eq!(s.graph.num_edges(), 30);
    }

    #[test]
    fn merchant_side_sample_keeps_neighborhoods() {
        let g = skewed_graph();
        let s = OneSideNodeSampling::new(Side::Merchant).sample(&g, 0.5, 3);
        assert_eq!(s.graph.num_merchants(), 3);
        // Each merchant has 20 incident edges.
        assert_eq!(s.graph.num_edges(), 60);
        // Merchant-side ONS retains the high merchant degree exactly.
        let max_deg = s.graph.merchant_degrees().into_iter().max().unwrap();
        assert_eq!(max_deg, 20);
    }

    #[test]
    fn auto_picks_the_denser_side() {
        let g = skewed_graph();
        assert_eq!(OneSideNodeSampling::auto(&g).side(), Side::Merchant);
        // Flip the graph: users dense, merchants sparse.
        let flipped_edges: Vec<(u32, u32)> =
            g.edge_slice().iter().map(|&(u, v)| (v, u)).collect();
        let gf = BipartiteGraph::from_edges(6, 60, flipped_edges).unwrap();
        assert_eq!(OneSideNodeSampling::auto(&gf).side(), Side::User);
    }

    #[test]
    fn sampled_nodes_map_back() {
        let g = skewed_graph();
        let s = OneSideNodeSampling::new(Side::User).sample(&g, 0.1, 9);
        for (local, _) in s.orig_users.iter().enumerate() {
            let pu = s.parent_user(UserId(local as u32));
            assert!(pu.0 < 60);
            // Degree is preserved for sampled users (all edges kept).
            assert_eq!(
                s.graph.user_degree(UserId(local as u32)),
                g.user_degree(pu)
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = skewed_graph();
        let s1 = OneSideNodeSampling::new(Side::Merchant).sample(&g, 0.4, 17);
        let s2 = OneSideNodeSampling::new(Side::Merchant).sample(&g, 0.4, 17);
        assert_eq!(s1.orig_merchants, s2.orig_merchants);
        assert_eq!(s1.graph.edge_slice(), s2.graph.edge_slice());
    }
}
