//! The [`Sampler`] trait and the [`SamplingMethod`] enum dispatching over
//! the paper's three strategies.

use crate::ons::{OneSideNodeSampling, Side};
use crate::res::RandomEdgeSampling;
use crate::scratch::SamplerScratch;
use crate::tns::TwoSideNodeSampling;
use ensemfdet_graph::{BipartiteGraph, SampleSpec, SampledGraph};
use std::fmt;

/// A structural sampling method for bipartite graphs.
///
/// Implementations must be deterministic functions of
/// `(graph, ratio, seed)` — the ensemble relies on this for reproducible
/// parallel runs.
///
/// ```
/// use ensemfdet_sampling::{Sampler, SamplingMethod};
/// use ensemfdet_graph::BipartiteGraph;
///
/// let g = BipartiteGraph::from_edges(
///     10, 10, (0..40u32).map(|i| (i % 10, (i * 3) % 10)).collect(),
/// ).unwrap();
/// let sample = SamplingMethod::RandomEdge.sample(&g, 0.25, 42);
/// assert_eq!(sample.graph.num_edges(), 10); // S · |E|
/// // Local ids map back to the parent graph:
/// let (lu, _) = sample.graph.edge_endpoints(0);
/// assert!(sample.parent_user(lu).0 < 10);
/// ```
pub trait Sampler {
    /// Draws one sample at the given ratio `S ∈ (0, 1]` as a *spec* — the
    /// raw selection of parent edge/node ids written into `spec`, with
    /// `scratch` providing the reusable mark buffer for the
    /// without-replacement draw. Nothing is materialized: the engine
    /// resolves the spec lazily against the shared parent snapshot
    /// (`CsrView::rebuild_from_spec`), and a steady-state call allocates
    /// nothing once `scratch` and `spec` have grown.
    fn sample_spec(
        &self,
        g: &BipartiteGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SamplerScratch,
        spec: &mut SampleSpec,
    );

    /// Draws one sampled subgraph at the given ratio `S ∈ (0, 1]` by
    /// materializing the spec — the reference path, byte-identical to the
    /// pre-spec behavior.
    fn sample(&self, g: &BipartiteGraph, ratio: f64, seed: u64) -> SampledGraph {
        let mut scratch = SamplerScratch::new();
        let mut spec = SampleSpec::new();
        self.sample_spec(g, ratio, seed, &mut scratch, &mut spec);
        spec.materialize(g)
    }

    /// Human-readable name (used in experiment output).
    fn name(&self) -> &'static str;
}

/// Enum-dispatched sampling method, mirroring the paper's four "bagging"
/// variants in Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingMethod {
    /// Random Edge Sampling (Section IV-A2) — "Random_Edge_Bagging".
    RandomEdge,
    /// One-side sampling of the user/PIN side — "Node_PIN_Bagging".
    OneSideUser,
    /// One-side sampling of the merchant side — "Node_Merchant_Bagging".
    OneSideMerchant,
    /// Two-sides node sampling (Section IV-A4) — "Two_sides_Bagging".
    TwoSide,
}

impl SamplingMethod {
    /// All four variants, in the order Figure 5 plots them.
    pub const ALL: [SamplingMethod; 4] = [
        SamplingMethod::TwoSide,
        SamplingMethod::OneSideMerchant,
        SamplingMethod::OneSideUser,
        SamplingMethod::RandomEdge,
    ];
}

impl Sampler for SamplingMethod {
    fn sample_spec(
        &self,
        g: &BipartiteGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut SamplerScratch,
        spec: &mut SampleSpec,
    ) {
        match self {
            SamplingMethod::RandomEdge => {
                RandomEdgeSampling.sample_spec(g, ratio, seed, scratch, spec)
            }
            SamplingMethod::OneSideUser => {
                OneSideNodeSampling::new(Side::User).sample_spec(g, ratio, seed, scratch, spec)
            }
            SamplingMethod::OneSideMerchant => {
                OneSideNodeSampling::new(Side::Merchant).sample_spec(g, ratio, seed, scratch, spec)
            }
            SamplingMethod::TwoSide => {
                TwoSideNodeSampling.sample_spec(g, ratio, seed, scratch, spec)
            }
        }
    }

    fn name(&self) -> &'static str {
        match self {
            SamplingMethod::RandomEdge => "Random_Edge_Bagging",
            SamplingMethod::OneSideUser => "Node_PIN_Bagging",
            SamplingMethod::OneSideMerchant => "Node_Merchant_Bagging",
            SamplingMethod::TwoSide => "Two_sides_Bagging",
        }
    }
}

impl fmt::Display for SamplingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of items to draw for ratio `S` over a population of `n`:
/// `round(S·n)` clamped to `[min(1, n), n]` so a nonempty population never
/// yields an empty (useless) sample.
pub(crate) fn sample_count(n: usize, ratio: f64) -> usize {
    if n == 0 {
        return 0;
    }
    let raw = (ratio * n as f64).round() as usize;
    raw.clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::GraphBuilder;
    use ensemfdet_graph::{MerchantId, UserId};

    fn grid_graph(nu: u32, nv: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::with_min_sizes(nu as usize, nv as usize);
        for u in 0..nu {
            for v in 0..nv {
                if (u + v) % 3 != 0 {
                    b.add_edge(UserId(u), MerchantId(v));
                }
            }
        }
        b.build()
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(SamplingMethod::RandomEdge.name(), "Random_Edge_Bagging");
        assert_eq!(SamplingMethod::OneSideUser.name(), "Node_PIN_Bagging");
        assert_eq!(
            SamplingMethod::OneSideMerchant.name(),
            "Node_Merchant_Bagging"
        );
        assert_eq!(SamplingMethod::TwoSide.name(), "Two_sides_Bagging");
        assert_eq!(format!("{}", SamplingMethod::TwoSide), "Two_sides_Bagging");
    }

    #[test]
    fn all_methods_sample_deterministically() {
        let g = grid_graph(20, 15);
        for m in SamplingMethod::ALL {
            let a = m.sample(&g, 0.3, 99);
            let b = m.sample(&g, 0.3, 99);
            assert_eq!(a.graph.edge_slice(), b.graph.edge_slice(), "{m}");
            assert_eq!(a.orig_users, b.orig_users, "{m}");
        }
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let g = grid_graph(20, 15);
        for m in SamplingMethod::ALL {
            let a = m.sample(&g, 0.3, 1);
            let b = m.sample(&g, 0.3, 2);
            // With 200 edges at 30% the chance of identical draws is nil.
            assert_ne!(
                (a.graph.edge_slice(), &a.orig_users),
                (b.graph.edge_slice(), &b.orig_users),
                "{m}"
            );
        }
    }

    #[test]
    fn sample_count_clamps() {
        assert_eq!(sample_count(0, 0.5), 0);
        assert_eq!(sample_count(10, 0.0), 1);
        assert_eq!(sample_count(10, 0.5), 5);
        assert_eq!(sample_count(10, 2.0), 10);
        assert_eq!(sample_count(3, 0.01), 1);
    }
}
