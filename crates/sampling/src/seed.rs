//! Deterministic seed derivation.
//!
//! Every sampled graph in an ensemble run gets its own RNG seeded by
//! `derive(master_seed, sample_index)`, so results are identical no matter
//! how the worker pool schedules the samples across threads.

/// SplitMix64 step — the standard 64-bit finalizer, good enough to decouple
/// consecutive seeds.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed from a master seed and a stream index.
#[inline]
pub fn derive(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive(42, 7), derive(42, 7));
    }

    #[test]
    fn derived_seeds_are_distinct_across_streams() {
        let seeds: HashSet<u64> = (0..1000).map(|i| derive(123, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn derived_seeds_differ_across_masters() {
        assert_ne!(derive(1, 0), derive(2, 0));
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should change roughly half the output bits.
        let a = splitmix64(0);
        let b = splitmix64(1);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "poor avalanche: {flipped}");
    }
}
