#![warn(missing_docs)]

//! Dependency-free SVG rendering for the experiment harness.
//!
//! The paper communicates its results as precision–recall and
//! metric-vs-parameter line charts; this crate turns the harness's
//! [`ensemfdet_eval::PrCurve`]s (and any `(x, y)` series) into standalone
//! SVG files so `results/` holds actual figures, not just JSON.
//!
//! Everything is plain string assembly over `std` — no drawing library —
//! which keeps the output deterministic and the crate trivially auditable.
//!
//! ```
//! use ensemfdet_viz::{Chart, Series};
//!
//! let svg = Chart::new("demo", "recall", "precision")
//!     .with_series(Series {
//!         label: "EnsemFDet".into(),
//!         points: vec![(0.1, 0.9), (0.5, 0.7), (0.8, 0.4)],
//!         marker: true,
//!     })
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("EnsemFDet"));
//! ```

pub mod chart;
pub mod figures;

pub use chart::{Chart, Series};
