//! Turning the experiment harness's JSON artifacts into figure SVGs.
//!
//! Each function takes the parsed `results/<experiment>.json` value and
//! returns `(file_stem, svg)` pairs. The [`render_all`] entry point maps a
//! whole results directory; unknown or malformed files are skipped with a
//! notice rather than failing the run, so partial experiment sets still
//! produce their figures.

use crate::chart::{Chart, Series};
use serde_json::Value;
use std::path::Path;

/// Extracts a PR polyline from an array of `PrPoint` objects.
fn pr_points(points: &Value) -> Vec<(f64, f64)> {
    points
        .as_array()
        .map(|arr| {
            arr.iter()
                .filter_map(|p| Some((p.get("recall")?.as_f64()?, p.get("precision")?.as_f64()?)))
                .collect()
        })
        .unwrap_or_default()
}

/// Figure 3: one PR chart per dataset, four methods each.
pub fn fig3(json: &Value) -> Vec<(String, String)> {
    let Some(datasets) = json.as_array() else {
        return Vec::new();
    };
    datasets
        .iter()
        .enumerate()
        .filter_map(|(i, ds)| {
            let name = ds.get("dataset")?.as_str()?.to_string();
            let mut chart = Chart::new(&format!("Figure 3: {name}"), "Recall", "Precision");
            for m in ds.get("methods")?.as_array()? {
                let label = m.get("method")?.as_str()?.to_string();
                let marker = label == "FRAUDAR";
                chart = chart.with_series(Series {
                    label,
                    points: pr_points(m.get("points")?),
                    marker,
                });
            }
            Some((format!("fig3_{}", letter(i)), chart.render()))
        })
        .collect()
}

/// Figure 1: block-score curves, one series per sampled graph.
pub fn fig1(json: &Value) -> Vec<(String, String)> {
    let Some(curves) = json.as_array() else {
        return Vec::new();
    };
    let mut chart = Chart::new("Figure 1: scores of detected blocks", "Detected block", "Score");
    for c in curves {
        let Some(scores) = c.get("scores").and_then(Value::as_array) else {
            continue;
        };
        let points: Vec<(f64, f64)> = scores
            .iter()
            .enumerate()
            .filter_map(|(b, s)| Some(((b + 1) as f64, s.as_f64()?)))
            .collect();
        let label = c
            .get("sample")
            .and_then(Value::as_u64)
            .map(|i| format!("sample {i}"))
            .unwrap_or_else(|| "sample".into());
        chart = chart.with_series(Series {
            label,
            points,
            marker: false,
        });
    }
    vec![("fig1".into(), chart.render())]
}

/// Figure 9: precision/recall/F1 against the threshold `T`, per dataset.
pub fn fig9(json: &Value) -> Vec<(String, String)> {
    let Some(datasets) = json.as_array() else {
        return Vec::new();
    };
    datasets
        .iter()
        .enumerate()
        .filter_map(|(i, ds)| {
            let name = ds.get("dataset")?.as_str()?.to_string();
            let points = ds.get("points")?.as_array()?;
            let series = |key: &str| -> Vec<(f64, f64)> {
                points
                    .iter()
                    .filter_map(|p| Some((p.get("t")?.as_f64()?, p.get(key)?.as_f64()?)))
                    .collect()
            };
            let chart = Chart::new(&format!("Figure 9: {name}"), "T", "metric")
                .with_series(Series {
                    label: "precision".into(),
                    points: series("precision"),
                    marker: false,
                })
                .with_series(Series {
                    label: "recall".into(),
                    points: series("recall"),
                    marker: false,
                })
                .with_series(Series {
                    label: "F1".into(),
                    points: series("f1"),
                    marker: false,
                });
            Some((format!("fig9_{}", letter(i)), chart.render()))
        })
        .collect()
}

/// Figure 5: PR per sampling method (same schema as one fig3 dataset).
pub fn fig5(json: &Value) -> Vec<(String, String)> {
    let Some(methods) = json.as_array() else {
        return Vec::new();
    };
    let mut chart = Chart::new("Figure 5: sampling strategies", "Recall", "Precision");
    for m in methods {
        let Some(label) = m.get("method").and_then(Value::as_str) else {
            continue;
        };
        let Some(points) = m.get("points") else {
            continue;
        };
        chart = chart.with_series(Series {
            label: label.to_string(),
            points: pr_points(points),
            marker: false,
        });
    }
    vec![("fig5".into(), chart.render())]
}

/// Figure 4: F1 against the number of detected PINs, EnsemFDet vs Fraudar,
/// per dataset.
pub fn fig4(json: &Value) -> Vec<(String, String)> {
    let Some(datasets) = json.as_array() else {
        return Vec::new();
    };
    datasets
        .iter()
        .enumerate()
        .filter_map(|(i, ds)| {
            let name = ds.get("dataset")?.as_str()?.to_string();
            let series = |key: &str| -> Vec<(f64, f64)> {
                ds.get(key)
                    .and_then(Value::as_array)
                    .map(|arr| {
                        arr.iter()
                            .filter_map(|p| {
                                Some((p.get("detected")?.as_f64()?, p.get("f1")?.as_f64()?))
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            };
            let chart = Chart::new(&format!("Figure 4: {name}"), "# of detected PIN", "F1")
                .with_series(Series {
                    label: "EnsemFDet".into(),
                    points: series("ensemfdet"),
                    marker: false,
                })
                .with_series(Series {
                    label: "Fraudar".into(),
                    points: series("fraudar"),
                    marker: true,
                });
            Some((format!("fig4_{}", letter(i)), chart.render()))
        })
        .collect()
}

/// Figure 6: auto-truncation vs fixed-k PR curves.
pub fn fig6(json: &Value) -> Vec<(String, String)> {
    named_pr_chart(json, "Figure 6: truncation", "name", "fig6")
}

/// Figure 7: PR per ensemble size `N`.
pub fn fig7(json: &Value) -> Vec<(String, String)> {
    named_pr_chart(json, "Figure 7: impact of N", "n", "fig7")
}

/// Figure 8: PR per sample ratio `S`.
pub fn fig8(json: &Value) -> Vec<(String, String)> {
    named_pr_chart(json, "Figure 8: impact of S", "s", "fig8")
}

/// Shared shape: an array of objects with a label key and a `points` PR
/// array, all drawn into one chart.
fn named_pr_chart(json: &Value, title: &str, label_key: &str, stem: &str) -> Vec<(String, String)> {
    let Some(entries) = json.as_array() else {
        return Vec::new();
    };
    let mut chart = Chart::new(title, "Recall", "Precision");
    for e in entries {
        let label = match e.get(label_key) {
            Some(Value::String(s)) => s.clone(),
            Some(other) => format!("{label_key}={other}"),
            None => continue,
        };
        let Some(points) = e.get("points") else {
            continue;
        };
        chart = chart.with_series(Series {
            label,
            points: pr_points(points),
            marker: false,
        });
    }
    vec![(stem.to_string(), chart.render())]
}

/// Maps every known artifact in `dir` to SVGs next to it. Returns the
/// figure files written.
///
/// # Errors
///
/// Propagates I/O failures on writing; unreadable inputs are skipped.
pub fn render_all(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut written = Vec::new();
    let mut render = |input: &str, f: fn(&Value) -> Vec<(String, String)>| -> std::io::Result<()> {
        let path = dir.join(input);
        let Ok(raw) = std::fs::read_to_string(&path) else {
            return Ok(()); // experiment not run yet
        };
        let Ok(json) = serde_json::from_str::<Value>(&raw) else {
            eprintln!("skipping malformed {}", path.display());
            return Ok(());
        };
        for (stem, svg) in f(&json) {
            let out = dir.join(format!("{stem}.svg"));
            std::fs::write(&out, svg)?;
            written.push(out.display().to_string());
        }
        Ok(())
    };
    render("fig1_block_scores.json", fig1)?;
    render("fig3_method_comparison.json", fig3)?;
    render("fig4_vs_fraudar.json", fig4)?;
    render("fig5_sampling_methods.json", fig5)?;
    render("fig6_truncation.json", fig6)?;
    render("fig7_impact_n.json", fig7)?;
    render("fig8_impact_s.json", fig8)?;
    render("fig9_impact_t.json", fig9)?;
    Ok(written)
}

fn letter(i: usize) -> char {
    (b'a' + (i % 26) as u8) as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn fig3_renders_per_dataset() {
        let json = json!([
            {
                "dataset": "Dataset #1",
                "methods": [
                    {"method": "FRAUDAR", "points": [
                        {"recall": 0.1, "precision": 0.9},
                        {"recall": 0.5, "precision": 0.6}
                    ]},
                    {"method": "EnsemFDet", "points": [
                        {"recall": 0.2, "precision": 0.8}
                    ]}
                ]
            }
        ]);
        let figs = fig3(&json);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].0, "fig3_a");
        assert!(figs[0].1.contains("FRAUDAR"));
        assert!(figs[0].1.contains("<circle"), "Fraudar gets markers");
    }

    #[test]
    fn fig9_renders_three_series() {
        let json = json!([{
            "dataset": "Dataset #2",
            "points": [
                {"t": 1.0, "precision": 0.5, "recall": 0.9, "f1": 0.64},
                {"t": 2.0, "precision": 0.7, "recall": 0.6, "f1": 0.65}
            ]
        }]);
        let figs = fig9(&json);
        assert_eq!(figs.len(), 1);
        let svg = &figs[0].1;
        assert!(svg.contains("precision") && svg.contains("recall") && svg.contains("F1"));
    }

    #[test]
    fn fig1_renders_all_samples_in_one_chart() {
        let json = json!([
            {"sample": 0, "scores": [0.5, 0.4, 0.2], "k_hat": 2},
            {"sample": 1, "scores": [0.6, 0.3], "k_hat": 1}
        ]);
        let figs = fig1(&json);
        assert_eq!(figs.len(), 1);
        assert!(figs[0].1.contains("sample 0"));
        assert!(figs[0].1.contains("sample 1"));
    }

    #[test]
    fn malformed_json_yields_nothing() {
        assert!(fig3(&json!({"not": "an array"})).is_empty());
        assert!(fig9(&json!(42)).is_empty());
        assert!(fig4(&json!("x")).is_empty());
        assert!(fig7(&json!(null)).is_empty());
    }

    #[test]
    fn fig4_plots_both_methods_with_fraudar_markers() {
        let json = json!([{
            "dataset": "Dataset #3",
            "ensemfdet": [{"detected": 10, "f1": 0.5, "precision": 0.9}],
            "fraudar": [
                {"detected": 100, "f1": 0.4, "precision": 0.8},
                {"detected": 900, "f1": 0.45, "precision": 0.5}
            ],
            "max_step_ensemfdet": 1,
            "max_step_fraudar": 800
        }]);
        let figs = fig4(&json);
        assert_eq!(figs.len(), 1);
        assert!(figs[0].1.contains("Fraudar"));
        assert!(figs[0].1.contains("<circle"));
    }

    #[test]
    fn named_pr_charts_label_numeric_keys() {
        let json = json!([
            {"n": 10, "points": [{"recall": 0.1, "precision": 0.8}]},
            {"n": 80, "points": [{"recall": 0.3, "precision": 0.7}]}
        ]);
        let figs = fig7(&json);
        assert_eq!(figs.len(), 1);
        assert!(figs[0].1.contains("n=10"));
        assert!(figs[0].1.contains("n=80"));
    }

    #[test]
    fn render_all_writes_files_and_skips_missing() {
        let dir = std::env::temp_dir().join("ensemfdet_viz_render_all");
        std::fs::create_dir_all(&dir).unwrap();
        // Only fig1 input present.
        std::fs::write(
            dir.join("fig1_block_scores.json"),
            json!([{"sample": 0, "scores": [0.5, 0.1], "k_hat": 1}]).to_string(),
        )
        .unwrap();
        let written = render_all(&dir).unwrap();
        assert_eq!(written.len(), 1);
        assert!(written[0].ends_with("fig1.svg"));
        assert!(dir.join("fig1.svg").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
