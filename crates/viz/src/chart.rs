//! A small line-chart renderer producing standalone SVG.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data space, plotted in the given order.
    pub points: Vec<(f64, f64)>,
    /// Draw point markers (the paper uses diamonds for Fraudar's discrete
    /// operating points).
    pub marker: bool,
}

/// Chart geometry and content.
#[derive(Clone, Debug)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    width: f64,
    height: f64,
}

/// Color cycle (colorblind-safe Okabe–Ito subset).
const COLORS: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

const MARGIN_L: f64 = 62.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 34.0;
const MARGIN_B: f64 = 46.0;

impl Chart {
    /// Creates an empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Chart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            width: 560.0,
            height: 400.0,
        }
    }

    /// Overrides the canvas size (defaults 560×400).
    pub fn with_size(mut self, width: f64, height: f64) -> Self {
        assert!(width > 100.0 && height > 100.0, "canvas too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Adds a series.
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Data-space bounds over every finite point, padded 5%; empty charts
    /// get the unit square.
    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut pts = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .filter(|p| p.0.is_finite() && p.1.is_finite())
            .peekable();
        if pts.peek().is_none() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        let (mut x0, mut x1, mut y0, mut y1) =
            (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        let pad = |lo: f64, hi: f64| {
            let span = (hi - lo).max(1e-9);
            (lo - 0.05 * span, hi + 0.05 * span)
        };
        let (x0, x1) = pad(x0, x1);
        let (y0, y1) = pad(y0, y1);
        (x0, x1, y0, y1)
    }

    /// Renders the SVG document.
    pub fn render(&self) -> String {
        let (x0, x1, y0, y1) = self.bounds();
        let plot_w = self.width - MARGIN_L - MARGIN_R;
        let plot_h = self.height - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0) * plot_h;

        let mut out = String::new();
        let _ = write!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="11">"#,
            w = self.width,
            h = self.height
        );
        let _ = write!(
            out,
            r#"<rect width="{w}" height="{h}" fill="white"/>"#,
            w = self.width,
            h = self.height
        );
        // Title and axis labels.
        let _ = write!(
            out,
            r#"<text x="{x}" y="20" text-anchor="middle" font-size="13" font-weight="bold">{t}</text>"#,
            x = self.width / 2.0,
            t = escape(&self.title)
        );
        let _ = write!(
            out,
            r#"<text x="{x}" y="{y}" text-anchor="middle">{t}</text>"#,
            x = MARGIN_L + plot_w / 2.0,
            y = self.height - 10.0,
            t = escape(&self.x_label)
        );
        let _ = write!(
            out,
            r#"<text x="14" y="{y}" text-anchor="middle" transform="rotate(-90 14 {y})">{t}</text>"#,
            y = MARGIN_T + plot_h / 2.0,
            t = escape(&self.y_label)
        );

        // Frame + ticks (5 per axis).
        let _ = write!(
            out,
            r##"<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="none" stroke="#444"/>"##,
            x = MARGIN_L,
            y = MARGIN_T,
            w = plot_w,
            h = plot_h
        );
        for i in 0..=4 {
            let f = i as f64 / 4.0;
            let xv = x0 + f * (x1 - x0);
            let yv = y0 + f * (y1 - y0);
            let _ = write!(
                out,
                r##"<line x1="{x}" y1="{t}" x2="{x}" y2="{b}" stroke="#ddd"/><text x="{x}" y="{lb}" text-anchor="middle">{v}</text>"##,
                x = sx(xv),
                t = MARGIN_T,
                b = MARGIN_T + plot_h,
                lb = MARGIN_T + plot_h + 16.0,
                v = tick(xv)
            );
            let _ = write!(
                out,
                r##"<line x1="{l}" y1="{y}" x2="{r}" y2="{y}" stroke="#ddd"/><text x="{lx}" y="{ly}" text-anchor="end">{v}</text>"##,
                l = MARGIN_L,
                r = MARGIN_L + plot_w,
                y = sy(yv),
                lx = MARGIN_L - 6.0,
                ly = sy(yv) + 4.0,
                v = tick(yv)
            );
        }

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .filter(|p| p.0.is_finite() && p.1.is_finite())
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            if path.len() > 1 {
                let _ = write!(
                    out,
                    r#"<polyline points="{p}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    p = path.join(" ")
                );
            }
            if s.marker {
                for &(x, y) in s
                    .points
                    .iter()
                    .filter(|p| p.0.is_finite() && p.1.is_finite())
                {
                    let _ = write!(
                        out,
                        r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="3" fill="{color}"/>"#,
                        cx = sx(x),
                        cy = sy(y)
                    );
                }
            }
            // Legend row.
            let ly = MARGIN_T + 8.0 + i as f64 * 15.0;
            let _ = write!(
                out,
                r#"<line x1="{lx}" y1="{ly}" x2="{lx2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}">{label}</text>"#,
                lx = MARGIN_L + plot_w - 130.0,
                lx2 = MARGIN_L + plot_w - 112.0,
                tx = MARGIN_L + plot_w - 106.0,
                ty = ly + 4.0,
                label = escape(&s.label)
            );
        }
        out.push_str("</svg>");
        out
    }
}

/// Tick label: compact fixed-point.
fn tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Escapes XML-significant characters in labels.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Chart {
        Chart::new("t", "x", "y").with_series(Series {
            label: "a".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)],
            marker: true,
        })
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = demo().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn empty_chart_still_renders_frame() {
        let svg = Chart::new("empty", "x", "y").render();
        assert!(svg.contains("<rect"));
        assert!(!svg.contains("<polyline"));
    }

    #[test]
    fn multiple_series_cycle_colors_and_legend() {
        let mut c = Chart::new("m", "x", "y");
        for i in 0..3 {
            c = c.with_series(Series {
                label: format!("s{i}"),
                points: vec![(0.0, i as f64), (1.0, i as f64)],
                marker: false,
            });
        }
        let svg = c.render();
        assert!(svg.contains("s0") && svg.contains("s1") && svg.contains("s2"));
        assert!(svg.contains(COLORS[0]) && svg.contains(COLORS[2]));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = Chart::new("a < b & c", "x", "y").render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn nan_points_are_dropped() {
        let svg = Chart::new("n", "x", "y")
            .with_series(Series {
                label: "s".into(),
                points: vec![(0.0, 0.0), (f64::NAN, 1.0), (1.0, 1.0)],
                marker: true,
            })
            .render();
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        let svg = demo().render();
        // Crude: every polyline coordinate within [0, 560]×[0, 400].
        let poly = svg.split("points=\"").nth(1).unwrap().split('"').next().unwrap();
        for pair in poly.split(' ') {
            let (x, y) = pair.split_once(',').unwrap();
            let x: f64 = x.parse().unwrap();
            let y: f64 = y.parse().unwrap();
            assert!((0.0..=560.0).contains(&x));
            assert!((0.0..=400.0).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        let _ = Chart::new("t", "x", "y").with_size(50.0, 50.0);
    }
}
