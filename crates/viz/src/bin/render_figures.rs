//! Renders SVG figures from the experiment artifacts in `results/`
//! (override with `ENSEMFDET_RESULTS` or a path argument).

fn main() {
    let dir = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("ENSEMFDET_RESULTS").ok())
        .unwrap_or_else(|| "results".into());
    match ensemfdet_viz::figures::render_all(std::path::Path::new(&dir)) {
        Ok(written) if written.is_empty() => {
            println!("no renderable artifacts found in {dir}/ — run the experiments first");
        }
        Ok(written) => {
            for f in written {
                println!("wrote {f}");
            }
        }
        Err(e) => {
            eprintln!("render failed: {e}");
            std::process::exit(1);
        }
    }
}
