//! Property-based tests for the linear-algebra substrate.

use ensemfdet_linalg::qr::{orthonormality_error, orthonormalize};
use ensemfdet_linalg::{lanczos_svd, randomized_svd, svd_small, CsrMatrix, Matrix, SvdOptions};
use proptest::prelude::*;

/// Strategy: dense matrices with small integer-ish entries.
fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-4.0f64..4.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: sparse matrices as triplet lists.
fn arb_sparse(max_dim: u32, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
        prop::collection::vec((0..r, 0..c, -3.0f64..3.0), 0..=max_nnz)
            .prop_map(move |t| CsrMatrix::from_triplets(r as usize, c as usize, &t))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn orthonormalize_always_yields_orthonormal_q(m in arb_matrix(12)) {
        let mut q = m;
        orthonormalize(&mut q);
        // Some columns may be zeroed only in the pathological cols > rows
        // case after retries; exclude that by checking the error when
        // cols <= rows.
        if q.cols() <= q.rows() {
            prop_assert!(orthonormality_error(&q) < 1e-8);
        }
    }

    #[test]
    fn svd_small_reconstructs_input(m in arb_matrix(8)) {
        let k = m.rows().min(m.cols());
        let svd = svd_small(&m, k);
        // Full-rank truncation must reproduce the matrix.
        prop_assert!(svd.reconstruct().max_abs_diff(&m) < 1e-7);
        // Singular values descending and nonnegative.
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        for &s in &svd.s {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn svd_small_sigma1_bounds_frobenius(m in arb_matrix(8)) {
        let k = m.rows().min(m.cols());
        let svd = svd_small(&m, k);
        let fro = m.frobenius_norm();
        let s_sq: f64 = svd.s.iter().map(|s| s * s).sum();
        // Σσ² = ‖A‖²_F for the full decomposition.
        prop_assert!((s_sq.sqrt() - fro).abs() < 1e-7 * (1.0 + fro));
        if let Some(&s1) = svd.s.first() {
            prop_assert!(s1 <= fro + 1e-9);
        }
    }

    #[test]
    fn sparse_matvec_matches_dense(a in arb_sparse(10, 40), seed in 0u64..1000) {
        let d = a.to_dense();
        let x: Vec<f64> = (0..a.cols()).map(|i| ((i as u64 * 31 + seed) % 13) as f64 - 6.0).collect();
        let got = a.matvec(&x);
        let want = d.matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-10);
        }
        let y: Vec<f64> = (0..a.rows()).map(|i| ((i as u64 * 17 + seed) % 11) as f64 - 5.0).collect();
        let got_t = a.matvec_transpose(&y);
        let want_t = d.transpose().matvec(&y);
        for (g, w) in got_t.iter().zip(&want_t) {
            prop_assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn randomized_svd_matches_exact_on_small(a in arb_sparse(9, 30)) {
        let k = 3.min(a.rows()).min(a.cols());
        let exact = svd_small(&a.to_dense(), k);
        let approx = randomized_svd(&a, k, SvdOptions { power_iters: 4, ..Default::default() });
        for i in 0..k {
            prop_assert!(
                (exact.s[i] - approx.s[i]).abs() < 1e-5 * (1.0 + exact.s[i]),
                "σ{}: exact {} approx {}", i, exact.s[i], approx.s[i]
            );
        }
    }

    #[test]
    fn lanczos_matches_exact_on_small(a in arb_sparse(9, 30)) {
        // Full Krylov space (extra = min dim) ⇒ exact triplets.
        let k = 3.min(a.rows()).min(a.cols());
        let exact = svd_small(&a.to_dense(), k);
        let lz = lanczos_svd(&a, k, a.rows().min(a.cols()));
        for i in 0..k {
            prop_assert!(
                (exact.s[i] - lz.s[i]).abs() < 1e-6 * (1.0 + exact.s[i]),
                "σ{}: exact {} lanczos {}", i, exact.s[i], lz.s[i]
            );
        }
    }

    #[test]
    fn matmul_is_associative_on_small(a in arb_matrix(5), b in arb_matrix(5), c in arb_matrix(5)) {
        // Reshape b and c so the chain is well-formed.
        let b = Matrix::from_fn(a.cols(), b.rows(), |r, cc| b[(r % b.rows(), cc % b.cols())]);
        let c = Matrix::from_fn(b.cols(), c.cols(), |r, cc| c[(r % c.rows(), cc % c.cols())]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }
}
