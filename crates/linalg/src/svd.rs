//! Truncated singular value decomposition.
//!
//! [`randomized_svd`] implements the Halko–Martinsson–Tropp randomized
//! range-finder with power iterations: sketch `Y = A·Ω`, orthonormalize,
//! optionally iterate `Q ← orth(A · orth(Aᵀ Q))` to sharpen the spectrum,
//! then solve the small problem exactly through the `l × l` Gram matrix of
//! `B = Qᵀ A`. With a couple of power iterations this recovers the top-k
//! triplets of graph adjacency matrices to working accuracy — which is all
//! SpokEn and FBox consume.
//!
//! [`svd_small`] is the exact Gram-based SVD for small dense matrices; the
//! test-suite uses it as the reference the randomized method must match.

use crate::dense::Matrix;
use crate::eigen::symmetric_eigen;
use crate::qr::orthonormalize;
use crate::sparse::CsrMatrix;
use crate::vector;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A rank-`k` truncated SVD: `A ≈ U · diag(σ) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × k` (columns are orthonormal).
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Right singular vectors, `n × k` (columns are orthonormal).
    pub v: Matrix,
}

impl Svd {
    /// Rank of the decomposition.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Reconstructs the rank-k approximation densely (tests only).
    pub fn reconstruct(&self) -> Matrix {
        let k = self.rank();
        let mut out = Matrix::zeros(self.u.rows(), self.v.rows());
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let mut acc = 0.0;
                for i in 0..k {
                    acc += self.u[(r, i)] * self.s[i] * self.v[(c, i)];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    /// Projects a row vector (length n) onto the top-k right singular
    /// subspace: returns `Vᵀ x` of length k. FBox scores nodes with this.
    pub fn project_row(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.v.rows(), "project_row: length mismatch");
        (0..self.rank())
            .map(|i| (0..x.len()).map(|j| self.v[(j, i)] * x[j]).sum())
            .collect()
    }
}

/// Tuning for [`randomized_svd`].
#[derive(Clone, Copy, Debug)]
pub struct SvdOptions {
    /// Extra sketch columns beyond `k` (default 10).
    pub oversample: usize,
    /// Power iterations `q` (default 2); each sharpens the spectral decay.
    pub power_iters: usize,
    /// RNG seed for the Gaussian sketch.
    pub seed: u64,
}

impl Default for SvdOptions {
    fn default() -> Self {
        SvdOptions {
            oversample: 10,
            power_iters: 2,
            seed: 0xEF5E_14DE,
        }
    }
}

/// Computes the top-`k` singular triplets of a sparse matrix.
///
/// `k` is clamped to `min(rows, cols)`. Returns fewer than `k` triplets only
/// when the clamp applies; numerically zero singular values are kept (as 0)
/// so callers can rely on the output rank.
pub fn randomized_svd(a: &CsrMatrix, k: usize, opts: SvdOptions) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    let k = k.min(m).min(n);
    if k == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: Vec::new(),
            v: Matrix::zeros(n, 0),
        };
    }
    let l = (k + opts.oversample).min(m).min(n);

    // Gaussian sketch Ω (n × l) and range Y = A·Ω (m × l).
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let omega = gaussian_matrix(n, l, &mut rng);
    let mut q = a.mat_dense(&omega);
    orthonormalize(&mut q);

    // Power iterations with re-orthonormalization at each half-step.
    for _ in 0..opts.power_iters {
        let mut z = a.mat_dense_transpose(&q);
        orthonormalize(&mut z);
        q = a.mat_dense(&z);
        orthonormalize(&mut q);
    }

    // B = Qᵀ A, materialized transposed: Bt = Aᵀ Q is (n × l).
    let bt = a.mat_dense_transpose(&q);

    // Small Gram problem: G = B Bᵀ = Btᵀ Bt (l × l), PSD.
    let g = bt.transpose().matmul(&bt);
    let eig = symmetric_eigen(&g);

    // σᵢ = √λᵢ; U = Q W; vᵢ = Bᵀ wᵢ / σᵢ.
    let mut s = Vec::with_capacity(k);
    let mut u = Matrix::zeros(m, k);
    let mut v = Matrix::zeros(n, k);
    for i in 0..k {
        let sigma = eig.values[i].max(0.0).sqrt();
        s.push(sigma);
        let w = eig.vectors.col(i);
        let ucol = {
            // Q (m × l) times w (l).
            let mut out = vec![0.0; m];
            for (r, o) in out.iter_mut().enumerate() {
                *o = vector::dot(q.row(r), &w);
            }
            out
        };
        u.set_col(i, &ucol);
        if sigma > f64::EPSILON {
            let mut vcol = vec![0.0; n];
            for (r, o) in vcol.iter_mut().enumerate() {
                *o = vector::dot(bt.row(r), &w) / sigma;
            }
            v.set_col(i, &vcol);
        }
        // σ == 0 ⇒ V column stays zero: the direction is arbitrary and
        // consumers treat zero singular values as "no component".
    }

    Svd { u, s, v }
}

/// Exact SVD of a small dense matrix through the Gram matrix of its smaller
/// dimension. O(min(m,n)³ + m·n·min(m,n)); intended for tests and `l × n`
/// core problems.
pub fn svd_small(a: &Matrix, k: usize) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    let k = k.min(m).min(n);
    if k == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: Vec::new(),
            v: Matrix::zeros(n, 0),
        };
    }

    if m <= n {
        // G = A Aᵀ (m × m) = U Σ² Uᵀ; V = Aᵀ U Σ⁻¹.
        let g = a.matmul(&a.transpose());
        let eig = symmetric_eigen(&g);
        let mut s = Vec::with_capacity(k);
        let mut u = Matrix::zeros(m, k);
        let mut v = Matrix::zeros(n, k);
        let at = a.transpose();
        for i in 0..k {
            let sigma = eig.values[i].max(0.0).sqrt();
            s.push(sigma);
            let ucol = eig.vectors.col(i);
            u.set_col(i, &ucol);
            if sigma > f64::EPSILON {
                let mut vcol = at.matvec(&ucol);
                vector::scale(1.0 / sigma, &mut vcol);
                v.set_col(i, &vcol);
            }
        }
        Svd { u, s, v }
    } else {
        // G = Aᵀ A (n × n) = V Σ² Vᵀ; U = A V Σ⁻¹.
        let g = a.transpose().matmul(a);
        let eig = symmetric_eigen(&g);
        let mut s = Vec::with_capacity(k);
        let mut u = Matrix::zeros(m, k);
        let mut v = Matrix::zeros(n, k);
        for i in 0..k {
            let sigma = eig.values[i].max(0.0).sqrt();
            s.push(sigma);
            let vcol = eig.vectors.col(i);
            v.set_col(i, &vcol);
            if sigma > f64::EPSILON {
                let mut ucol = a.matvec(&vcol);
                vector::scale(1.0 / sigma, &mut ucol);
                u.set_col(i, &ucol);
            }
        }
        Svd { u, s, v }
    }
}

/// Standard-normal matrix via Box–Muller (rand ships only uniform draws).
fn gaussian_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random::<f64>();
        (-2.0f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;

    /// Builds a sparse matrix with exactly known singular values by taking a
    /// diagonal and permuting.
    fn diagonal_matrix(values: &[f64]) -> CsrMatrix {
        let n = values.len();
        let triplets: Vec<(u32, u32, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, i as u32, v))
            .collect();
        CsrMatrix::from_triplets(n, n, &triplets)
    }

    #[test]
    fn randomized_svd_recovers_diagonal_spectrum() {
        let a = diagonal_matrix(&[10.0, 7.0, 4.0, 2.0, 1.0, 0.5]);
        let svd = randomized_svd(&a, 3, SvdOptions::default());
        assert_eq!(svd.rank(), 3);
        assert!((svd.s[0] - 10.0).abs() < 1e-8, "s = {:?}", svd.s);
        assert!((svd.s[1] - 7.0).abs() < 1e-8);
        assert!((svd.s[2] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn randomized_svd_factors_are_orthonormal() {
        let a = diagonal_matrix(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        let svd = randomized_svd(&a, 4, SvdOptions::default());
        assert!(orthonormality_error(&svd.u) < 1e-9);
        assert!(orthonormality_error(&svd.v) < 1e-9);
    }

    #[test]
    fn randomized_svd_reconstructs_low_rank_exactly() {
        // Rank-2 matrix: outer products of two index patterns.
        let mut triplets = Vec::new();
        for i in 0..12u32 {
            for j in 0..9u32 {
                let v = 3.0 * ((i % 3) as f64) * ((j % 2) as f64 + 1.0)
                    + 2.0 * ((i % 2) as f64) * ((j % 3) as f64);
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        let a = CsrMatrix::from_triplets(12, 9, &triplets);
        let svd = randomized_svd(&a, 4, SvdOptions::default());
        // Rank ≤ 4 approximation of a rank-≤4 matrix must be (near-)exact.
        let err = svd.reconstruct().max_abs_diff(&a.to_dense());
        assert!(err < 1e-8, "reconstruction error {err}");
    }

    #[test]
    fn randomized_matches_exact_small_svd() {
        let triplets: Vec<(u32, u32, f64)> = (0..40u32)
            .map(|i| (i % 8, (i * 3) % 6, ((i % 5) as f64) - 1.5))
            .collect();
        let a = CsrMatrix::from_triplets(8, 6, &triplets);
        let exact = svd_small(&a.to_dense(), 4);
        let approx = randomized_svd(&a, 4, SvdOptions::default());
        for i in 0..4 {
            assert!(
                (exact.s[i] - approx.s[i]).abs() < 1e-6,
                "σ{i}: exact {} vs approx {}",
                exact.s[i],
                approx.s[i]
            );
        }
    }

    #[test]
    fn svd_small_known_2x2() {
        // [[3,0],[0,4]] → singular values {4,3}.
        let a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        let svd = svd_small(&a, 2);
        assert!((svd.s[0] - 4.0).abs() < 1e-12);
        assert!((svd.s[1] - 3.0).abs() < 1e-12);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn svd_small_wide_and_tall_agree() {
        let tall = Matrix::from_fn(6, 3, |r, c| ((r * 3 + c * 2) % 7) as f64 - 3.0);
        let wide = tall.transpose();
        let st = svd_small(&tall, 3);
        let sw = svd_small(&wide, 3);
        for i in 0..3 {
            assert!((st.s[i] - sw.s[i]).abs() < 1e-9);
        }
        assert!(st.reconstruct().max_abs_diff(&tall) < 1e-9);
        assert!(sw.reconstruct().max_abs_diff(&wide) < 1e-9);
    }

    #[test]
    fn k_is_clamped_to_min_dimension() {
        let a = diagonal_matrix(&[2.0, 1.0]);
        let svd = randomized_svd(&a, 10, SvdOptions::default());
        assert_eq!(svd.rank(), 2);
        let svd = svd_small(&a.to_dense(), 10);
        assert_eq!(svd.rank(), 2);
    }

    #[test]
    fn zero_k_returns_empty() {
        let a = diagonal_matrix(&[1.0]);
        let svd = randomized_svd(&a, 0, SvdOptions::default());
        assert_eq!(svd.rank(), 0);
        assert_eq!(svd.u.cols(), 0);
    }

    #[test]
    fn rank_deficient_input_yields_zero_sigmas() {
        // 4×4 all-ones: rank 1, σ₁ = 4, rest 0.
        let triplets: Vec<(u32, u32, f64)> = (0..16u32).map(|i| (i / 4, i % 4, 1.0)).collect();
        let a = CsrMatrix::from_triplets(4, 4, &triplets);
        let svd = randomized_svd(&a, 3, SvdOptions::default());
        assert!((svd.s[0] - 4.0).abs() < 1e-8);
        assert!(svd.s[1].abs() < 1e-7);
        assert!(svd.s[2].abs() < 1e-7);
    }

    #[test]
    fn project_row_matches_manual() {
        let a = diagonal_matrix(&[3.0, 2.0, 1.0]);
        let svd = randomized_svd(&a, 2, SvdOptions::default());
        let x = vec![1.0, 1.0, 1.0];
        let p = svd.project_row(&x);
        assert_eq!(p.len(), 2);
        // Projection norm ≤ ‖x‖.
        let pn: f64 = p.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(pn <= 3f64.sqrt() + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = diagonal_matrix(&[5.0, 3.0, 2.0, 1.0]);
        let s1 = randomized_svd(&a, 2, SvdOptions::default());
        let s2 = randomized_svd(&a, 2, SvdOptions::default());
        assert_eq!(s1.s, s2.s);
        assert!(s1.u.max_abs_diff(&s2.u) == 0.0);
    }
}
