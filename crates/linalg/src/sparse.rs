//! Compressed sparse row matrices.
//!
//! The bipartite adjacency matrix `W ∈ R^{|U| × |V|}` of a transaction graph
//! is extremely sparse (a few edges per user). All the spectral baselines
//! need from it are matrix–vector and matrix–(tall dense) products with `W`
//! and `Wᵀ`, which CSR provides in O(nnz · l).

use crate::dense::Matrix;

/// Sparse matrix in CSR form.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from COO triplets `(row, col, value)`. Duplicate coordinates
    /// are summed.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!((r as usize) < rows, "row {r} out of range ({rows} rows)");
            assert!((c as usize) < cols, "col {c} out of range ({cols} cols)");
        }
        // Counting sort by row.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut sorted: Vec<(u32, f64)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            sorted[cursor[r as usize]] = (c, v);
            cursor[r as usize] += 1;
        }
        // Within each row: sort by column and merge duplicates.
        let mut row_offsets = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for r in 0..rows {
            let row = &mut sorted[counts[r]..counts[r + 1]];
            row.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in row.iter() {
                if let Some(&last) = col_idx.last() {
                    if values.len() > row_offsets[r] && last == c {
                        *values.last_mut().expect("nonempty") += v;
                        continue;
                    }
                }
                col_idx.push(c);
                values.push(v);
            }
            row_offsets[r + 1] = col_idx.len();
        }

        CsrMatrix {
            rows,
            cols,
            row_offsets,
            col_idx,
            values,
        }
    }

    /// Builds an unweighted (all-ones) matrix from edge coordinates.
    pub fn from_edges(rows: usize, cols: usize, edges: &[(u32, u32)]) -> Self {
        let triplets: Vec<(u32, u32, f64)> = edges.iter().map(|&(r, c)| (r, c, 1.0)).collect();
        Self::from_triplets(rows, cols, &triplets)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros (after duplicate merging).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates the nonzeros of row `r` as `(col, value)`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.row_offsets[r]..self.row_offsets[r + 1];
        self.col_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// `y = A · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
        y
    }

    /// `y = Aᵀ · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transpose: length mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                y[c as usize] += v * xr;
            }
        }
        y
    }

    /// `Y = A · X` for a tall dense `X` (cols × l). Output is rows × l.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != cols`.
    pub fn mat_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.cols, "mat_dense: shape mismatch");
        let l = x.cols();
        let mut out = Matrix::zeros(self.rows, l);
        for r in 0..self.rows {
            // Accumulate row r of the output as a weighted sum of X's rows.
            let orow = out.row_mut(r);
            for (c, v) in self.row(r) {
                let xrow = x.row(c as usize);
                for (o, xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// `Y = Aᵀ · X` for a tall dense `X` (rows × l). Output is cols × l.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != rows`.
    pub fn mat_dense_transpose(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.rows, "mat_dense_transpose: shape mismatch");
        let l = x.cols();
        let mut out = Matrix::zeros(self.cols, l);
        for r in 0..self.rows {
            let xrow = x.row(r).to_vec();
            for (c, v) in self.row(r) {
                let orow = out.row_mut(c as usize);
                for (o, xv) in orow.iter_mut().zip(&xrow) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Materializes as dense — for tests on tiny matrices only.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m[(r, c as usize)] += v;
            }
        }
        m
    }

    /// Squared Euclidean norm of each row — FBox needs `‖aᵢ‖²` per user.
    pub fn row_sq_norms(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row(r).map(|(_, v)| v * v).sum())
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn shape_and_nnz() {
        let a = sample();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.to_dense()[(0, 0)], 3.5);
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let a = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 0, 1.0), (0, 2, 1.0)]);
        let cols: Vec<u32> = a.row(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }

    #[test]
    fn matvec_known() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-1.0, 0.0]);
    }

    #[test]
    fn matvec_transpose_known() {
        let a = sample();
        assert_eq!(a.matvec_transpose(&[1.0, 1.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn transpose_matvec_agrees_with_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = vec![0.5, -1.5];
        assert_eq!(a.matvec_transpose(&x), d.transpose().matvec(&x));
    }

    #[test]
    fn mat_dense_agrees_with_dense_matmul() {
        let a = sample();
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let got = a.mat_dense(&x);
        let want = a.to_dense().matmul(&x);
        assert!(got.max_abs_diff(&want) < 1e-14);
    }

    #[test]
    fn mat_dense_transpose_agrees_with_dense_matmul() {
        let a = sample();
        let x = Matrix::from_fn(2, 2, |r, c| (1 + r + 3 * c) as f64);
        let got = a.mat_dense_transpose(&x);
        let want = a.to_dense().transpose().matmul(&x);
        assert!(got.max_abs_diff(&want) < 1e-14);
    }

    #[test]
    fn from_edges_is_binary() {
        let a = CsrMatrix::from_edges(2, 2, &[(0, 1), (1, 0)]);
        let d = a.to_dense();
        assert_eq!(d[(0, 1)], 1.0);
        assert_eq!(d[(1, 0)], 1.0);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn row_sq_norms_and_frobenius() {
        let a = sample();
        assert_eq!(a.row_sq_norms(), vec![5.0, 9.0]);
        assert!((a.frobenius_norm() - 14.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = CsrMatrix::from_triplets(3, 2, &[(2, 1, 1.0)]);
        assert_eq!(a.row(0).count(), 0);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        CsrMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]);
    }
}
